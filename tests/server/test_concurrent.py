"""Concurrent server use: many clients, one daemon, one shared cache.

The acceptance bar of the serving layer: N parallel clients hammering
a single daemon over a shared cache directory must observe (a) no
corrupted cache entries, (b) responses byte-identical to sequential
cold-path reports, and (c) cancellation of one request never
disturbing its siblings — even while the victim's worker process is
genuinely mid-analysis.
"""

import threading

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import generate_core, load_system
from repro.server import SafeFlowClient, ServerError
from repro.server import protocol

from tests.perf.test_cache_correctness import SIMPLE
from tests.server.test_daemon import client_for, start_server, _wait_until

N_CLIENTS = 8
ROUNDS = 3


def _variants(count):
    """Distinct programs so concurrent requests mix cache keys."""
    return [SIMPLE.replace("a * 2.0", f"a * {i + 2}.0") for i in range(count)]


def test_parallel_clients_match_sequential_cold_reports(tmp_path):
    sources = _variants(4)
    expected = [
        SafeFlow(AnalysisConfig(summary_mode=True)).analyze_source(
            src, name=f"prog{i}").render(verbose=True)
        for i, src in enumerate(sources)
    ]

    server = start_server(tmp_path, workers=4, queue_size=64)
    try:
        failures = []
        lock = threading.Lock()

        def hammer(client_index):
            try:
                with client_for(server) as client:
                    for round_index in range(ROUNDS):
                        i = (client_index + round_index) % len(sources)
                        result = client.analyze(
                            source=sources[i], name=f"prog{i}",
                            verbose=True,
                        )
                        if result["render"] != expected[i]:
                            raise AssertionError(
                                f"client {client_index} round {round_index}: "
                                f"response diverged from the cold report"
                            )
            except Exception as exc:
                with lock:
                    failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,), daemon=True)
                   for i in range(N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[0]

        with client_for(server) as client:
            metrics = client.metrics()
        assert metrics["analyses"]["completed"] == N_CLIENTS * ROUNDS
        assert metrics["analyses"]["failed"] == 0
        # the shared cache actually served warm requests
        assert metrics["cache"]["frontend_hits"] > 0
    finally:
        server.stop()

    # (a) nothing in the shared cache directory was corrupted: a fresh
    # analyzer reading the same cache still reproduces the cold report
    # and still gets hits
    for i, src in enumerate(sources):
        config = AnalysisConfig(summary_mode=True,
                                cache_dir=str(tmp_path / "cache"))
        flow = SafeFlow(config)
        report = flow.analyze_source(src, name=f"prog{i}")
        assert report.render(verbose=True) == expected[i]
        assert report.stats.frontend_cache_hits == 1


def test_cancel_mid_analysis_leaves_siblings_untouched(tmp_path):
    """Cancel a request whose worker process is really analyzing."""
    big = generate_core(monitored_regions=2, chain_depth=6,
                        filler_functions=60)
    small = load_system("ip")
    small_files = [str(p) for p in small.core_files]
    expected_small = SafeFlow(AnalysisConfig(summary_mode=True)).analyze_files(
        small_files, name="ip").render()

    server = start_server(tmp_path, workers=2, queue_size=16)
    try:
        outcomes = {}

        def run_victim():
            with client_for(server) as client:
                try:
                    outcomes["victim"] = client.analyze(
                        source=big.source, name="victim", job_id="victim")
                except ServerError as exc:
                    outcomes["victim"] = exc

        victim_thread = threading.Thread(target=run_victim, daemon=True)
        victim_thread.start()
        assert _wait_until(lambda: server.pool.running_count() >= 1,
                           timeout=10)

        with client_for(server) as client:
            sibling = client.analyze(files=small_files, name="ip")
            cancel = client.cancel("victim")
            sibling_after = client.analyze(files=small_files, name="ip")

        victim_thread.join(timeout=30)
        assert cancel["found"] and cancel["cancelled"]
        assert isinstance(outcomes["victim"], ServerError)
        assert outcomes["victim"].code == protocol.CANCELLED
        # siblings before and after the cancellation are pristine
        assert sibling["render"] == expected_small
        assert sibling_after["render"] == expected_small

        with client_for(server) as client:
            health = client.health()
            metrics = client.metrics()
        assert health["status"] == "ok"
        assert metrics["analyses"]["cancelled"] == 1
    finally:
        server.stop()
