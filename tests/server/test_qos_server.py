"""Admission control over the wire: rate limits, brownout shedding,
and the qos metrics block, end to end through a live daemon."""

import pytest

from repro.qos import BrownoutController, TenantSpec, TenantTable
from repro.server import ServerError

from tests.server.test_daemon import CLEAN, client_for, start_server


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def metered_table():
    # burst 1, one token per 100s: the second request within a test
    # run is always over quota
    return TenantTable([
        TenantSpec(name="metered", rate=0.01, burst=1.0),
        TenantSpec(name="open"),
    ])


@pytest.fixture
def metered_server(tmp_path):
    server = start_server(tmp_path, tenants=metered_table())
    yield server
    server.stop()


class TestRateLimitedOverTheWire:
    def test_over_quota_is_a_structured_refusal(self, metered_server):
        with client_for(metered_server, retries=0) as client:
            assert client.analyze(source=CLEAN, tenant="metered")["passed"]
            with pytest.raises(ServerError) as excinfo:
                client.analyze(source=CLEAN, tenant="metered",
                               job_id="throttled")
        err = excinfo.value
        assert err.name == "rate_limited"
        assert err.data["tenant"] == "metered"
        assert err.retry_after_s is not None and err.retry_after_s > 0
        # hint-gated: with the hint attached the client may retry
        assert err.retryable

    def test_quota_does_not_leak_across_tenants(self, metered_server):
        with client_for(metered_server, retries=0) as client:
            assert client.analyze(source=CLEAN, tenant="metered")["passed"]
            with pytest.raises(ServerError):
                client.analyze(source=CLEAN, tenant="metered")
            # the unlimited tenant and untagged traffic are unaffected
            assert client.analyze(source=CLEAN, tenant="open")["passed"]
            assert client.analyze(source=CLEAN)["passed"]

    def test_qos_metrics_account_per_tenant(self, metered_server):
        with client_for(metered_server, retries=0) as client:
            client.analyze(source=CLEAN, tenant="metered")
            with pytest.raises(ServerError):
                client.analyze(source=CLEAN, tenant="metered")
            client.analyze(source=CLEAN)
            qos = client.metrics()["qos"]
        metered = qos["tenants"]["metered"]
        assert metered["accepted"] == 1
        assert metered["completed"] == 1
        assert metered["rate_limited"] == 1
        default = qos["tenants"]["default"]
        assert default["accepted"] == 1
        # declaring tenants arms the brownout controller; without a
        # --max-inflight there is no concurrency limiter to report
        assert qos["brownout"]["level"] == 0
        assert "concurrency" not in qos

    def test_health_carries_the_qos_summary(self, metered_server):
        with client_for(metered_server, retries=0) as client:
            client.analyze(source=CLEAN, tenant="metered")
            health = client.health()
        assert health["brownout_level"] == 0
        assert health["qos"]["tenants"]["metered"]["completed"] == 1


def browned_out_controller():
    """A controller already at level 1, pinned there: its frozen clock
    means the daemon's low-saturation updates arm the exit timer but
    the hold never elapses."""
    clock = FakeClock()
    controller = BrownoutController(hold_s=1.0, clock=clock)
    controller.update(0.95)
    clock.advance(1.0)
    assert controller.update(0.95) == 1
    return controller


@pytest.fixture
def shedding_server(tmp_path):
    table = TenantTable([
        TenantSpec(name="free", priority="low"),
        TenantSpec(name="gold", priority="high"),
    ])
    server = start_server(tmp_path, tenants=table,
                          brownout=browned_out_controller())
    yield server
    server.stop()


class TestShedOverTheWire:
    def test_low_priority_is_shed_with_a_retry_hint(self, shedding_server):
        with client_for(shedding_server, retries=0) as client:
            with pytest.raises(ServerError) as excinfo:
                client.analyze(source=CLEAN, tenant="free")
        err = excinfo.value
        assert err.name == "shed"
        assert err.data["reason"] == "low_priority"
        assert err.data["brownout_level"] == 1
        assert err.retry_after_s is not None and err.retry_after_s > 0
        # shedding is terminal for the call: blind resubmission would
        # be more overload traffic
        assert not err.retryable

    def test_other_tenants_ride_through_level_one(self, shedding_server):
        with client_for(shedding_server, retries=0) as client:
            assert client.analyze(source=CLEAN, tenant="gold")["passed"]
            assert client.analyze(source=CLEAN)["passed"]

    def test_shed_is_counted_and_level_visible(self, shedding_server):
        with client_for(shedding_server, retries=0) as client:
            with pytest.raises(ServerError):
                client.analyze(source=CLEAN, tenant="free")
            assert client.metrics()["qos"]["tenants"]["free"]["shed"] == 1
            assert client.health()["brownout_level"] == 1


class TestInflightLimiter:
    def test_fixed_limit_is_reported(self, tmp_path):
        server = start_server(tmp_path, max_inflight=3)
        try:
            with client_for(server) as client:
                concurrency = client.metrics()["qos"]["concurrency"]
            assert concurrency["limit"] == 3
            assert concurrency["adaptive"] is False
        finally:
            server.stop()

    def test_auto_mode_adapts(self, tmp_path):
        server = start_server(tmp_path, max_inflight="auto")
        try:
            with client_for(server) as client:
                concurrency = client.metrics()["qos"]["concurrency"]
            assert concurrency["adaptive"] is True
            assert concurrency["limit"] >= 1
        finally:
            server.stop()
