"""Functional tests of the analysis daemon: round-trips, warm cache
visibility, admission control, deadlines, cancellation, drain."""

import threading
import time

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import SYSTEM_KEYS, load_system
from repro.server import SafeFlowClient, SafeFlowServer, ServerError
from repro.server import pool as pool_mod
from repro.server import protocol

from tests.conftest import FIGURE2_SOURCE
from tests.perf.test_cache_correctness import SIMPLE

CLEAN = "int main(void) { return 0; }"
BROKEN = "int main(void) { return 0;"  # unbalanced brace


def start_server(tmp_path, **kwargs):
    kwargs.setdefault("config", AnalysisConfig(
        summary_mode=True, cache_dir=str(tmp_path / "cache")))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_size", 8)
    server = SafeFlowServer(port=0, **kwargs)
    server.start()
    return server


def client_for(server, **kwargs) -> SafeFlowClient:
    kwargs.setdefault("request_timeout", 60.0)
    return SafeFlowClient(port=server.address[1], **kwargs)


def _slow_execute(spec, config):
    """Deterministic stand-in for an expensive analysis."""
    time.sleep(0.6)
    return {
        "ok": True, "name": spec.get("name", "program"), "passed": True,
        "exit_code": 0, "counts": {}, "render": "slept",
        "report": {"stats": {"phase_timings": {"total": 0.6}}},
    }


@pytest.fixture
def slow_inline_server(tmp_path, monkeypatch):
    """workers=1, queue of 2, in-process execution, 0.6s per job —
    every admission/deadline/cancel/drain scenario is deterministic."""
    monkeypatch.setattr(pool_mod, "_execute_spec", _slow_execute)
    server = start_server(tmp_path, workers=1, queue_size=2,
                          use_processes=False)
    yield server
    server.stop()


def _submit_async(server, results, index, **analyze_kwargs):
    def run():
        with client_for(server) as client:
            try:
                results[index] = client.analyze(**analyze_kwargs)
            except ServerError as exc:
                results[index] = exc
    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


# ----------------------------------------------------------------------
# round-trips (acceptance: byte-identical to the cold CLI path)
# ----------------------------------------------------------------------

class TestRoundTrip:
    @pytest.fixture(scope="class")
    def corpus_server(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("serve-corpus")
        server = start_server(tmp)
        yield server
        server.stop()

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_corpus_byte_identical_to_cold_cli_path(self, corpus_server, key):
        system = load_system(key)
        files = [str(p) for p in system.core_files]
        cold = SafeFlow(AnalysisConfig(summary_mode=True)).analyze_files(
            files, name=key)
        with client_for(corpus_server) as client:
            result = client.analyze(files=files, name=key)
        assert result["render"] == cold.render()
        assert result["counts"] == cold.counts()
        assert result["passed"] == cold.passed
        assert result["exit_code"] == (0 if cold.passed else 1)

    def test_inline_source_matches_direct_analysis(self, corpus_server):
        cold = SafeFlow(AnalysisConfig(summary_mode=True)).analyze_source(
            FIGURE2_SOURCE, name="fig2")
        with client_for(corpus_server) as client:
            result = client.analyze(source=FIGURE2_SOURCE, name="fig2",
                                    verbose=True)
        assert result["render"] == cold.render(verbose=True)

    def test_warm_repeat_reports_cache_hits(self, corpus_server):
        system = load_system("ip")
        files = [str(p) for p in system.core_files]
        with client_for(corpus_server) as client:
            first = client.analyze(files=files, name="ip")
            warm = client.analyze(files=files, name="ip")
            metrics = client.metrics()
        assert warm["render"] == first["render"]
        assert metrics["cache"]["frontend_hits"] > 0
        assert metrics["analyses"]["completed"] >= 2
        assert metrics["latency"]["phases"]["frontend"]["count"] >= 2

    def test_config_override_round_trip(self, corpus_server):
        cold = SafeFlow(AnalysisConfig(
            summary_mode=True, unannotated_shm_is_core=False,
        )).analyze_source(SIMPLE, name="paranoid")
        with client_for(corpus_server) as client:
            result = client.analyze(
                source=SIMPLE, name="paranoid",
                config={"unannotated_shm_is_core": False},
            )
        assert result["render"] == cold.render()


# ----------------------------------------------------------------------
# the observability plane
# ----------------------------------------------------------------------

class TestHealthAndMetrics:
    def test_health_shape(self, tmp_path):
        server = start_server(tmp_path, workers=3)
        try:
            with client_for(server) as client:
                assert client.ping()
                health = client.health()
        finally:
            server.stop()
        assert health["status"] == "ok"
        assert health["protocol"] == protocol.PROTOCOL_VERSION
        assert health["workers"] == 3
        assert health["queue_capacity"] == 8
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        assert health["uptime_seconds"] >= 0
        assert health["cache_dir"].endswith("cache")

    def test_metrics_counts_requests_and_errors(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        try:
            with client_for(server) as client:
                client.ping()
                with pytest.raises(ServerError):
                    client.call("no_such_method")
                metrics = client.metrics()
        finally:
            server.stop()
        assert metrics["requests_total"]["ping"] == 1
        assert metrics["errors_total"]["method_not_found"] == 1
        assert metrics["responses_total"]["error"] == 1


# ----------------------------------------------------------------------
# failures stay structured
# ----------------------------------------------------------------------

class TestErrors:
    @pytest.fixture
    def server(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        yield server
        server.stop()

    def test_parse_failure_is_structured(self, server):
        with client_for(server) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(source=BROKEN, name="broken")
        assert exc.value.code == protocol.ANALYSIS_FAILED
        assert "ParseError" in exc.value.message
        assert "Traceback" not in exc.value.message

    def test_missing_file_is_structured(self, server):
        with client_for(server) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(files=["/nonexistent/prog.c"])
        assert exc.value.code == protocol.ANALYSIS_FAILED

    @pytest.mark.parametrize("params", [
        {},                                     # neither source nor files
        {"source": "x", "files": ["y.c"]},      # both
        {"files": []},                          # empty
        {"source": "x", "config": {"bogus": 1}},
        {"source": "x", "deadline": -1},
        {"source": "x", "job_id": ""},
    ])
    def test_invalid_params(self, server, params):
        with client_for(server) as client:
            with pytest.raises(ServerError) as exc:
                client.call("analyze", params)
        assert exc.value.code == protocol.INVALID_PARAMS

    def test_sibling_requests_survive_a_failure(self, server):
        with client_for(server) as client:
            with pytest.raises(ServerError):
                client.analyze(source=BROKEN)
            ok = client.analyze(source=CLEAN, name="after")
        assert ok["passed"] is True


# ----------------------------------------------------------------------
# admission control, deadlines, cancellation
# ----------------------------------------------------------------------

class TestBackpressure:
    def test_queue_full_is_immediate(self, slow_inline_server):
        server = slow_inline_server
        results = {}
        threads = [_submit_async(server, results, i, source=CLEAN,
                                 name=f"q{i}")
                   for i in range(3)]  # 1 running + 2 queued = capacity
        assert _wait_until(
            lambda: server.pool.running_count() == 1
            and server.queue.depth() == 2)
        # under load one of the fillers may itself have been bounced
        # and retried (queue_full is retryable), so count rejections
        # relative to this snapshot, not from zero
        with client_for(server) as client:
            before = client.metrics()["analyses"]["queue_rejections"]
        # retries=0: a retryable queue_full would re-submit and
        # inflate the rejection counter below
        with client_for(server, retries=0) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(source=CLEAN, name="overflow")
        assert exc.value.code == protocol.QUEUE_FULL
        assert exc.value.retryable
        for thread in threads:
            thread.join(timeout=10)
        assert all(results[i]["render"] == "slept" for i in range(3))
        with client_for(server) as client:
            rejections = client.metrics()["analyses"]["queue_rejections"]
        assert rejections == before + 1

    def test_deadline_exceeded(self, slow_inline_server):
        with client_for(slow_inline_server) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(source=CLEAN, name="late", deadline=0.05)
        assert exc.value.code == protocol.DEADLINE_EXCEEDED
        with client_for(slow_inline_server) as client:
            metrics = client.metrics()
        assert metrics["analyses"]["deadline_exceeded"] == 1

    def test_cancel_queued_job_resolves_immediately(self, slow_inline_server):
        server = slow_inline_server
        results = {}
        _submit_async(server, results, 0, source=CLEAN, name="running")
        assert _wait_until(lambda: server.pool.running_count() == 1)
        _submit_async(server, results, 1, source=CLEAN, name="victim",
                      job_id="victim")
        assert _wait_until(lambda: server.queue.depth() == 1)
        started = time.monotonic()
        with client_for(server) as client:
            outcome = client.cancel("victim")
        assert outcome == {"job_id": "victim", "found": True,
                           "cancelled": True}
        assert _wait_until(lambda: 1 in results)
        # resolved long before the worker could have reached it
        assert time.monotonic() - started < 0.5
        assert isinstance(results[1], ServerError)
        assert results[1].code == protocol.CANCELLED
        assert _wait_until(lambda: 0 in results, timeout=10)
        assert results[0]["render"] == "slept"  # sibling undisturbed

    def test_cancel_unknown_job(self, slow_inline_server):
        with client_for(slow_inline_server) as client:
            outcome = client.cancel("never-submitted")
        assert outcome["found"] is False

    def test_duplicate_job_id_rejected(self, slow_inline_server):
        server = slow_inline_server
        results = {}
        _submit_async(server, results, 0, source=CLEAN, job_id="dup")
        assert _wait_until(lambda: server.pool.running_count() == 1)
        with client_for(server) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(source=CLEAN, job_id="dup")
        assert exc.value.code == protocol.INVALID_PARAMS


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------

class TestShutdown:
    def test_drain_completes_backlog_without_dropping_responses(
            self, slow_inline_server):
        server = slow_inline_server
        results = {}
        threads = [_submit_async(server, results, i, source=CLEAN,
                                 name=f"drain{i}")
                   for i in range(3)]  # 1 running + 2 queued
        assert _wait_until(
            lambda: server.pool.running_count() == 1
            and server.queue.depth() == 2)
        with client_for(server) as shutter:
            assert shutter.shutdown()["shutting_down"] is True
        for thread in threads:
            thread.join(timeout=15)
        # every admitted request got its real result, none were dropped
        assert sorted(results) == [0, 1, 2]
        assert all(results[i]["render"] == "slept" for i in range(3))
        assert server.wait_stopped(timeout=15)

    def test_new_requests_rejected_while_draining(self, slow_inline_server):
        server = slow_inline_server
        results = {}
        _submit_async(server, results, 0, source=CLEAN, name="inflight")
        assert _wait_until(lambda: server.pool.running_count() == 1)
        server._draining = True  # as the shutdown RPC would set it
        with client_for(server) as client:
            with pytest.raises(ServerError) as exc:
                client.analyze(source=CLEAN, name="rejected")
        assert exc.value.code == protocol.SHUTTING_DOWN

    def test_health_reports_draining(self, slow_inline_server):
        server = slow_inline_server
        server._draining = True
        with client_for(server) as client:
            assert client.health()["status"] == "draining"
