"""Degraded-verdict visibility in the service plane: metrics fold,
health counters, and the client-side warning."""

import logging

import pytest

from repro.core.config import AnalysisConfig
from repro.server import SafeFlowClient, SafeFlowServer
from repro.server.metrics import ServerMetrics

BROKEN = "int broken( {\n"
CLEAN = "int main(void) { return 0; }"


class TestMetricsFold:
    def test_observe_analysis_counts_degraded_units(self):
        metrics = ServerMetrics()
        metrics.observe_analysis({"degraded_units": 3})
        metrics.observe_analysis({"degraded_units": 0})
        metrics.observe_analysis({"degraded_units": 2})
        snapshot = metrics.snapshot()
        assert snapshot["degraded"] == {"analyses": 2, "units": 5}
        assert metrics.degraded_counts() == {"analyses": 2, "units": 5}

    def test_clean_analyses_leave_zeroes(self):
        metrics = ServerMetrics()
        metrics.observe_analysis({})
        assert metrics.snapshot()["degraded"] == {"analyses": 0, "units": 0}


class TestClientWarning:
    def _client_with_response(self, monkeypatch, payload):
        client = SafeFlowClient(port=1)
        monkeypatch.setattr(SafeFlowClient, "call",
                            lambda self, *a, **k: payload)
        return client

    def test_degraded_verdict_logs_warning(self, monkeypatch, caplog):
        payload = {"report": {"verdict": "degraded",
                              "degraded": [{"kind": "unit"}]}}
        client = self._client_with_response(monkeypatch, payload)
        with caplog.at_level(logging.WARNING, logger="repro.server.client"):
            result = client.analyze(source=BROKEN, name="broken")
        assert result is payload
        assert any("DEGRADED" in record.message
                   and "fail-closed" in record.message
                   for record in caplog.records)

    def test_clean_verdict_is_silent(self, monkeypatch, caplog):
        payload = {"report": {"verdict": "pass", "degraded": []}}
        client = self._client_with_response(monkeypatch, payload)
        with caplog.at_level(logging.WARNING, logger="repro.server.client"):
            client.analyze(source=CLEAN, name="clean")
        assert not caplog.records


class TestDaemonDegraded:
    def test_health_and_metrics_expose_degraded_counts(self, tmp_path):
        config = AnalysisConfig(cache_dir=None, degraded_mode=True)
        server = SafeFlowServer(config=config, port=0, workers=1,
                                queue_size=4)
        server.start()
        try:
            with SafeFlowClient(port=server.address[1],
                                request_timeout=60.0) as client:
                health = client.health()
                assert health["degraded_units"] == 0
                result = client.analyze(source=BROKEN, name="broken")
                assert result["report"]["verdict"] == "degraded"
                assert "degraded units" in result["render"]
                health = client.health()
                assert health["degraded_analyses"] == 1
                assert health["degraded_units"] >= 1
                degraded = client.metrics()["degraded"]
                assert degraded["analyses"] == 1
                assert degraded["units"] == health["degraded_units"]
        finally:
            server.stop()
