"""Fleet-era observability satellites: the client's connection-reuse
stats and the daemon health plane's queue/inflight/latency fields the
fleet router steers by."""

from repro.server import SafeFlowClient

from tests.server.test_daemon import CLEAN, client_for, start_server


class TestClientStats:
    def test_persistent_connection_is_reused(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        try:
            with client_for(server) as client:
                for _ in range(6):
                    client.ping()
                stats = dict(client.stats)
        finally:
            server.stop()
        assert stats["connects"] == 1
        assert stats["reconnects"] == 0
        assert stats["requests"] == 6
        assert stats["responses"] == 6
        assert stats["retries"] == 0

    def test_reconnect_is_counted(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        try:
            client = client_for(server)
            client.ping()
            client.close()  # next call must re-establish the socket
            client.ping()
            stats = dict(client.stats)
            client.close()
        finally:
            server.stop()
        assert stats["connects"] == 2
        assert stats["reconnects"] == 1
        assert stats["responses"] == 2


class TestHealthLatencyPlane:
    def test_health_reports_queue_inflight_and_latency(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        try:
            with client_for(server) as client:
                client.analyze(source=CLEAN, filename="clean.c")
                health = client.health()
        finally:
            server.stop()
        # pre-fleet fields survive...
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        # ...and the fleet router's routing signals are present
        assert health["inflight"] == health["in_flight"]
        assert health["latency_p50_s"] > 0
        assert health["latency_p99_s"] >= health["latency_p50_s"]

    def test_metrics_rolling_quantiles(self, tmp_path):
        server = start_server(tmp_path, use_processes=False)
        try:
            with client_for(server) as client:
                for _ in range(5):
                    client.ping()
                metrics = client.metrics()
        finally:
            server.stop()
        rolling = metrics["latency"]["rolling"]
        assert rolling["count"] >= 5
        assert rolling["p99_s"] >= rolling["p50_s"] > 0
        gauges = metrics["gauges"]
        assert gauges["inflight"] == gauges["in_flight"]
