"""Unit tests of the service wire protocol and the metrics plane."""

import json

import pytest

from repro.server import metrics as metrics_mod
from repro.server import protocol
from repro.server.metrics import LatencyHistogram, ServerMetrics


class TestProtocol:
    def test_encode_is_one_line(self):
        blob = protocol.encode({"id": 1, "result": {"text": "a\nb\nc"}})
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1  # newlines stay escaped inside JSON

    def test_request_round_trip(self):
        line = protocol.encode(protocol.request_payload(
            "analyze", {"source": "int main(void){return 0;}"}, 7))
        request = protocol.decode_request(line)
        assert request.method == "analyze"
        assert request.id == 7
        assert "source" in request.params

    def test_params_default_to_empty(self):
        request = protocol.decode_request(b'{"id": 1, "method": "ping"}')
        assert request.params == {}

    @pytest.mark.parametrize("line,code", [
        (b"{not json", protocol.PARSE_ERROR),
        (b'"just a string"', protocol.INVALID_REQUEST),
        (b'{"id": 1}', protocol.INVALID_REQUEST),
        (b'{"id": 1, "method": ""}', protocol.INVALID_REQUEST),
        (b'{"id": 1, "method": "x", "params": [1]}',
         protocol.INVALID_REQUEST),
        (b'{"id": [1], "method": "x"}', protocol.INVALID_REQUEST),
    ])
    def test_bad_requests(self, line, code):
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.code == code

    def test_error_response_carries_stable_name(self):
        response = protocol.error_response(3, protocol.QUEUE_FULL, "full")
        assert response["error"]["name"] == "queue_full"
        assert response["error"]["code"] == protocol.QUEUE_FULL
        # every defined code has a name for the metrics plane
        for code in protocol.ERROR_NAMES:
            assert protocol.error_name(code) == protocol.ERROR_NAMES[code]

    def test_ok_response_shape(self):
        response = protocol.ok_response("abc", {"x": 1})
        assert response == {"id": "abc", "result": {"x": 1}}


class TestLatencyHistogram:
    def test_buckets_are_cumulative(self):
        hist = LatencyHistogram(buckets=(0.01, 0.1, 1.0))
        for seconds in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(seconds)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["min"] == 0.005
        assert snap["max"] == 5.0
        assert snap["buckets_le"] == [
            [0.01, 1], [0.1, 3], [1.0, 4], ["+Inf", 5],
        ]

    def test_sum_accumulates(self):
        hist = LatencyHistogram()
        hist.observe(0.25)
        hist.observe(0.75)
        assert hist.snapshot()["sum"] == pytest.approx(1.0)


class TestServerMetrics:
    def test_snapshot_is_json_serializable(self):
        m = ServerMetrics()
        m.count_request("analyze")
        m.count_response(True, seconds=0.01)
        m.count_response(False, "queue_full", seconds=0.001)
        m.observe_analysis({
            "phase_timings": {"frontend": 0.02, "valueflow": 0.01},
            "frontend_cache_hits": 1, "summary_cache_hits": 3,
            "frontend_cache_misses": 0, "summary_cache_misses": 2,
        })
        snap = m.snapshot()
        json.dumps(snap)  # must never contain non-JSON values
        assert snap["requests_total"] == {"analyze": 1}
        assert snap["responses_total"] == {"ok": 1, "error": 1}
        assert snap["errors_total"] == {"queue_full": 1}
        assert snap["analyses"]["completed"] == 1
        assert snap["cache"]["frontend_hits"] == 1
        assert snap["cache"]["summary_misses"] == 2
        assert set(snap["latency"]["phases"]) == {"frontend", "valueflow"}
        assert snap["latency"]["request"]["count"] == 2

    def test_gauges_read_live_values(self):
        m = ServerMetrics()
        depth = [4]
        m.register_gauge("queue_depth", lambda: depth[0])
        assert m.snapshot()["gauges"]["queue_depth"] == 4
        depth[0] = 0
        assert m.snapshot()["gauges"]["queue_depth"] == 0

    def test_broken_gauge_does_not_break_snapshot(self):
        m = ServerMetrics()
        m.register_gauge("bad", lambda: 1 / 0)
        assert m.snapshot()["gauges"]["bad"] == -1

    def test_uptime_grows(self, monkeypatch):
        m = ServerMetrics()
        base = metrics_mod.time.monotonic()
        monkeypatch.setattr(metrics_mod.time, "monotonic",
                            lambda: base + 12.5)
        assert m.uptime_seconds() >= 12.5
