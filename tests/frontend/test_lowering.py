"""C → IR lowering across the restricted language subset."""

import pytest

from repro.errors import LoweringError, ParseError
from repro.ir import (
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    Constant,
    FieldAddr,
    IndexAddr,
    Load,
    Phi,
    Store,
    verify_module,
)
from repro.ir import types as T
from tests.conftest import front


def func_of(source: str, name: str):
    program = front(source)
    verify_module(program.module)
    return program.module.get_function(name)


def insts(func, cls):
    return [i for i in func.instructions() if isinstance(i, cls)]


class TestExpressions:
    def test_arithmetic_chain(self):
        f = func_of("int f(int a, int b) { return a * b + a - b; }", "f")
        ops = [i.op for i in insts(f, BinOp)]
        assert ops == ["*", "+", "-"]

    def test_comparisons(self):
        f = func_of("int f(int a) { return a >= 3; }", "f")
        assert [i.op for i in insts(f, Cmp)] == [">="]

    def test_mixed_int_double_promotes(self):
        f = func_of("double f(int a) { return a + 1.5; }", "f")
        casts = insts(f, Cast)
        assert any(c.kind == "numeric" and c.type == T.DOUBLE for c in casts)

    def test_unary_minus(self):
        f = func_of("int f(int a) { return -a; }", "f")
        assert len([i for i in f.instructions()
                    if i.opname() == "unaryop"]) == 1

    def test_logical_not_produces_int(self):
        f = func_of("int f(int a) { return !a; }", "f")
        assert any(i.opname() == "unaryop" for i in f.instructions())

    def test_short_circuit_and_branches(self):
        f = func_of("int f(int a, int b) { return a && b; }", "f")
        branches = insts(f, CondBranch)
        assert len(branches) >= 1

    def test_short_circuit_or(self):
        f = func_of("int f(int a, int b) { return a || b; }", "f")
        assert len(insts(f, CondBranch)) >= 1

    def test_ternary_lowered_with_control_flow(self):
        f = func_of("int f(int a) { return a ? 10 : 20; }", "f")
        assert len(insts(f, CondBranch)) == 1
        phis = insts(f, Phi)
        assert len(phis) == 1

    def test_comma_operator(self):
        f = func_of("int f(int a) { int x; x = (a = a + 1, a * 2); return x; }",
                    "f")
        assert any(i.op == "*" for i in insts(f, BinOp))

    def test_sizeof_type_is_constant(self):
        f = func_of("unsigned int f(void) { return sizeof(double); }", "f")
        rets = [i for i in f.instructions() if i.opname() == "ret"]
        assert isinstance(rets[0].operands[0], (Constant, Cast))

    def test_char_literal(self):
        f = func_of("int f(void) { return 'A'; }", "f")
        rets = [i for i in f.instructions() if i.opname() == "ret"]
        value = rets[0].operands[0]
        assert isinstance(value, (Constant, Cast))

    def test_hex_and_octal_literals(self):
        f = func_of("int f(void) { return 0x10 + 010; }", "f")
        consts = {op.value for i in insts(f, BinOp) for op in i.operands
                  if isinstance(op, Constant)}
        assert 16 in consts and 8 in consts

    def test_string_literal_is_char_pointer(self):
        f = func_of('void f(void) { printf("hi %d", 1); }', "f")
        call = insts(f, Call)[0]
        assert call.operands[0].type == T.PointerType(T.CHAR)


class TestAssignmentForms:
    def test_compound_assignment(self):
        f = func_of("int f(int a) { a += 3; a *= 2; return a; }", "f")
        ops = [i.op for i in insts(f, BinOp)]
        assert "+" in ops and "*" in ops

    def test_pre_increment_returns_new_value(self):
        f = func_of("int f(int a) { return ++a; }", "f")
        assert any(i.op == "+" for i in insts(f, BinOp))

    def test_post_increment(self):
        f = func_of("int f(int a) { int b; b = a++; return b + a; }", "f")
        assert any(i.op == "+" for i in insts(f, BinOp))

    def test_struct_copy_assignment(self):
        f = func_of("""
            typedef struct { int a; double b; } S;
            void f(S *dst, S *src) { *dst = *src; }
        """, "f")
        stores = insts(f, Store)
        assert len(stores) == 1
        assert isinstance(stores[0].value.type, T.StructType)

    def test_assignment_through_pointer(self):
        f = func_of("void f(int *p) { *p = 7; }", "f")
        stores = insts(f, Store)
        assert len(stores) == 1


class TestAggregates:
    SOURCE = """
        typedef struct { double x[4]; int n; } Buf;
        Buf table[3];
        double f(Buf *b, int i) { return b->x[i]; }
        int g(int i) { return table[i].n; }
    """

    def test_arrow_then_index(self):
        f = func_of(self.SOURCE, "f")
        assert len(insts(f, FieldAddr)) == 1
        assert len(insts(f, IndexAddr)) == 1

    def test_global_array_of_structs(self):
        g = func_of(self.SOURCE, "g")
        assert len(insts(g, IndexAddr)) == 1
        assert len(insts(g, FieldAddr)) == 1

    def test_local_array_initializer(self):
        f = func_of("int f(void) { int a[3] = {1, 2, 3}; return a[1]; }", "f")
        stores = insts(f, Store)
        assert len(stores) == 3

    def test_struct_initializer(self):
        f = func_of("""
            typedef struct { int a; int b; } P;
            int f(void) { P p = {1, 2}; return p.b; }
        """, "f")
        assert len(insts(f, Store)) == 2

    def test_dot_access_on_local(self):
        f = func_of("""
            typedef struct { int a; int b; } P;
            int f(void) { P p; p.a = 4; return p.a; }
        """, "f")
        assert len(insts(f, FieldAddr)) == 2

    def test_array_decay_to_pointer_argument(self):
        f = func_of("""
            double sum(double *v, int n);
            double f(void) { double data[8]; return sum(data, 8); }
        """, "f")
        call = insts(f, Call)[0]
        assert call.operands[0].type == T.PointerType(T.DOUBLE)


class TestControlFlowLowering:
    def test_do_while(self):
        f = func_of("int f(int n) { int i = 0; do { i++; } while (i < n); return i; }",
                    "f")
        assert len(insts(f, CondBranch)) == 1

    def test_break_exits_loop(self):
        f = func_of("""
            int f(int n) {
                int i;
                for (i = 0; i < n; i++) { if (i == 5) break; }
                return i;
            }
        """, "f")
        verify_module(front("int z;").module)  # smoke
        assert len(insts(f, CondBranch)) == 2

    def test_continue(self):
        f = func_of("""
            int f(int n) {
                int i;
                int total = 0;
                for (i = 0; i < n; i++) { if (i == 2) continue; total += i; }
                return total;
            }
        """, "f")
        assert f is not None

    def test_switch_with_fallthrough_and_default(self):
        f = func_of("""
            int f(int m) {
                int r;
                switch (m) {
                case 0: r = 1; break;
                case 1:
                case 2: r = 2; break;
                default: r = 0;
                }
                return r;
            }
        """, "f")
        cmps = [i for i in insts(f, Cmp) if i.op == "=="]
        assert len(cmps) == 3

    def test_switch_break_goes_to_end(self):
        f = func_of("""
            int f(int m) {
                int r = 0;
                switch (m) { case 1: r = 5; break; }
                return r;
            }
        """, "f")
        assert f is not None

    def test_infinite_while_keeps_exit_reachable(self):
        f = func_of("""
            int f(void) {
                while (1) { if (ready()) return 1; }
                return 0;
            }
        """, "f")
        rets = [i for i in f.instructions() if i.opname() == "ret"]
        assert len(rets) >= 1

    def test_goto_rejected(self):
        with pytest.raises(LoweringError):
            front("int f(void) { goto out; out: return 1; }")

    def test_missing_return_value_synthesized(self):
        f = func_of("int f(int a) { if (a) return 1; }", "f")
        rets = [i for i in f.instructions() if i.opname() == "ret"]
        assert len(rets) == 2


class TestFunctionsAndGlobals:
    def test_implicit_declaration_gets_int_type(self):
        f = func_of("int f(void) { return helper(3); }", "f")
        call = insts(f, Call)[0]
        assert call.type == T.INT

    def test_varargs_call(self):
        f = func_of('void f(int a) { printf("%d %d", a, a + 1); }', "f")
        call = insts(f, Call)[0]
        assert len(call.operands) == 3

    def test_global_initializer_recorded(self):
        program = front("int limit = 42; double rate = 1.5;")
        assert program.module.globals["limit"].initializer == 42
        assert program.module.globals["rate"].initializer == 1.5

    def test_enum_constants_fold(self):
        f = func_of("""
            enum Mode { IDLE, RUN = 5, STOP };
            int f(void) { return STOP; }
        """, "f")
        rets = [i for i in f.instructions() if i.opname() == "ret"]
        assert rets[0].operands[0].value == 6

    def test_function_redeclaration_merges(self):
        program = front("""
            int g(int x);
            int g(int x) { return x + 1; }
            int f(void) { return g(2); }
        """)
        assert not program.module.get_function("g").is_declaration

    def test_void_pointer_conversions(self):
        f = func_of("""
            void *alloc(void);
            double *f(void) { return (double *) alloc(); }
        """, "f")
        casts = insts(f, Cast)
        assert any(c.kind == "bitcast" for c in casts)

    def test_null_pointer_constant(self):
        f = func_of("int f(int *p) { return p == 0; }", "f")
        cmp = insts(f, Cmp)[0]
        assert isinstance(cmp.operands[1], Constant)

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError):
            front("int f(void) { return 0 }")

    def test_pointer_arithmetic_uses_indexaddr(self):
        f = func_of("double f(double *p) { return *(p + 3); }", "f")
        assert len(insts(f, IndexAddr)) == 1

    def test_pointer_difference_is_int(self):
        f = func_of("int f(char *a, char *b) { return a - b; }", "f")
        assert any(c.kind == "ptrtoint" for c in insts(f, Cast))

    def test_static_qualifier_accepted(self):
        f = func_of("static int f(void) { return 1; }", "f")
        assert f is not None

    def test_const_qualifier_accepted(self):
        f = func_of("int f(const int *p) { return *p; }", "f")
        assert f is not None
