"""Property-based differential testing of the whole front end.

Hypothesis generates random C expressions and statement sequences; the
lowered IR is executed by :mod:`repro.ir.interp` and compared against a
Python reference evaluator over the same syntax tree. Any divergence is
a front-end (preprocessor / parser / lowering / SSA) bug.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.interp import Interpreter
from tests.conftest import front


# ----------------------------------------------------------------------
# expression generator: builds (c_text, python_eval) pairs over a, b, c
# ----------------------------------------------------------------------

def _leaf():
    return st.one_of(
        st.integers(0, 9).map(lambda n: (str(n), lambda env, n=n: n)),
        st.sampled_from(["a", "b", "c"]).map(
            lambda name: (name, lambda env, name=name: env[name])
        ),
    )


def _combine(children):
    def binop(symbol, fn):
        return st.tuples(children, children).map(
            lambda pair, symbol=symbol, fn=fn: (
                f"({pair[0][0]} {symbol} {pair[1][0]})",
                lambda env, l=pair[0][1], r=pair[1][1], fn=fn:
                    fn(l(env), r(env)),
            )
        )

    return st.one_of(
        binop("+", lambda x, y: x + y),
        binop("-", lambda x, y: x - y),
        binop("*", lambda x, y: x * y),
        binop("<", lambda x, y: 1 if x < y else 0),
        binop("==", lambda x, y: 1 if x == y else 0),
        children.map(lambda c: (f"(-{c[0]})", lambda env, f=c[1]: -f(env))),
    )


expressions = st.recursive(_leaf(), _combine, max_leaves=12)


@settings(max_examples=60, deadline=None)
@given(expr=expressions, a=st.integers(-20, 20), b=st.integers(-20, 20),
       c=st.integers(-20, 20))
def test_generated_expressions_match_reference(expr, a, b, c):
    text, reference = expr
    source = f"int f(int a, int b, int c) {{ return {text}; }}"
    it = Interpreter(front(source).module)
    assert it.call("f", a, b, c) == reference({"a": a, "b": b, "c": c})


# ----------------------------------------------------------------------
# statement-sequence generator: straight-line assignments + one branch
# ----------------------------------------------------------------------

assignments = st.lists(
    st.tuples(
        st.sampled_from(["x", "y"]),
        expressions,
    ),
    min_size=1, max_size=5,
)


@settings(max_examples=40, deadline=None)
@given(assigns=assignments, cond=expressions,
       a=st.integers(-10, 10), b=st.integers(-10, 10),
       c=st.integers(-10, 10))
def test_generated_statements_match_reference(assigns, cond, a, b, c):
    body = ["int x; int y;", "x = 0; y = 0;"]
    for var, (text, _) in assigns:
        body.append(f"{var} = {text};")
    cond_text, cond_fn = cond
    body.append(f"if ({cond_text}) {{ x = x + 1; }} else {{ y = y - 1; }}")
    body.append("return x * 31 + y;")
    source = (
        "int f(int a, int b, int c) {\n" + "\n".join(body) + "\n}"
    )
    it = Interpreter(front(source).module)

    env = {"a": a, "b": b, "c": c, "x": 0, "y": 0}
    for var, (_, fn) in assigns:
        env[var] = fn(env)
    if cond_fn(env):
        env["x"] += 1
    else:
        env["y"] -= 1
    expected = env["x"] * 31 + env["y"]

    assert it.call("f", a, b, c) == expected


@settings(max_examples=25, deadline=None)
@given(expr=expressions, n=st.integers(0, 15))
def test_generated_loop_bodies_match_reference(expr, n):
    text, fn = expr
    source = f"""
        int f(int n) {{
            int total;
            int a;
            int b;
            int c;
            total = 0;
            b = 2;
            c = 3;
            for (a = 0; a < n; a++) {{
                total = total + {text};
            }}
            return total;
        }}
    """
    it = Interpreter(front(source).module)
    expected = sum(fn({"a": i, "b": 2, "c": 3}) for i in range(n))
    assert it.call("f", n) == expected
