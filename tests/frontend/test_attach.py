"""Function-level annotation attachment rules."""

import pytest

from repro.annotations import AssumeCore, ShmInit
from repro.errors import AnnotationError
from tests.conftest import front


class TestAttachment:
    def test_annotation_after_signature_attaches(self):
        program = front("""
            typedef struct { int v; } R;
            double mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
        """)
        items = program.function_annotations["mon"]
        assert isinstance(items[0], AssumeCore)

    def test_postcondition_at_function_end_attaches(self):
        program = front("""
            typedef struct { int v; } R;
            R *p;
            void init(void)
            /***SafeFlow Annotation shminit /***/
            {
                p = (R *) shmat(0, 0, 0);
                /***SafeFlow Annotation assume(shmvar(p, sizeof(R))) /***/
            }
            int other(void) { return 1; }
        """)
        kinds = [type(i).__name__ for i in program.function_annotations["init"]]
        assert kinds == ["ShmInit", "AssumeShmvar"]
        assert "other" not in program.function_annotations

    def test_annotation_above_first_function_attaches_to_it(self):
        program = front("""
            /***SafeFlow Annotation shminit /***/
            void init(void) { }
        """)
        assert isinstance(program.function_annotations["init"][0], ShmInit)

    def test_assert_safe_not_in_function_table(self):
        program = front("""
            void emit(double v);
            void f(double output)
            {
                /***SafeFlow Annotation assert(safe(output)); /***/
                emit(output);
            }
        """)
        assert "f" not in program.function_annotations

    def test_orphan_annotation_raises(self):
        with pytest.raises(AnnotationError):
            front("""
                int x;
                /***SafeFlow Annotation shminit /***/
            """)

    def test_multiple_functions_correct_owner(self):
        program = front("""
            typedef struct { int v; } R;
            int a(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
            int b(void) { return 0; }
            int c(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
        """)
        assert set(program.function_annotations) == {"a", "c"}

    def test_annotation_line_total(self, figure2_program):
        assert figure2_program.annotation_lines == 8

    def test_sizeof_resolver_exposed(self, figure2_program):
        assert figure2_program.sizeof("SHMData") == 24
        assert figure2_program.sizeof("double") == 8
        assert figure2_program.sizeof("SHMData *") == 4
