"""Additional lowering coverage: nested aggregates, pointer chains,
unsupported constructs, and numeric corner cases."""

import pytest

from repro.errors import LoweringError
from repro.ir import Interpreter, verify_module
from tests.conftest import front


def interp(source: str) -> Interpreter:
    program = front(source)
    verify_module(program.module)
    return Interpreter(program.module)


class TestAggregates:
    def test_pointer_chain_through_structs(self):
        it = interp("""
            typedef struct { int value; } Leaf;
            typedef struct { Leaf *leaf; } Node;
            int f(Node *n) { return n->leaf->value; }
            int g(void) {
                Leaf leaf;
                Node node;
                leaf.value = 99;
                node.leaf = &leaf;
                return f(&node);
            }
        """)
        assert it.call("g") == 99

    def test_two_dimensional_array(self):
        it = interp("""
            int f(void) {
                int grid[3][4];
                int i;
                int j;
                for (i = 0; i < 3; i++) {
                    for (j = 0; j < 4; j++) {
                        grid[i][j] = i * 10 + j;
                    }
                }
                return grid[2][3];
            }
        """)
        assert it.call("f") == 23

    def test_array_inside_struct(self):
        it = interp("""
            typedef struct { int data[4]; int n; } Buf;
            int f(void) {
                Buf b;
                b.n = 2;
                b.data[0] = 5;
                b.data[1] = 7;
                return b.data[0] + b.data[1] + b.n;
            }
        """)
        assert it.call("f") == 14

    def test_struct_array_global(self):
        it = interp("""
            typedef struct { int x; } P;
            P table[3];
            int f(void) {
                table[0].x = 1;
                table[2].x = 9;
                return table[0].x + table[2].x;
            }
        """)
        assert it.call("f") == 10

    def test_pointer_to_struct_member_assignment(self):
        it = interp("""
            typedef struct { double lo; double hi; } Range;
            void widen(Range *r, double by) {
                r->lo = r->lo - by;
                r->hi = r->hi + by;
            }
            double f(void) {
                Range r;
                r.lo = 1.0;
                r.hi = 2.0;
                widen(&r, 0.5);
                return r.hi - r.lo;
            }
        """)
        assert it.call("f") == pytest.approx(2.0)


class TestNumericCorners:
    def test_char_arithmetic(self):
        it = interp("int f(void) { return 'z' - 'a'; }")
        assert it.call("f") == 25

    def test_unsigned_literal_suffixes(self):
        it = interp("unsigned int f(void) { return 10u + 20U; }")
        assert it.call("f") == 30

    def test_float_literal_suffix(self):
        it = interp("float f(void) { return 1.5f + 2.5f; }")
        assert it.call("f") == pytest.approx(4.0)

    def test_negative_constant_folding(self):
        it = interp("int f(void) { return -5 * -3; }")
        assert it.call("f") == 15

    def test_int_to_double_division(self):
        it = interp("double f(void) { return 7 / 2.0; }")
        assert it.call("f") == pytest.approx(3.5)

    def test_explicit_truncation_cast(self):
        it = interp("int f(double x) { return (int) x; }")
        assert it.call("f", 3.9) == 3

    def test_shift_operators(self):
        it = interp("int f(int a) { return (a << 3) | (a >> 1); }")
        assert it.call("f", 5) == (5 << 3) | (5 >> 1)


class TestUnsupportedConstructs:
    def test_goto_rejected_with_message(self):
        with pytest.raises(LoweringError, match="goto"):
            front("int f(void) { goto end; end: return 0; }")

    def test_unknown_type_name_rejected(self):
        from repro.errors import ParseError
        with pytest.raises((LoweringError, ParseError)):
            front("mystery_t f(void) { return 0; }")

    def test_incomplete_struct_member_access_rejected(self):
        from repro.errors import SafeFlowError
        with pytest.raises(SafeFlowError):
            front("""
                struct opaque;
                int f(struct opaque *p) { return p->x; }
            """)


class TestDeclarations:
    def test_multiple_declarators_per_line(self):
        it = interp("int f(void) { int a = 1, b = 2, c = 3; return a + b + c; }")
        assert it.call("f") == 6

    def test_extern_variable_merges_with_definition(self):
        program = front("""
            extern int shared;
            int shared = 5;
            int f(void) { return shared; }
        """)
        assert program.module.globals["shared"].initializer == 5

    def test_forward_function_use(self):
        it = interp("""
            int later(int x);
            int f(void) { return later(10); }
            int later(int x) { return x * 2; }
        """)
        assert it.call("f") == 20

    def test_typedef_of_pointer(self):
        it = interp("""
            typedef double *DoublePtr;
            double f(void) {
                double v;
                DoublePtr p;
                v = 3.5;
                p = &v;
                return *p;
            }
        """)
        assert it.call("f") == pytest.approx(3.5)

    def test_enum_in_switch(self):
        it = interp("""
            enum Mode { IDLE, RUN, STOP };
            int f(int m) {
                switch (m) {
                case IDLE: return 10;
                case RUN: return 20;
                case STOP: return 30;
                }
                return 0;
            }
        """)
        assert it.call("f", 1) == 20
