"""Front-end error recovery: degraded units instead of escaping errors.

With ``recover`` (driven by ``AnalysisConfig.degraded_mode``) every
per-unit, per-function and per-annotation front-end failure must
become a structured :class:`repro.degrade.DegradedUnit`; strict mode
must keep raising the same errors it always did.
"""

import pytest

from repro.degrade import (
    KIND_ANNOTATION,
    KIND_FUNCTION,
    KIND_UNIT,
    DegradedUnit,
    degraded_region,
)
from repro.errors import AnnotationError, PreprocessorError, SafeFlowError
from repro.frontend import load_files, load_source

GOOD = """
int helper(int x) { return x + 1; }
int main(void) { return helper(1); }
"""

BAD = "int broken( { return 0;\n"


def _kinds(program):
    return sorted(d.kind for d in program.degraded)


class TestUnitRecovery:
    def test_unparsable_unit_is_isolated(self, tmp_path):
        good = tmp_path / "good.c"
        bad = tmp_path / "bad.c"
        good.write_text(GOOD)
        bad.write_text(BAD)
        program = load_files([str(good), str(bad)], recover=True)
        assert _kinds(program) == [KIND_UNIT]
        unit = program.degraded[0]
        assert unit.name == str(bad)
        assert "parse error" in unit.cause
        # the good unit's functions are fully present
        assert program.module.get_function("helper") is not None
        assert not program.module.get_function("main").is_declaration

    def test_strict_mode_still_raises(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BAD)
        with pytest.raises(SafeFlowError):
            load_files([str(bad)])

    def test_source_parse_failure_recovers(self):
        program = load_source(BAD, filename="bad.c", recover=True)
        assert _kinds(program) == [KIND_UNIT]
        assert program.degraded[0].location is not None


class TestIncludeDiagnostics:
    def test_self_inclusion_cycle_is_reported(self, tmp_path):
        (tmp_path / "a.h").write_text('#include "b.h"\n')
        (tmp_path / "b.h").write_text('#include "a.h"\n')
        main = tmp_path / "main.c"
        main.write_text('#include "a.h"\nint main(void){return 0;}\n')
        with pytest.raises(PreprocessorError) as exc:
            load_files([str(main)], include_dirs=[str(tmp_path)])
        assert "circular #include" in str(exc.value)
        assert "a.h" in str(exc.value) and "->" in str(exc.value)

    def test_direct_self_include(self, tmp_path):
        selfy = tmp_path / "self.c"
        selfy.write_text('#include "self.c"\n')
        with pytest.raises(PreprocessorError) as exc:
            load_files([str(selfy)], include_dirs=[str(tmp_path)])
        assert "circular #include" in str(exc.value)

    def test_include_depth_cap(self, tmp_path):
        for i in range(40):
            (tmp_path / f"d{i}.h").write_text(f'#include "d{i + 1}.h"\n')
        (tmp_path / "d40.h").write_text("int deep_end;\n")
        main = tmp_path / "main.c"
        main.write_text('#include "d0.h"\nint main(void){return 0;}\n')
        with pytest.raises(PreprocessorError) as exc:
            load_files([str(main)], include_dirs=[str(tmp_path)])
        message = str(exc.value)
        assert "exceeds the maximum depth" in message
        assert "->" in message  # the diagnostic names the chain

    def test_cycle_becomes_degraded_unit_in_recover(self, tmp_path):
        selfy = tmp_path / "self.c"
        selfy.write_text('#include "self.c"\n')
        good = tmp_path / "good.c"
        good.write_text(GOOD)
        program = load_files([str(good), str(selfy)],
                             include_dirs=[str(tmp_path)], recover=True)
        assert _kinds(program) == [KIND_UNIT]
        assert "circular #include" in program.degraded[0].cause


class TestAnnotationRecovery:
    def test_unterminated_annotation_comment(self):
        source = ("int f(void) { return 0; }\n"
                  "/***SafeFlow Annotation assert(safe(x))\n")
        with pytest.raises(PreprocessorError):
            load_source(source, filename="t.c")
        program = load_source(source, filename="t.c", recover=True)
        assert _kinds(program) == [KIND_UNIT]
        assert "unterminated comment" in program.degraded[0].cause

    def test_unparsable_annotation_body(self):
        source = ("int main(void)\n"
                  "/***SafeFlow Annotation assume(core(( /***/\n"
                  "{ return 0; }\n")
        with pytest.raises(AnnotationError):
            load_source(source, filename="t.c")
        program = load_source(source, filename="t.c", recover=True)
        assert _kinds(program) == [KIND_ANNOTATION]
        # the broken annotation never reaches attachment, but the
        # program itself still front-ends
        assert not program.module.get_function("main").is_declaration

    def test_duplicate_annotation_on_one_declaration(self):
        source = """
double h(double x)
/***SafeFlow Annotation
    assume(core(p, 0, 4)); assume(core(p, 0, 4)) /***/
{ return x; }
int main(void) { return 0; }
"""
        program = load_source(source, filename="dup.c", recover=True)
        assert _kinds(program) == [KIND_ANNOTATION]
        unit = program.degraded[0]
        assert "duplicate AssumeCore" in unit.cause
        assert unit.function == "h"
        # one copy of the item is still attached
        items = program.module.function_annotations.get("h", [])
        assert len(items) == 1

    def test_annotation_without_any_function(self):
        source = "/***SafeFlow Annotation shminit /***/\nint x;\n"
        with pytest.raises(AnnotationError):
            load_source(source, filename="nf.c")
        program = load_source(source, filename="nf.c", recover=True)
        assert _kinds(program) == [KIND_ANNOTATION]
        assert "not attached to any function" in program.degraded[0].cause


class TestFunctionRecovery:
    def test_degraded_functions_named(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BAD)
        program = load_files([str(bad)], recover=True)
        # a unit failure leaves no functions; the set reflects only
        # function-kind degradations
        assert isinstance(program.degraded_functions, set)

    def test_goto_function_demoted_not_fatal(self):
        # goto is outside the paper's language subset: lowering rejects
        # it; recover mode demotes the function instead of aborting
        source = """
int weird(void) { goto out; out: return 1; }
int main(void) { return 0; }
"""
        with pytest.raises(SafeFlowError):
            load_source(source, filename="g.c")
        program = load_source(source, filename="g.c", recover=True)
        assert KIND_FUNCTION in _kinds(program)
        assert "weird" in program.degraded_functions
        func = program.module.get_function("weird")
        assert func is None or func.is_declaration
        assert not program.module.get_function("main").is_declaration


class TestDegradedUnitModel:
    def test_str_and_json(self):
        unit = DegradedUnit(kind=KIND_UNIT, name="x.c", cause="boom")
        assert "degraded unit 'x.c'" in str(unit)
        payload = unit.to_json()
        assert payload["kind"] == KIND_UNIT
        assert payload["cause"] == "boom"

    def test_degraded_region_prefix(self):
        assert degraded_region("f").startswith("degraded:")
