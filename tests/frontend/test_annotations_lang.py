"""The SafeFlow annotation language parser."""

import pytest
from hypothesis import given, strategies as st

from repro.annotations import (
    AssertSafe,
    AssumeCore,
    AssumeNoncore,
    AssumeShmvar,
    BinarySize,
    IntSize,
    ShmInit,
    SizeofSize,
    parse_annotation,
)
from repro.errors import AnnotationError


def sizeof_table(sizes=None):
    table = {"SHMData": 20, "int": 4, "double": 8}
    table.update(sizes or {})
    return table.__getitem__


class TestItems:
    def test_assume_core(self):
        items = parse_annotation("assume(core(ptr, 0, sizeof(SHMData)))")
        assert len(items) == 1
        item = items[0]
        assert isinstance(item, AssumeCore)
        assert item.pointer == "ptr"
        assert item.offset.evaluate(sizeof_table()) == 0
        assert item.size.evaluate(sizeof_table()) == 20

    def test_assume_noncore(self):
        (item,) = parse_annotation("assume(noncore(cmdRegion))")
        assert isinstance(item, AssumeNoncore)
        assert item.pointer == "cmdRegion"

    def test_assume_shmvar(self):
        (item,) = parse_annotation("assume(shmvar(fb, 2 * sizeof(SHMData)))")
        assert isinstance(item, AssumeShmvar)
        assert item.size.evaluate(sizeof_table()) == 40

    def test_shminit_bare(self):
        (item,) = parse_annotation("shminit")
        assert isinstance(item, ShmInit)

    def test_shminit_in_assume(self):
        (item,) = parse_annotation("assume(shminit)")
        assert isinstance(item, ShmInit)

    def test_assert_safe(self):
        (item,) = parse_annotation("assert(safe(output))")
        assert isinstance(item, AssertSafe)
        assert item.variable == "output"
        assert not item.is_function_level

    def test_function_level_flags(self):
        (item,) = parse_annotation("assume(core(p, 0, 4))")
        assert item.is_function_level

    def test_multiple_items_with_semicolons(self):
        items = parse_annotation(
            "assume(shmvar(a, 8)); assume(shmvar(b, 8)); assume(noncore(b))"
        )
        assert len(items) == 3

    def test_trailing_semicolon_ok(self):
        items = parse_annotation("assert(safe(x));")
        assert len(items) == 1


class TestSizeExpressions:
    def test_integer_literal(self):
        (item,) = parse_annotation("assume(shmvar(p, 128))")
        assert item.size == IntSize(128)

    def test_sizeof_struct_keyword(self):
        (item,) = parse_annotation("assume(shmvar(p, sizeof(struct data)))")
        assert isinstance(item.size, SizeofSize)
        assert item.size.evaluate({"struct data": 24}.__getitem__) == 24

    def test_arithmetic_precedence(self):
        (item,) = parse_annotation("assume(shmvar(p, 2 + 3 * 4))")
        assert item.size.evaluate(sizeof_table()) == 14

    def test_parenthesized(self):
        (item,) = parse_annotation("assume(shmvar(p, (2 + 3) * 4))")
        assert item.size.evaluate(sizeof_table()) == 20

    def test_subtraction_and_division(self):
        (item,) = parse_annotation("assume(shmvar(p, 100 / 4 - 5))")
        assert item.size.evaluate(sizeof_table()) == 20

    def test_sizeof_times_count(self):
        (item,) = parse_annotation("assume(shmvar(p, 4 * sizeof(int)))")
        assert item.size.evaluate(sizeof_table()) == 16

    def test_division_by_zero_raises(self):
        (item,) = parse_annotation("assume(shmvar(p, 8 / 0))")
        with pytest.raises(AnnotationError):
            item.size.evaluate(sizeof_table())

    @given(st.integers(min_value=0, max_value=10**6))
    def test_integer_roundtrip(self, n):
        (item,) = parse_annotation(f"assume(shmvar(p, {n}))")
        assert item.size.evaluate(sizeof_table()) == n

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000),
           st.integers(min_value=1, max_value=50))
    def test_linear_expression_evaluates(self, a, b, c):
        (item,) = parse_annotation(f"assume(shmvar(p, {a} + {b} * {c}))")
        assert item.size.evaluate(sizeof_table()) == a + b * c


class TestErrors:
    def test_empty_annotation_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation("")

    def test_unknown_predicate_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation("assume(tainted(x))")

    def test_assert_only_supports_safe(self):
        with pytest.raises(AnnotationError):
            parse_annotation("assert(core(p, 0, 4))")

    def test_missing_paren_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation("assume(core(p, 0, 4)")

    def test_junk_token_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotation("assume(core(p, 0, 4)) @")

    def test_core_needs_three_args(self):
        with pytest.raises(AnnotationError):
            parse_annotation("assume(core(p, 0))")

    def test_bare_identifier_not_an_item(self):
        with pytest.raises(AnnotationError):
            parse_annotation("banana")

    def test_location_carried_in_error(self):
        from repro.ir.source import SourceLocation
        loc = SourceLocation("x.c", 12)
        with pytest.raises(AnnotationError) as exc_info:
            parse_annotation("assume(wat(p))", loc)
        assert exc_info.value.location == loc
