"""The frontend recovery ladder (repro.frontend.recovery).

Covers the tier rewrites (line-count preservation is load-bearing:
the preprocessor line map must stay valid), the ladder driver's
ordering and provenance, the fail-closed discipline (a salvaged unit
can only ever degrade a verdict), cache/fingerprint hygiene, and the
crash-is-tier-failure contract under injected faults.
"""

import json

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.degrade import KIND_FUNCTION, KIND_RECOVERED, KIND_UNIT
from repro.errors import ParseError, PreprocessorError
from repro.frontend.driver import load_source, recover_token
from repro.frontend.recovery import (
    DEFAULT_TIERS,
    RECOVERY_FORMAT_VERSION,
    TIER_ORDER,
    cleanup_source,
    frontend_unit,
    gnu_strategy,
    normalize_gnu,
    normalize_tiers,
    recovery_fingerprint,
)
from repro.perf.fingerprint import config_fingerprint


GNU_SOURCE = """
int __attribute__((noinline)) twice(int x) { return x + x; }
static __inline__ int helper(int a) { return a - 1; }
int use(void) { return twice(helper(2)); }
"""

STDINT_SOURCE = """
#include <stdint.h>

uint16_t level;

uint16_t bump(uint16_t v)
{
    if (v < UINT16_MAX) {
        return (uint16_t) (v + 1);
    }
    return v;
}
"""

BROKEN_DEF_SOURCE = """
int good(int a) { return a + 1; }

int broken(int a)
{
    return a @@ 2;
}

int also_good(int a) { return good(a) - 1; }
"""

HOPELESS_SOURCE = "int f(void) {{ %% \"unterminated\n"


# ----------------------------------------------------------------------
# tier specs and fingerprints
# ----------------------------------------------------------------------

class TestTierSpecs:
    def test_all_spec(self):
        assert normalize_tiers("all") == DEFAULT_TIERS

    def test_comma_spec_canonical_order(self):
        # ladder order is fixed; the spec's order does not matter
        assert normalize_tiers("salvage,gnu") == ("gnu", "salvage")

    def test_iterable_spec(self):
        assert normalize_tiers(["prelude"]) == ("prelude",)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            normalize_tiers("gnu,frobnicate")

    def test_strict_not_a_tier(self):
        with pytest.raises(ValueError):
            normalize_tiers("strict")

    def test_fingerprint_empty_without_tiers(self):
        assert recovery_fingerprint(()) == ""

    def test_fingerprint_components(self):
        fp = recovery_fingerprint(DEFAULT_TIERS)
        assert fp.startswith(f"v{RECOVERY_FORMAT_VERSION}:")
        assert ",".join(TIER_ORDER) in fp
        assert f"gnu={gnu_strategy()}" in fp

    def test_fingerprint_sensitive_to_tier_set(self):
        assert (recovery_fingerprint(("gnu",))
                != recovery_fingerprint(("gnu", "salvage")))

    def test_config_fingerprint_folds_recovery(self):
        base = AnalysisConfig()
        recovering = AnalysisConfig(recover_tiers=DEFAULT_TIERS)
        assert config_fingerprint(base) != config_fingerprint(recovering)

    def test_recover_token_plain_bool_without_tiers(self):
        # seed cache keys must not move when the ladder is off
        assert recover_token(False) is False
        assert recover_token(True) is True

    def test_recover_token_with_tiers(self):
        token = recover_token(True, DEFAULT_TIERS)
        assert isinstance(token, str)
        assert recovery_fingerprint(DEFAULT_TIERS) in token


# ----------------------------------------------------------------------
# tier rewrites: line-count preservation is the contract
# ----------------------------------------------------------------------

class TestNormalizeGnu:
    def test_attribute_stripped_line_preserving(self):
        text = "int __attribute__((aligned(16))) x;\nint y;\n"
        new, edits = normalize_gnu(text)
        assert "__attribute__" not in new
        assert new.count("\n") == text.count("\n")
        assert edits

    def test_multiline_attribute(self):
        text = "int __attribute__((aligned(16),\n  packed)) x;\nint y;\n"
        new, edits = normalize_gnu(text)
        assert "__attribute__" not in new
        assert new.count("\n") == text.count("\n")

    def test_inline_asm_blanked(self):
        text = 'void f(void) {\n  asm volatile("dmb" ::: "memory");\n}\n'
        new, edits = normalize_gnu(text)
        assert "asm" not in new
        assert new.count("\n") == text.count("\n")

    def test_clean_source_untouched(self):
        text = "int f(int a) { return a; }\n"
        new, edits = normalize_gnu(text)
        assert new == text
        assert edits == []

    def test_string_literals_never_rewritten(self):
        text = 'char *s = "__attribute__((x)) typeof";\n'
        new, _ = normalize_gnu(text)
        assert '"__attribute__((x)) typeof"' in new


class TestCleanupSource:
    def test_unknown_directive_blanked(self):
        text = "#region x\nint a;\n#endregion\n"
        new, edits = cleanup_source(text)
        assert "#region" not in new and "#endregion" not in new
        assert "int a;" in new
        assert new.count("\n") == text.count("\n")
        assert len(edits) == 2

    def test_kept_directives_survive(self):
        text = "#define N 4\n#include <stdint.h>\n#pragma pack\nint a;\n"
        new, edits = cleanup_source(text)
        assert new == text
        assert edits == []

    def test_nonascii_spaced_out(self):
        text = "int a;\n"
        new, edits = cleanup_source(text)
        assert new == "int a;\n"
        assert edits

    def test_crlf_normalized(self):
        new, edits = cleanup_source("int a;\r\nint b;\r\n")
        assert "\r" not in new
        assert new.count("\n") == 2

    def test_annotation_comments_untouched(self):
        text = ("/***SafeFlow Annotation\n"
                "#warning not a directive, inside a comment\n"
                "assume(noncore(p)) /***/\nint a;\n")
        new, edits = cleanup_source(text)
        assert "#warning not a directive" in new


# ----------------------------------------------------------------------
# the ladder driver
# ----------------------------------------------------------------------

class TestLadder:
    def test_strict_clean_stops_at_strict(self):
        r = frontend_unit("int f(void) { return 1; }\n", "ok.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.tier == "strict"
        assert r.degraded == []
        assert r.attempts == {"strict": 1}
        assert r.successes == {"strict": 1}

    def test_gnu_tier_salvages_and_records_provenance(self):
        r = frontend_unit(GNU_SOURCE, "gnu.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.tier == "gnu"
        assert r.unit is not None
        (rec,) = [u for u in r.degraded if u.kind == KIND_RECOVERED]
        assert rec.tier == "gnu"
        assert rec.edits  # the exact rewrites are audited
        assert "strict front end failed" in rec.cause
        assert r.attempts == {"strict": 1, "gnu": 1}
        assert r.successes == {"gnu": 1}

    def test_prelude_tier_resolves_stdint(self):
        r = frontend_unit(STDINT_SOURCE, "adc.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.tier == "prelude"
        assert r.attempts["gnu"] == 1 and "gnu" not in r.successes

    def test_tier_subset_respected(self):
        # without the prelude tier a stdint unit cannot be salvaged by
        # gnu alone; it must fall through to the enabled later tiers
        r = frontend_unit(STDINT_SOURCE, "adc.c",
                          recover=True, tiers=("gnu", "cleanup"))
        assert r.tier != "prelude"
        assert "prelude" not in r.attempts

    def test_salvage_drops_only_offending_definition(self):
        r = frontend_unit(BROKEN_DEF_SOURCE, "mix.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.tier == "salvage"
        dropped = [u for u in r.degraded if u.kind == KIND_FUNCTION]
        assert [u.function for u in dropped] == ["broken"]
        defs = [ext.decl.name for ext in r.unit.ast.ext
                if ext.__class__.__name__ == "FuncDef"]
        assert "good" in defs and "also_good" in defs
        assert "broken" not in defs

    def test_salvage_location_is_line_accurate(self):
        (dropped,) = [u for u in frontend_unit(
            BROKEN_DEF_SOURCE, "mix.c", recover=True,
            tiers=DEFAULT_TIERS).degraded if u.kind == KIND_FUNCTION]
        want = BROKEN_DEF_SOURCE.split("\n").index("int broken(int a)") + 1
        assert dropped.location.line == want

    def test_all_tiers_fail_lost_unit(self):
        r = frontend_unit(HOPELESS_SOURCE, "blob.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.unit is None
        assert r.tier is None
        assert [u.kind for u in r.degraded] == [KIND_UNIT]
        assert set(r.attempts) == {"strict", *TIER_ORDER}
        assert r.successes == {}

    def test_all_tiers_fail_without_recover_raises(self):
        with pytest.raises((ParseError, PreprocessorError)):
            frontend_unit(HOPELESS_SOURCE, "blob.c",
                          recover=False, tiers=DEFAULT_TIERS)

    def test_no_tiers_is_historical_behavior(self):
        with pytest.raises((ParseError, PreprocessorError)):
            frontend_unit(GNU_SOURCE, "gnu.c", recover=False)
        r = frontend_unit(GNU_SOURCE, "gnu.c", recover=True)
        assert r.unit is None
        assert r.attempts == {}  # counters only exist with the ladder


# ----------------------------------------------------------------------
# coordinate translation with grown preludes (satellite regression)
# ----------------------------------------------------------------------

class TestCoordinates:
    def test_prelude_growth_keeps_lines_accurate(self):
        # the prelude tier injects fake headers and compat typedefs
        # before the unit; every function's recorded start must still
        # point at the original source line
        program = load_source(STDINT_SOURCE, filename="adc.c",
                              recover=True, recover_tiers=DEFAULT_TIERS)
        by_name = {u.function: u for u in program.degraded
                   if u.kind == KIND_FUNCTION}
        want = STDINT_SOURCE.split("\n").index(
            "uint16_t bump(uint16_t v)") + 1
        assert by_name["bump"].location.line == want

    def test_smeared_function_location_line_accurate(self):
        program = load_source(GNU_SOURCE, filename="gnu.c",
                              recover=True, recover_tiers=DEFAULT_TIERS)
        by_name = {u.function: u for u in program.degraded
                   if u.kind == KIND_FUNCTION}
        want = GNU_SOURCE.split("\n").index(
            "int use(void) { return twice(helper(2)); }") + 1
        assert by_name["use"].location.line == want


# ----------------------------------------------------------------------
# fail-closed discipline through the full pipeline
# ----------------------------------------------------------------------

class TestFailClosed:
    def test_recovered_unit_never_passes(self):
        config = AnalysisConfig(recover_tiers=DEFAULT_TIERS)
        report = SafeFlow(config).analyze_source(GNU_SOURCE, name="gnu")
        assert report.verdict == "degraded"
        assert not report.passed
        assert report.stats.recovered_units == 1

    def test_every_function_of_recovered_unit_degraded(self):
        program = load_source(GNU_SOURCE, filename="gnu.c",
                              recover=True, recover_tiers=DEFAULT_TIERS)
        smeared = {u.function for u in program.degraded
                   if u.kind == KIND_FUNCTION}
        assert smeared == {"twice", "helper", "use"}

    def test_strict_clean_report_byte_identical_with_ladder(self):
        clean = "int f(int a) { return a + 1; }\n"
        strict = SafeFlow(AnalysisConfig()).analyze_source(clean, name="p")
        ladder = SafeFlow(AnalysisConfig(
            recover_tiers=DEFAULT_TIERS)).analyze_source(clean, name="p")
        assert ladder.render() == strict.render()
        assert ladder.verdict == strict.verdict == "pass"

    def test_recovery_counters_reach_stats(self):
        config = AnalysisConfig(recover_tiers=DEFAULT_TIERS)
        report = SafeFlow(config).analyze_source(GNU_SOURCE, name="gnu")
        assert report.stats.recovery_attempts["strict"] == 1
        assert report.stats.recovery_successes == {"gnu": 1}
        payload = report.to_json()["stats"]
        assert payload["recovered_units"] == 1
        assert payload["recovery_attempts"]["gnu"] == 1

    def test_stats_silent_without_ladder(self):
        report = SafeFlow(AnalysisConfig()).analyze_source(
            "int f(void) { return 0; }\n", name="p")
        payload = report.to_json()["stats"]
        assert "recovered_units" not in payload
        assert "recovery_attempts" not in payload


# ----------------------------------------------------------------------
# differential fail-closed proof: bundled corpus + wild corpus
# ----------------------------------------------------------------------

class TestDifferential:
    def test_bundled_corpus_byte_identical_under_ladder(self):
        # wherever strict mode succeeds, enabling the ladder must not
        # change a single byte of the report
        from repro.corpus import load_all

        for system in load_all():
            files = [str(p) for p in system.core_files]
            strict = SafeFlow(AnalysisConfig()).analyze_files(
                files, name=system.key)
            ladder = SafeFlow(AnalysisConfig(
                recover_tiers=DEFAULT_TIERS)).analyze_files(
                files, name=system.key)
            assert ladder.render(verbose=True) == strict.render(
                verbose=True), system.key
            assert ladder.stats.recovered_units == 0

    def test_wild_corpus_recovered_units_never_pass(self):
        import glob
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples", "wild")
        config = AnalysisConfig(recover_tiers=DEFAULT_TIERS)
        for path in sorted(glob.glob(os.path.join(root, "*.c"))):
            report = SafeFlow(config).analyze_files(
                [path], name=os.path.basename(path))
            if report.stats.recovered_units or any(
                    u.kind == KIND_UNIT for u in report.degraded):
                assert not report.passed, path
                assert report.verdict == "degraded", path
            else:
                assert report.verdict == "pass", path


# ----------------------------------------------------------------------
# crash-is-tier-failure (chaos contract)
# ----------------------------------------------------------------------

class TestTierCrash:
    def _with_fault(self, monkeypatch, tier):
        monkeypatch.setenv("SAFEFLOW_FAULTS",
                           json.dumps({"crash_tier": tier}))

    def test_crashed_tier_falls_through(self, monkeypatch):
        self._with_fault(monkeypatch, "gnu")
        r = frontend_unit(GNU_SOURCE, "gnu.c",
                          recover=True, tiers=DEFAULT_TIERS)
        # the gnu tier was attempted, crashed, and did not succeed;
        # the unit either lands on a later tier or is lost — never a
        # driver error
        assert r.attempts["gnu"] == 1
        assert "gnu" not in r.successes
        assert r.tier != "gnu"

    def test_crashed_salvage_loses_unit_gracefully(self, monkeypatch):
        self._with_fault(monkeypatch, "salvage")
        r = frontend_unit(BROKEN_DEF_SOURCE, "mix.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.unit is None
        assert [u.kind for u in r.degraded] == [KIND_UNIT]

    def test_crash_never_reaches_analysis_driver(self, monkeypatch):
        self._with_fault(monkeypatch, "gnu")
        config = AnalysisConfig(recover_tiers=DEFAULT_TIERS)
        report = SafeFlow(config).analyze_source(GNU_SOURCE, name="gnu")
        assert report.verdict == "degraded"

    def test_crashed_strict_with_ladder_still_salvages(self, monkeypatch):
        # even the strict attempt crashing is contained once the
        # ladder is enabled
        self._with_fault(monkeypatch, "strict")
        r = frontend_unit("int f(void) { return 1; }\n", "ok.c",
                          recover=True, tiers=DEFAULT_TIERS)
        assert r.tier is not None and r.tier != "strict"
        assert r.unit is not None
