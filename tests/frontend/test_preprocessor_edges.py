"""Preprocessor pathological inputs and robustness properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PreprocessorError
from repro.frontend.preprocessor import Preprocessor


def pp(text: str, **kwargs):
    return Preprocessor(**kwargs).process_text(text, filename="t.c")


class TestMacroEdges:
    def test_self_referential_macro_terminates(self):
        out = pp("#define A A\nint x = A;")
        assert "int x = A;" in out.text  # expansion depth-limited

    def test_mutually_recursive_macros_terminate(self):
        out = pp("#define A B\n#define B A\nint x = A;")
        assert "int x =" in out.text

    def test_nested_parens_in_macro_args(self):
        out = pp("#define ID(x) (x)\nint y = ID((1 + (2 * 3)));")
        assert "((1 + (2 * 3)))" in out.text

    def test_macro_call_with_string_argument(self):
        out = pp('#define LOG(s) printf(s)\nvoid f(void) { LOG("a,b"); }')
        assert 'printf("a,b")' in out.text

    def test_empty_function_like_macro(self):
        out = pp("#define NOP() do_nothing()\nvoid f(void) { NOP(); }")
        assert "do_nothing()" in out.text

    def test_function_like_name_without_call_left_alone(self):
        out = pp("#define SQ(x) ((x)*(x))\nint addr = SQ;")
        assert "int addr = SQ;" in out.text

    def test_macro_inside_macro_argument(self):
        out = pp("#define TWO 2\n#define DBL(x) ((x)+(x))\n"
                 "int y = DBL(TWO);")
        assert "((2)+(2))" in out.text

    def test_unterminated_macro_args_rejected(self):
        with pytest.raises(PreprocessorError):
            pp("#define F(a) a\nint x = F(1;\n")

    def test_define_without_name_rejected(self):
        with pytest.raises(PreprocessorError):
            pp("#define 123 4")


class TestConditionalEdges:
    def test_elif_after_else_rejected(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\n#else\n#elif B\n#endif")

    def test_double_else_rejected(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\n#else\n#else\n#endif")

    def test_if_with_comparison_chain(self):
        out = pp("#define V 3\n#if V >= 2 && V < 10\nint x;\n#endif")
        assert "int x;" in out.text

    def test_unknown_identifier_is_zero(self):
        out = pp("#if WHATEVER\nint x;\n#else\nint y;\n#endif")
        assert "int y;" in out.text

    def test_integer_suffixes_handled(self):
        out = pp("#if 1024UL > 512\nint x;\n#endif")
        assert "int x;" in out.text

    def test_defines_inside_untaken_branch_ignored(self):
        out = pp("#ifdef A\n#define HIDDEN 1\n#endif\nint x = HIDDEN;")
        assert "int x = HIDDEN;" in out.text

    def test_conditional_inside_taken_branch(self):
        out = pp("#define A\n#ifdef A\n#define B\n#ifdef B\nint x;\n"
                 "#endif\n#endif")
        assert "int x;" in out.text


class TestAnnotationEdges:
    def test_annotation_with_crlf_content(self):
        out = pp("/***SafeFlow Annotation\r\n   shminit /***/")
        assert len(out.annotations) == 1

    def test_malformed_annotation_raises(self):
        from repro.errors import AnnotationError
        with pytest.raises(AnnotationError):
            pp("/***SafeFlow Annotation assume(banana(x)) /***/")

    def test_two_annotations_same_line_ok(self):
        out = pp("/***SafeFlow Annotation assert(safe(a)); /***/ "
                 "/***SafeFlow Annotation assert(safe(b)); /***/")
        assert len(out.annotations) == 2
        assert out.text.count("__safeflow_assert_safe") == 2

    def test_annotation_inside_untaken_branch_still_extracted(self):
        # comments are stripped before directives are interpreted, so
        # annotations are positional facts regardless of conditionals —
        # document this behavior
        out = pp("#ifdef NOPE\n/***SafeFlow Annotation shminit /***/\n"
                 "#endif\nint x;")
        assert len(out.annotations) == 1


identifier = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)


class TestRobustness:
    @settings(max_examples=40, deadline=None)
    @given(name=identifier, value=st.integers(0, 10**6))
    def test_define_roundtrip(self, name, value):
        # a macro named like the declarator would (correctly) replace it
        # too, so keep the variable name out of the macro namespace
        variable = f"v_{name}_v"
        out = pp(f"#define {name} {value}\nint {variable} = {name};")
        assert f"int {variable} = {value};" in out.text

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcdefg (){};=+-*/<>!&|\n\t0123456789",
                   max_size=200))
    def test_never_hangs_or_crashes_unexpectedly(self, text):
        try:
            pp(text)
        except PreprocessorError:
            pass  # structured rejection is fine; crashes are not

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(
        ["int a;", "double b;", "/* c */", "// d", "", "#define X 1",
         "int e = X;"]
    ), max_size=12))
    def test_line_count_of_output_is_bounded(self, lines):
        text = "\n".join(lines)
        out = pp(text)
        assert len(out.text.splitlines()) <= max(1, len(lines))
