"""Mini C preprocessor: comments, annotations, macros, conditionals."""

import pytest

from repro.errors import PreprocessorError
from repro.frontend.preprocessor import Preprocessor, PreprocessedSource
from repro.ir.instructions import ASSERT_SAFE_MARKER


def pp(text: str, **kwargs) -> PreprocessedSource:
    return Preprocessor(**kwargs).process_text(text, filename="t.c")


class TestComments:
    def test_line_comment_stripped(self):
        out = pp("int x; // hello\nint y;")
        assert "hello" not in out.text
        assert "int y;" in out.text

    def test_block_comment_stripped(self):
        out = pp("int /* comment */ x;")
        assert "comment" not in out.text
        assert "int" in out.text and "x;" in out.text

    def test_multiline_comment_preserves_line_count(self):
        out = pp("int a;\n/* one\ntwo\nthree */\nint b;")
        lines = out.text.splitlines()
        assert lines[0] == "int a;"
        assert "int b;" in lines[4]

    def test_comment_inside_string_kept(self):
        out = pp('char *s = "/* not a comment */";')
        assert "/* not a comment */" in out.text

    def test_line_comment_inside_string_kept(self):
        out = pp('char *s = "// not a comment";')
        assert "// not a comment" in out.text

    def test_unterminated_comment_raises(self):
        with pytest.raises(PreprocessorError):
            pp("int x; /* oops")


class TestAnnotations:
    def test_annotation_extracted(self):
        out = pp("void f(void)\n/***SafeFlow Annotation\n   shminit /***/\n{}")
        assert len(out.annotations) == 1
        assert str(out.annotations[0].items[0]) == "shminit"

    def test_assert_safe_rewritten_to_marker(self):
        out = pp("/***SafeFlow Annotation assert(safe(output)); /***/")
        assert f"{ASSERT_SAFE_MARKER}(output);" in out.text

    def test_assert_stays_on_same_line(self):
        out = pp("int a;\n/***SafeFlow Annotation assert(safe(v)); /***/\nint b;")
        lines = out.text.splitlines()
        assert ASSERT_SAFE_MARKER in lines[1]

    def test_annotation_location_recorded(self):
        out = pp("int a;\nint b;\n/***SafeFlow Annotation shminit /***/")
        assert out.annotations[0].location.line == 3
        assert out.annotations[0].location.filename == "t.c"

    def test_multiple_items_in_one_comment(self):
        out = pp(
            "/***SafeFlow Annotation\n"
            "   assume(shmvar(p, 16));\n"
            "   assume(noncore(p)); /***/"
        )
        assert len(out.annotations[0].items) == 2

    def test_plain_comment_is_not_annotation(self):
        out = pp("/* SafeFlow is great */ int x;")
        assert out.annotations == []

    def test_annotation_line_count_multiline(self):
        out = pp(
            "/***SafeFlow Annotation\n"
            "   assume(shmvar(a, 8));\n"
            "   assume(shmvar(b, 8));\n"
            "   assume(noncore(b)) /***/"
        )
        from repro.frontend.attach import annotation_line_count
        assert annotation_line_count(out.annotations) == 3


class TestDefines:
    def test_object_macro_expansion(self):
        out = pp("#define LIMIT 42\nint x = LIMIT;")
        assert "int x = 42;" in out.text

    def test_macro_not_expanded_in_string(self):
        out = pp('#define LIMIT 42\nchar *s = "LIMIT";')
        assert '"LIMIT"' in out.text

    def test_macro_word_boundary(self):
        out = pp("#define A 1\nint ABC = 5;")
        assert "ABC = 5" in out.text

    def test_function_like_macro(self):
        out = pp("#define SQ(x) ((x) * (x))\nint y = SQ(3);")
        assert "((3) * (3))" in out.text

    def test_function_like_macro_multi_args(self):
        out = pp("#define ADD(a, b) ((a) + (b))\nint y = ADD(1, 2);")
        assert "((1) + (2))" in out.text

    def test_nested_macro_expansion(self):
        out = pp("#define A B\n#define B 7\nint x = A;")
        assert "int x = 7;" in out.text

    def test_undef(self):
        out = pp("#define A 1\n#undef A\nint x = A;")
        assert "int x = A;" in out.text

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#define ADD(a, b) (a + b)\nint x = ADD(1);")

    def test_predefined_macros(self):
        out = pp("int x = FOO;", predefined={"FOO": "9"})
        assert "int x = 9;" in out.text


class TestConditionals:
    def test_ifdef_taken(self):
        out = pp("#define A\n#ifdef A\nint x;\n#endif")
        assert "int x;" in out.text

    def test_ifdef_not_taken(self):
        out = pp("#ifdef A\nint x;\n#endif\nint y;")
        assert "int x;" not in out.text
        assert "int y;" in out.text

    def test_ifndef_include_guard(self):
        out = pp("#ifndef G\n#define G\nint x;\n#endif")
        assert "int x;" in out.text

    def test_else_branch(self):
        out = pp("#ifdef A\nint x;\n#else\nint y;\n#endif")
        assert "int y;" in out.text
        assert "int x;" not in out.text

    def test_elif(self):
        out = pp("#define B 1\n#if 0\nint x;\n#elif B\nint y;\n#endif")
        assert "int y;" in out.text

    def test_if_arithmetic(self):
        out = pp("#if 2 + 2 == 4\nint x;\n#endif")
        assert "int x;" in out.text

    def test_if_defined_operator(self):
        out = pp("#define A\n#if defined(A) && !defined(B)\nint x;\n#endif")
        assert "int x;" in out.text

    def test_nested_conditionals(self):
        out = pp("#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif\nint z;")
        assert "int x;" not in out.text
        assert "int y;" not in out.text
        assert "int z;" in out.text

    def test_unterminated_conditional_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\nint x;")

    def test_endif_without_if_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#endif")

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            pp("#error nope")

    def test_error_in_untaken_branch_ignored(self):
        out = pp("#ifdef A\n#error nope\n#endif\nint x;")
        assert "int x;" in out.text


class TestIncludes:
    def test_system_include_skipped(self):
        out = pp("#include <stdio.h>\nint x;")
        assert "int x;" in out.text

    def test_local_include_inlined(self, tmp_path):
        header = tmp_path / "defs.h"
        header.write_text("#define N 4\n")
        main = tmp_path / "main.c"
        main.write_text('#include "defs.h"\nint a[N];\n')
        out = Preprocessor().process_file(str(main))
        assert "int a[4];" in out.text

    def test_missing_include_raises(self, tmp_path):
        main = tmp_path / "main.c"
        main.write_text('#include "nope.h"\n')
        with pytest.raises(PreprocessorError):
            Preprocessor().process_file(str(main))

    def test_include_guard_prevents_duplication(self, tmp_path):
        header = tmp_path / "defs.h"
        header.write_text("#ifndef H\n#define H\nint shared;\n#endif\n")
        main = tmp_path / "main.c"
        main.write_text('#include "defs.h"\n#include "defs.h"\n')
        out = Preprocessor().process_file(str(main))
        assert out.text.count("int shared;") == 1

    def test_line_map_tracks_included_file(self, tmp_path):
        header = tmp_path / "defs.h"
        header.write_text("int from_header;\n")
        main = tmp_path / "main.c"
        main.write_text('#include "defs.h"\nint from_main;\n')
        out = Preprocessor().process_file(str(main))
        lines = out.text.splitlines()
        header_idx = lines.index("int from_header;") + 1
        main_idx = lines.index("int from_main;") + 1
        assert out.origin(header_idx).filename.endswith("defs.h")
        assert out.origin(main_idx).filename.endswith("main.c")


class TestLineHandling:
    def test_line_splicing(self):
        out = pp("#define LONG 1 + \\\n2\nint x = LONG;")
        assert "1 + 2" in out.text

    def test_origin_mapping_simple(self):
        out = pp("int a;\nint b;\nint c;")
        assert out.origin(2).line == 2

    def test_origin_after_directives(self):
        out = pp("#define X 1\n\nint a;")
        # 'int a;' is on source line 3
        lines = out.text.splitlines()
        idx = lines.index("int a;") + 1
        assert out.origin(idx).line == 3
