"""Paranoid mode, CLI flags, and config interplay."""

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.cli import main as cli_main
from tests.conftest import analyze

SOURCE = """
typedef struct { double v; } R;
R *trusted;   /* declared core: no noncore annotation */
R *hostile;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 2 * sizeof(R), 0666), 0, 0);
    trusted = (R *) cursor;
    hostile = (R *) (cursor + sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(trusted, sizeof(R)));
        assume(shmvar(hostile, sizeof(R)));
        assume(noncore(hostile)) /***/
}
int main(void) {
    double a;
    double b;
    initShm();
    a = trusted->v;
    /***SafeFlow Annotation assert(safe(a)); /***/
    emit(a);
    b = hostile->v;
    /***SafeFlow Annotation assert(safe(b)); /***/
    emit(b);
    return 0;
}
"""


class TestParanoidMode:
    def test_default_trusts_core_declarations(self):
        report = analyze(SOURCE)
        failing = {e.variable for e in report.errors}
        assert failing == {"b"}
        assert len(report.warnings) == 1

    def test_paranoid_distrusts_everything(self):
        config = AnalysisConfig(unannotated_shm_is_core=False)
        report = analyze(SOURCE, config)
        failing = {e.variable for e in report.errors}
        assert failing == {"a", "b"}
        assert len(report.warnings) == 2

    def test_paranoid_is_strictly_more_conservative_on_corpus(self):
        from repro.corpus import load_all
        for system in load_all():
            normal = system.analyze()
            paranoid = system.analyze(
                AnalysisConfig(unannotated_shm_is_core=False)
            )
            assert len(paranoid.warnings) >= len(normal.warnings)
            assert len(paranoid.errors) >= len(normal.errors)


class TestCliFlags:
    def _write(self, tmp_path):
        path = tmp_path / "core.c"
        path.write_text(SOURCE)
        return str(path)

    def test_paranoid_flag(self, tmp_path, capsys):
        path = self._write(tmp_path)
        cli_main(["analyze", path, "--json", "--paranoid"])
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warnings"] == 2

    def test_summaries_flag(self, tmp_path, capsys):
        path = self._write(tmp_path)
        rc = cli_main(["analyze", path, "--json", "--summaries"])
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] + \
            payload["counts"]["false_positives"] == 1
        assert rc == 1

    def test_no_lint_flag(self, tmp_path, capsys):
        vacuous = """
            typedef struct { double v; } R;
            R *nc;
            void emit(double v);
            void initShm(void)
            /***SafeFlow Annotation shminit /***/
            {
                nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
                /***SafeFlow Annotation
                    assume(shmvar(nc, sizeof(R)));
                    assume(noncore(nc)) /***/
            }
            double mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
            int main(void) { initShm(); emit(mon(nc)); return 0; }
        """
        path = tmp_path / "vac.c"
        path.write_text(vacuous)
        cli_main(["analyze", str(path)])
        out_with = capsys.readouterr().out
        assert "monitors nothing" in out_with
        cli_main(["analyze", str(path), "--no-lint"])
        out_without = capsys.readouterr().out
        assert "monitors nothing" not in out_without
