"""Scheduler and run-time value-flow tracking."""

import pytest

from repro.errors import SimulationError
from repro.runtime import (
    FunctionComponent,
    RuntimeFlowTracker,
    Scheduler,
    UnsafeFlowError,
)


class TestScheduler:
    def test_dispatch_counts_follow_periods(self):
        sched = Scheduler()
        calls = {"fast": 0, "slow": 0}
        sched.add(FunctionComponent("fast", 0.01,
                                    lambda t: calls.__setitem__(
                                        "fast", calls["fast"] + 1)))
        sched.add(FunctionComponent("slow", 0.05,
                                    lambda t: calls.__setitem__(
                                        "slow", calls["slow"] + 1)))
        sched.run(1.0)
        assert calls["fast"] == 100
        assert calls["slow"] == 20

    def test_registration_order_breaks_ties(self):
        order = []
        sched = Scheduler()
        sched.add(FunctionComponent("core", 0.01,
                                    lambda t: order.append("core")))
        sched.add(FunctionComponent("noncore", 0.01,
                                    lambda t: order.append("noncore")))
        sched.run(0.03)
        assert order[:2] == ["core", "noncore"]

    def test_time_advances(self):
        sched = Scheduler()
        sched.add(FunctionComponent("c", 0.01, lambda t: None))
        sched.run(0.5)
        assert sched.time == pytest.approx(0.5)

    def test_empty_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().run(1.0)

    def test_bad_period_rejected(self):
        with pytest.raises(SimulationError):
            FunctionComponent("c", 0.0, lambda t: None)

    def test_dispatch_bookkeeping(self):
        sched = Scheduler()
        # binary-exact period so releases land exactly on the horizon
        sched.add(FunctionComponent("c", 0.125, lambda t: None))
        sched.run(1.0)
        assert sched.dispatches["c"] == 8


class TestRuntimeFlowTracker:
    def test_noncore_read_tainted(self):
        tracker = RuntimeFlowTracker()
        value = tracker.read_noncore("cmd", 2.5)
        assert not value.is_safe
        assert value.sources == frozenset({"cmd"})

    def test_core_read_safe(self):
        tracker = RuntimeFlowTracker()
        assert tracker.read_core(1.0).is_safe

    def test_combine_propagates(self):
        tracker = RuntimeFlowTracker()
        a = tracker.read_noncore("cmd", 2.0)
        b = tracker.read_core(3.0)
        total = tracker.combine(lambda x, y: x + y, a, b)
        assert total.value == 5.0
        assert total.sources == frozenset({"cmd"})

    def test_monitorized_clears_taint(self):
        tracker = RuntimeFlowTracker()
        value = tracker.monitorized(tracker.read_noncore("cmd", 2.0))
        assert value.is_safe

    def test_assert_safe_records_violation(self):
        tracker = RuntimeFlowTracker()
        tracker.assert_safe(tracker.read_noncore("cmd", 2.0))
        assert len(tracker.violations) == 1

    def test_assert_safe_can_raise(self):
        tracker = RuntimeFlowTracker()
        with pytest.raises(UnsafeFlowError):
            tracker.assert_safe(tracker.read_noncore("cmd", 2.0),
                                raise_on_violation=True)

    def test_disabled_tracker_has_no_taint(self):
        tracker = RuntimeFlowTracker(enabled=False)
        value = tracker.read_noncore("cmd", 2.0)
        assert value.is_safe
        tracker.assert_safe(value)
        assert tracker.violations == []

    def test_reads_counted_for_overhead_measurement(self):
        tracker = RuntimeFlowTracker()
        for _ in range(5):
            tracker.read_noncore("cmd", 1.0)
        assert tracker.reads == 5
