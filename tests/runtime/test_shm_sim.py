"""Simulated shared memory: layout checking and the write audit trail."""

import pytest

from repro.errors import SimulationError
from repro.runtime import RegionSpec, SharedSegment, init_check


class TestInitCheck:
    def test_clean_layout_passes(self):
        init_check(64, [RegionSpec("a", 0, 32), RegionSpec("b", 32, 32)])

    def test_overlap_rejected(self):
        with pytest.raises(SimulationError, match="overlap"):
            init_check(64, [RegionSpec("a", 0, 40), RegionSpec("b", 32, 16)])

    def test_region_past_segment_rejected(self):
        with pytest.raises(SimulationError, match="exceeds"):
            init_check(32, [RegionSpec("a", 0, 48)])

    def test_negative_offset_rejected(self):
        with pytest.raises(SimulationError):
            init_check(64, [RegionSpec("a", -4, 8)])

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            init_check(64, [RegionSpec("a", 0, 0)])

    def test_adjacent_regions_fine(self):
        init_check(48, [RegionSpec("a", 0, 24), RegionSpec("b", 24, 24)])


class TestSegment:
    def _segment(self):
        shm = SharedSegment(64)
        shm.declare("feedback", 0, 32, noncore=True,
                    initial={"angle": 0.0})
        shm.declare("cmd", 32, 16, noncore=True)
        shm.run_init_check()
        return shm

    def test_read_default(self):
        shm = self._segment()
        assert shm.read("cmd", "voltage", default=0.0) == 0.0

    def test_write_then_read(self):
        shm = self._segment()
        shm.write("core", "feedback", 0.1, angle=0.5)
        assert shm.read("feedback", "angle") == 0.5

    def test_unknown_region_rejected(self):
        shm = self._segment()
        with pytest.raises(SimulationError):
            shm.read("nope", "x")

    def test_duplicate_declare_rejected(self):
        shm = SharedSegment(64)
        shm.declare("a", 0, 8)
        with pytest.raises(SimulationError):
            shm.declare("a", 8, 8)

    def test_declare_after_check_rejected(self):
        shm = self._segment()
        with pytest.raises(SimulationError):
            shm.declare("late", 48, 8)

    def test_bad_layout_fails_at_check(self):
        shm = SharedSegment(16)
        shm.declare("a", 0, 12)
        shm.declare("b", 8, 8)
        with pytest.raises(SimulationError):
            shm.run_init_check()

    def test_write_log_records_author(self):
        shm = self._segment()
        shm.write("core", "feedback", 0.0, angle=1.0)
        shm.write("attacker", "feedback", 0.5, angle=0.0)
        assert shm.writers_of("feedback") == ["attacker", "core"]

    def test_noncore_writes_audit(self):
        """The audit catches the Generic Simplex rigging: a region the
        core believes it alone writes was also written by someone else."""
        shm = self._segment()
        shm.write("core", "feedback", 0.0, angle=1.0)
        shm.write("complex", "feedback", 0.5, angle=0.0)
        intruders = shm.noncore_writes_to("feedback", core_writers=("core",))
        assert len(intruders) == 1
        assert intruders[0].writer == "complex"

    def test_read_region_returns_copy(self):
        shm = self._segment()
        snapshot = shm.read_region("feedback")
        snapshot["angle"] = 99.0
        assert shm.read("feedback", "angle") == 0.0
