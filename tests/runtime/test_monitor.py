"""Run-time monitors: range, freshness, envelope, composition."""

import numpy as np
import pytest

from repro.runtime import (
    CompositeMonitor,
    EnvelopeMonitor,
    FreshnessMonitor,
    RangeMonitor,
)
from repro.simplex import InvertedPendulum, LQRController, StabilityEnvelope


class TestRangeMonitor:
    def test_admits_in_range(self):
        assert RangeMonitor(-5, 5).check(3.0, {})

    def test_rejects_out_of_range(self):
        result = RangeMonitor(-5, 5).check(5.1, {})
        assert not result
        assert "outside" in result.reason

    def test_rejects_nan(self):
        assert not RangeMonitor(-5, 5).check(float("nan"), {})

    def test_rejects_inf(self):
        assert not RangeMonitor(-5, 5).check(float("inf"), {})

    def test_boundary_admitted(self):
        assert RangeMonitor(-5, 5).check(-5.0, {})


class TestFreshnessMonitor:
    def test_first_value_admitted(self):
        mon = FreshnessMonitor()
        assert mon.check(1.0, {"seq": 1, "valid": True})

    def test_repeated_seq_rejected(self):
        mon = FreshnessMonitor()
        mon.check(1.0, {"seq": 1, "valid": True})
        result = mon.check(1.0, {"seq": 1, "valid": True})
        assert not result
        assert "stale" in result.reason

    def test_advancing_seq_admitted(self):
        mon = FreshnessMonitor()
        mon.check(1.0, {"seq": 1, "valid": True})
        assert mon.check(2.0, {"seq": 2, "valid": True})

    def test_invalid_flag_rejected(self):
        assert not FreshnessMonitor().check(1.0, {"seq": 1, "valid": False})

    def test_missing_seq_rejected(self):
        assert not FreshnessMonitor().check(1.0, {"valid": True})

    def test_reset_forgets_history(self):
        mon = FreshnessMonitor()
        mon.check(1.0, {"seq": 5, "valid": True})
        mon.reset()
        assert mon.check(1.0, {"seq": 5, "valid": True})


class TestEnvelopeMonitor:
    @pytest.fixture
    def monitor(self):
        plant = InvertedPendulum()
        controller = LQRController(plant)
        envelope = StabilityEnvelope.from_closed_loop(
            controller.closed_loop_a,
            state_limits=[plant.track_limit, None, plant.angle_limit, None],
        )
        return EnvelopeMonitor(envelope, plant, dt=0.01)

    def test_small_input_at_origin_admitted(self, monitor):
        assert monitor.check(0.1, {"state": np.zeros(4)})

    def test_missing_state_rejected(self, monitor):
        assert not monitor.check(0.1, {})

    def test_destabilizing_input_near_boundary_rejected(self, monitor):
        envelope = monitor.envelope
        p_inv = np.linalg.inv(envelope.p)
        angle = 0.99 * np.sqrt(envelope.level * p_inv[2, 2])
        state = np.array([0.0, 0.0, angle, 1.0])
        result = monitor.check(-5.0, {"state": state})
        if envelope.contains(state):
            assert not result


class TestCompositeMonitor:
    def test_all_must_admit(self):
        composite = CompositeMonitor([
            RangeMonitor(-5, 5),
            FreshnessMonitor(),
        ])
        assert composite.check(1.0, {"seq": 1, "valid": True})

    def test_first_rejection_reported(self):
        composite = CompositeMonitor([
            RangeMonitor(-1, 1),
            FreshnessMonitor(),
        ])
        result = composite.check(3.0, {"seq": 1, "valid": True})
        assert not result
        assert result.reason.startswith("range:")

    def test_reset_propagates(self):
        fresh = FreshnessMonitor()
        composite = CompositeMonitor([fresh])
        composite.check(1.0, {"seq": 1, "valid": True})
        composite.reset()
        assert fresh._last_seq is None
