"""Fail-closed degraded-mode analysis and its CLI surface.

The verdict-level guarantee under test: whenever anything was degraded
the report can never ``pass`` — missing evidence is treated exactly
like unmonitored non-core flow (top taint), so a partial analysis
over-approximates, never under-approximates.
"""

import json

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.cli import main as cli_main

GOOD_CALLER = """
double compute(double x);
void sendControl(double v);
int main(void)
{
    double output = compute(1.0);
    /***SafeFlow Annotation assert(safe(output)); /***/
    sendControl(output);
    return 0;
}
"""

BAD_UNIT = "double compute(double x) { return x + ; }\n"


def _degraded_config(**kwargs):
    return AnalysisConfig(cache_dir=None, degraded_mode=True, **kwargs)


class TestFailClosed:
    def test_call_into_degraded_unit_taints_assert(self, tmp_path):
        good = tmp_path / "good.c"
        bad = tmp_path / "bad.c"
        good.write_text(GOOD_CALLER)
        bad.write_text(BAD_UNIT)
        report = SafeFlow(_degraded_config()).analyze_files(
            [str(good), str(bad)], name="split")
        # the parse failure is recorded...
        assert len(report.degraded) == 1
        assert report.degraded[0].kind == "unit"
        # ...and the surviving unit still got real verdicts: the call
        # into the degraded function is top taint, so the assert fires
        assert len(report.errors) == 1
        assert "degraded:compute" in report.errors[0].message
        assert report.verdict == "fail"
        assert not report.passed

    def test_degraded_call_warning_has_provenance(self, tmp_path):
        good = tmp_path / "good.c"
        bad = tmp_path / "bad.c"
        good.write_text(GOOD_CALLER)
        bad.write_text(BAD_UNIT)
        report = SafeFlow(_degraded_config()).analyze_files(
            [str(good), str(bad)], name="split")
        messages = [w.message for w in report.warnings]
        assert any("call into degraded function 'compute'" in m
                   and "fail-closed" in m for m in messages)

    def test_degraded_function_body_fails_closed(self):
        # compute's body uses goto: the function is demoted, so its
        # result must be untrusted even though the unit parsed
        source = """
void sendControl(double v);
double compute(double x) { goto out; out: return x; }
int main(void)
{
    double output = compute(1.0);
    /***SafeFlow Annotation assert(safe(output)); /***/
    sendControl(output);
    return 0;
}
"""
        report = SafeFlow(_degraded_config()).analyze_source(
            source, filename="g.c", name="g")
        assert [d.kind for d in report.degraded] == ["function"]
        assert report.degraded[0].function == "compute"
        assert len(report.errors) == 1
        assert "degraded:compute" in report.errors[0].message

    def test_no_findings_still_never_passes(self):
        # degradation without any flow into an assert: verdict is
        # "degraded", and passed is False regardless
        source = "int broken( {\n"
        report = SafeFlow(_degraded_config()).analyze_source(
            source, filename="b.c", name="b")
        assert report.verdict == "degraded"
        assert not report.passed
        assert report.stats.degraded_units == 1


class TestVerdictPlumbing:
    def test_three_way_verdict(self, tmp_path):
        clean = SafeFlow(_degraded_config()).analyze_source(
            "int main(void) { return 0; }", filename="c.c", name="c")
        assert clean.verdict == "pass"
        assert clean.passed

    def test_render_mentions_degradation_only_when_present(self):
        clean = SafeFlow(_degraded_config()).analyze_source(
            "int main(void) { return 0; }", filename="c.c", name="c")
        assert "degraded" not in clean.render()
        broken = SafeFlow(_degraded_config()).analyze_source(
            "int broken( {\n", filename="b.c", name="b")
        rendered = broken.render()
        assert "degraded units     : 1 (fail-closed)" in rendered
        assert "degraded units (analyzed fail-closed):" in rendered

    def test_to_json_carries_verdict_and_units(self):
        report = SafeFlow(_degraded_config()).analyze_source(
            "int broken( {\n", filename="b.c", name="b")
        payload = report.to_json()
        assert payload["verdict"] == "degraded"
        assert payload["stats"]["degraded_units"] == 1
        assert payload["degraded"][0]["kind"] == "unit"

    def test_degraded_mode_is_render_invisible_on_clean_input(self):
        source = """
int helper(int x) { return x * 2; }
int main(void) { return helper(21); }
"""
        strict = SafeFlow(AnalysisConfig(cache_dir=None)).analyze_source(
            source, filename="s.c", name="s")
        degraded = SafeFlow(_degraded_config()).analyze_source(
            source, filename="s.c", name="s")
        assert strict.render(verbose=True) == degraded.render(verbose=True)


class TestCliDegraded:
    def test_syntax_error_is_structured_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text(BAD_UNIT)
        code = cli_main(["analyze", str(bad), "--no-cache"])
        captured = capsys.readouterr()
        assert code == 2
        assert "safeflow: error:" in captured.err
        assert "parse error" in captured.err
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out

    def test_keep_going_degrades_instead(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        ok = tmp_path / "ok.c"
        bad.write_text(BAD_UNIT)
        ok.write_text("int main(void) { return 0; }\n")
        code = cli_main(["analyze", str(bad), str(ok),
                         "--keep-going", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 1  # fail-closed: degraded never exits 0
        assert "degraded units" in captured.out
        assert "Traceback" not in captured.out

    def test_keep_going_json_verdict(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text(BAD_UNIT)
        code = cli_main(["analyze", str(bad), "--keep-going",
                         "--no-cache", "--json"])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["verdict"] == "degraded"
        assert payload["degraded"][0]["cause"].startswith("C parse error")

    def test_batch_resume_requires_journal(self, tmp_path, capsys):
        ok = tmp_path / "ok.c"
        ok.write_text("int main(void) { return 0; }\n")
        code = cli_main(["batch", str(ok), "--resume", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--resume requires --journal" in captured.err

    def test_batch_keep_going_and_fail_fast_conflict(self, tmp_path):
        ok = tmp_path / "ok.c"
        ok.write_text("int main(void) { return 0; }\n")
        with pytest.raises(SystemExit):
            cli_main(["batch", str(ok), "--keep-going", "--fail-fast",
                      "--no-cache"])
