"""The SafeFlow facade, report rendering, and the command line."""

import json

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.cli import main as cli_main
from repro.core.driver import _count_loc
from tests.conftest import FIGURE2_SOURCE, analyze


class TestFacade:
    def test_analyze_source_end_to_end(self, figure2_report):
        counts = figure2_report.counts()
        assert counts["warnings"] == 1
        # the paper's running-example dependency: output <- feedback
        assert counts["errors"] + counts["false_positives"] == 1

    def test_analyze_files(self, tmp_path):
        path = tmp_path / "core.c"
        path.write_text(FIGURE2_SOURCE)
        report = SafeFlow().analyze_files([str(path)], name="fig2")
        assert len(report.warnings) == 1

    def test_multi_file_program(self, tmp_path):
        (tmp_path / "shm.c").write_text("""
            typedef struct { double v; } R;
            R *nc;
            void initShm(void)
            /***SafeFlow Annotation shminit /***/
            {
                nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
                /***SafeFlow Annotation
                    assume(shmvar(nc, sizeof(R)));
                    assume(noncore(nc)) /***/
            }
        """)
        (tmp_path / "main.c").write_text("""
            typedef struct { double v; } R;
            extern R *nc;
            void initShm(void);
            void emit(double v);
            int main(void) {
                double x;
                initShm();
                x = nc->v;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        report = SafeFlow().analyze_files(
            [str(tmp_path / "shm.c"), str(tmp_path / "main.c")]
        )
        assert len(report.errors) == 1

    def test_report_render_contains_summary(self, figure2_report):
        text = figure2_report.render(verbose=True)
        assert "SafeFlow report" in text
        assert "warning" in text

    def test_passed_flag(self):
        report = analyze("int main(void) { return 0; }")
        assert report.passed

    def test_stats_populated(self, figure2_report):
        stats = figure2_report.stats
        assert stats.functions == 4
        assert stats.shm_regions == 2
        assert stats.noncore_regions == 2
        assert stats.loc_total > 0

    def test_restrictions_can_be_skipped(self):
        source = FIGURE2_SOURCE.replace(
            "output = decision(feedback, safeControl, noncoreCtrl);",
            "output = decision(feedback, safeControl, noncoreCtrl);"
            " shmdt(feedback);",
        )
        strict = analyze(source)
        assert any(v.rule == "P1" for v in strict.violations)
        relaxed = analyze(source, AnalysisConfig(check_restrictions=False))
        assert relaxed.violations == []


class TestLocCounter:
    def test_blank_and_comment_lines_ignored(self):
        text = "int a;\n\n/* comment */\n// line\nint b;\n"
        assert _count_loc(text) == 2

    def test_multiline_comment_ignored(self):
        text = "int a;\n/* one\n two\n three */\nint b;\n"
        assert _count_loc(text) == 2

    def test_code_after_comment_close_counted(self):
        text = "/* x\n y */ int a;\n"
        assert _count_loc(text) == 1


class TestCli:
    def test_analyze_json(self, tmp_path, capsys):
        path = tmp_path / "core.c"
        path.write_text(FIGURE2_SOURCE)
        rc = cli_main(["analyze", str(path), "--json"])
        assert rc == 1  # an error dependency was found
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["warnings"] == 1
        assert not payload["passed"]

    def test_analyze_clean_program_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.c"
        path.write_text("int main(void) { return 0; }")
        assert cli_main(["analyze", str(path)]) == 0

    def test_analyze_dot_export(self, tmp_path):
        src = tmp_path / "core.c"
        src.write_text(FIGURE2_SOURCE)
        dot = tmp_path / "vfg.dot"
        cli_main(["analyze", str(src), "--dot", str(dot)])
        assert "digraph" in dot.read_text()

    def test_corpus_command_matches(self, capsys):
        rc = cli_main(["corpus", "ip"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MATCH" in out

    def test_table1_command(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Generic Simplex" in out

    def test_demo_protected(self, capsys):
        rc = cli_main(["demo", "--duration", "3.0"])
        assert rc == 0
        assert "recoverable" in capsys.readouterr().out

    def test_demo_rigged_and_trusting_falls(self, capsys):
        rc = cli_main(["demo", "--duration", "4.0", "--rigged", "--trusting"])
        assert rc == 1
        assert "FELL" in capsys.readouterr().out

    def test_nonexistent_file_reports_error(self, capsys):
        rc = cli_main(["analyze", "/nonexistent/file.c"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestCliErrorReporting:
    """Exit-code and error-reporting consistency: tool failures exit 2
    with a structured entry per failed job, never a traceback spray."""

    BROKEN = "int main(void) { return 0;"  # unbalanced brace

    def test_batch_broken_file_exits_2_without_traceback(
            self, tmp_path, capsys):
        good = tmp_path / "good.c"
        good.write_text("int main(void) { return 0; }")
        bad = tmp_path / "bad.c"
        bad.write_text(self.BROKEN)
        rc = cli_main(["batch", str(good), str(bad)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "ERROR" in captured.out          # structured per-job line
        assert "PASS" in captured.out           # sibling still reported
        assert "job(s) failed" in captured.err
        assert "Traceback" not in captured.out
        assert "Traceback" not in captured.err

    def test_batch_missing_file_exits_2_without_traceback(
            self, tmp_path, capsys):
        rc = cli_main(["batch", str(tmp_path / "absent.c")])
        captured = capsys.readouterr()
        assert rc == 2
        assert "ERROR" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_batch_timeout_exits_2_with_structured_entries(
            self, tmp_path, capsys):
        for name in ("one.c", "two.c"):
            (tmp_path / name).write_text(FIGURE2_SOURCE)
        rc = cli_main(["batch", str(tmp_path / "one.c"),
                       str(tmp_path / "two.c"), "--jobs", "2",
                       "--timeout", "0.000001"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "timed out" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_batch_json_errors_stay_machine_readable(
            self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text(self.BROKEN)
        rc = cli_main(["batch", str(bad), "--json"])
        captured = capsys.readouterr()
        assert rc == 2
        payload = json.loads(captured.out)
        job = payload["jobs"][0]
        assert job["ok"] is False
        assert job["report"] is None
        assert "ParseError" in job["error"]
        assert "\n" not in job["error"]         # one concise line
        assert "Traceback" in job["detail"]     # full context preserved
