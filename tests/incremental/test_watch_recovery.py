"""Incremental sessions over recovered units: the tier-move matrix.

An edit that moves a unit between recovery tiers (strict → gnu →
strict, salvage in and out) changes the degraded set and therefore the
global fingerprint: the dirty cone must be invalidated and every
re-verdict must stay byte-identical to a cold session over the same
on-disk sources — tier moves are exactly where stale fail-closed state
would silently certify a recovered unit.
"""

from repro.core.config import AnalysisConfig
from repro.frontend.recovery import DEFAULT_TIERS
from repro.incremental.watcher import IncrementalSession

MAIN_C = """
double leaf(double a);
double helper(double a) { return leaf(a) + 1.0; }

int main(void)
{
    double y;
    y = helper(2.0);
    return y > 0.0;
}
"""

LIB_STRICT = "double leaf(double a) { return a * 2.0; }\n"

LIB_GNU = ("double __attribute__((noinline)) leaf(double a) "
           "{ return a * 2.0; }\n")

LIB_BROKEN = ("double leaf(double a) { return a * 2.0; }\n"
              "double stray(double a)\n"
              "{\n"
              "    return a @@ 1.0;\n"
              "}\n")


def _config():
    return AnalysisConfig(cache_dir=None, summary_mode=True,
                          recover_tiers=DEFAULT_TIERS)


def _write(path, text):
    with open(path, "w") as f:
        f.write(text)


def _session(tmp_path):
    main = str(tmp_path / "main.c")
    lib = str(tmp_path / "lib.c")
    _write(main, MAIN_C)
    _write(lib, LIB_STRICT)
    session = IncrementalSession(
        [main, lib], config=_config(),
        store_root=str(tmp_path / "store"))
    return session, main, lib


def _cold_render(paths, tmp_path, tag):
    session = IncrementalSession(
        list(paths), config=_config(),
        store_root=str(tmp_path / f"cold-{tag}"))
    return session.verdict().render(verbose=True)


def test_tier_move_matrix_byte_identical_to_cold(tmp_path):
    """strict → gnu → strict → salvage → strict, cold-checked at
    every step."""
    session, main, lib = _session(tmp_path)
    first = session.verdict()
    assert first.verdict == "pass"
    assert first.stats.recovery_successes == {"strict": 2}

    steps = [
        ("gnu", LIB_GNU, "degraded"),
        ("back-to-strict", LIB_STRICT, "pass"),
        ("salvage", LIB_BROKEN, "degraded"),
        ("strict-again", LIB_STRICT, "pass"),
    ]
    for tag, text, want in steps:
        _write(lib, text)
        report = session.verdict()
        assert report.verdict == want, tag
        assert report.render(verbose=True) == _cold_render(
            [main, lib], tmp_path, tag), tag


def test_tier_move_invalidates_dirty_cone(tmp_path):
    session, main, lib = _session(tmp_path)
    session.verdict()
    _write(lib, LIB_GNU)
    degraded_run = session.verdict()
    # the recovered unit degrades its own functions *and* poisons the
    # callers fail-closed — nothing is swap-eligible
    assert degraded_run.verdict == "degraded"
    assert {u.function for u in degraded_run.degraded
            if u.function} == {"leaf"}
    assert session.swaps == 0
    _write(lib, LIB_STRICT)
    clean_run = session.verdict()
    assert clean_run.verdict == "pass"
    assert clean_run.degraded == []
    # moving back must rerun the previously-poisoned cone, not replay
    # fail-closed results
    assert clean_run.stats.functions_reanalyzed > 0


def test_recovered_unit_counters_fold_into_watch_stats(tmp_path):
    session, main, lib = _session(tmp_path)
    _write(lib, LIB_GNU)
    report = session.verdict()
    assert report.stats.recovered_units == 1
    assert report.stats.recovery_attempts["strict"] == 2
    assert report.stats.recovery_successes["gnu"] == 1


def test_lost_unit_in_watch_session(tmp_path):
    session, main, lib = _session(tmp_path)
    session.verdict()
    _write(lib, "int f(void) {{ %% \"unterminated\n")
    report = session.verdict()
    assert report.verdict == "degraded"
    assert any(u.kind == "unit" for u in report.degraded)
    _write(lib, LIB_STRICT)
    assert session.verdict().verdict == "pass"
