"""Incremental session differential suite: the edit-type matrix.

Every case applies one edit class to a multi-unit program held by an
:class:`IncrementalSession` and asserts two things against a *cold*
session (fresh store, fresh front end, same on-disk sources):

- the re-verdict render is **byte-identical** to the cold run;
- the re-analyzed function count / dirty cone matches the edit's
  expected blast radius.

Plus the watch loop itself (injectable clock), the stale-store cold
start, and the trusted-replay → validating fallback.
"""

import dataclasses
import os

from repro.core.config import AnalysisConfig
from repro.corpus import generate_core_files
from repro.incremental.watcher import IncrementalSession, WatchLoop


MAIN_C = r"""
typedef struct { double v; int flag; } R;
R *nc;
void emit(double v);
double leaf(double a);

void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(noncore(nc)) /***/
}

double helper(double a) { return leaf(a) + 1.0; }
double other(double a) { return a - 3.0; }

int main(void)
{
    double x;
    double y;
    double z;
    initShm();
    x = nc->v;
    y = helper(x);
    z = other(x);
    /***SafeFlow Annotation assert(safe(y)); /***/
    emit(y + z);
    return 0;
}
"""

LIB_C = "double leaf(double a) { return a * 2.0; }\n"


def _config(**kw):
    kw.setdefault("cache_dir", None)
    kw.setdefault("summary_mode", True)
    return AnalysisConfig(**kw)


def _write(path, text):
    with open(path, "w") as f:
        f.write(text)


def _edit(path, old, new):
    """Read-modify-write; asserts the edit actually applies."""
    with open(path) as f:
        text = f.read()
    assert old in text, f"{old!r} not found in {path}"
    _write(path, text.replace(old, new))


def _cold_render(paths, tmp_path, tag, **cfg):
    """A fresh session over the current on-disk sources."""
    session = IncrementalSession(
        list(paths), config=_config(**cfg),
        store_root=str(tmp_path / f"cold-{tag}"))
    return session.verdict().render(verbose=True)


def _two_unit_session(tmp_path, **cfg):
    main = str(tmp_path / "main.c")
    lib = str(tmp_path / "lib.c")
    _write(main, MAIN_C)
    _write(lib, LIB_C)
    session = IncrementalSession(
        [main, lib], config=_config(**cfg),
        store_root=str(tmp_path / "store"))
    return session, main, lib


# ----------------------------------------------------------------------
# the matrix
# ----------------------------------------------------------------------

def test_noop_reverdict_is_memoized(tmp_path):
    session, _, _ = _two_unit_session(tmp_path)
    first = session.verdict()
    again = session.verdict()
    assert again.render(verbose=True) == first.render(verbose=True)
    assert again.stats.functions_reanalyzed == 0
    assert again.stats.dirty_cone_size == 0
    assert again.stats.segment_fallbacks == 0
    assert session.full_relowers == 1  # only the cold verdict
    assert session.memo_verdicts == 1  # answered from the last report


def test_comment_only_edit_relowers_and_reanalyzes_nothing(tmp_path):
    src = tmp_path / "prog"
    paths = generate_core_files(
        filler_units=2, fillers_per_unit=2,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    session = IncrementalSession(
        paths, config=_config(), store_root=str(tmp_path / "store"))
    session.verdict()
    with open(paths[1], "a") as f:
        f.write("/* tweak */\n")
    report = session.verdict()
    # the digest moved, so the verdict is real — but the AST did not,
    # so the surgical swap re-lowers zero defs and everything replays
    assert session.memo_verdicts == 0
    assert session.swaps == 1
    assert session.last_swap_defs == ()
    assert report.stats.functions_reanalyzed == 0
    assert report.stats.dirty_cone_size == 0
    assert report.render(verbose=True) == _cold_render(
        paths, tmp_path, "comment")


def test_body_edit_reanalyzes_the_caller_closure(tmp_path):
    session, _, lib = _two_unit_session(tmp_path)
    session.verdict()
    _edit(lib, "a * 2.0", "a * 2.5")
    report = session.verdict()
    # leaf's edit moves the closure fingerprint of leaf and its
    # transitive callers (helper, main); `other` replays from segments
    assert report.stats.functions_reanalyzed == 3
    assert report.stats.dirty_cone_size == 3
    assert set(session.store.last_cone) == {"leaf", "helper", "main"}
    assert report.render(verbose=True) == _cold_render(
        session.paths, tmp_path, "body")


def test_filler_edit_uses_the_surgical_swap(tmp_path):
    src = tmp_path / "prog"
    paths = generate_core_files(
        filler_units=2, fillers_per_unit=3,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    session = IncrementalSession(
        paths, config=_config(), store_root=str(tmp_path / "store"))
    session.verdict()
    with open(paths[1]) as f:
        text = f.read()
    assert text.count("* 0.99") == 3
    with open(paths[1], "w") as f:
        f.write(text.replace("* 0.99", "* 0.98", 1))  # first filler only
    report = session.verdict()
    assert session.swaps == 1
    assert session.full_relowers == 1  # the swap avoided a re-lower
    assert len(session.last_swap_defs) == 1  # siblings not re-lowered
    assert report.stats.functions_reanalyzed == 1
    assert report.stats.dirty_cone_size == 1
    assert report.render(verbose=True) == _cold_render(
        paths, tmp_path, "swap")


def test_signature_change_falls_back_to_full_relower(tmp_path):
    session, main, lib = _two_unit_session(tmp_path)
    session.verdict()
    _edit(lib, "double leaf(double a) { return a * 2.0; }",
          "double leaf(double a, double b) { return a * 2.0 + b; }")
    _edit(main, "double leaf(double a);", "double leaf(double a, double b);")
    _edit(main, "leaf(a) + 1.0", "leaf(a, 0.5) + 1.0")
    report = session.verdict()
    assert session.swaps == 0
    assert session.full_relowers == 2
    assert "leaf" in session.store.last_cone
    assert report.render(verbose=True) == _cold_render(
        session.paths, tmp_path, "sig")


def test_annotation_add(tmp_path):
    session, main, _ = _two_unit_session(tmp_path)
    baseline = session.verdict()
    _edit(main, "/***SafeFlow Annotation assert(safe(y)); /***/",
          "/***SafeFlow Annotation assert(safe(y)); /***/\n"
          "    /***SafeFlow Annotation assert(safe(z)); /***/")
    report = session.verdict()
    assert report.render(verbose=True) != baseline.render(verbose=True)
    assert report.stats.functions_reanalyzed >= 1
    assert "main" in session.store.last_cone
    assert report.render(verbose=True) == _cold_render(
        session.paths, tmp_path, "ann-add")


def test_annotation_remove(tmp_path):
    session, main, _ = _two_unit_session(tmp_path)
    session.verdict()
    _edit(main, "    /***SafeFlow Annotation assert(safe(y)); /***/\n", "")
    report = session.verdict()
    assert "main" in session.store.last_cone
    assert report.render(verbose=True) == _cold_render(
        session.paths, tmp_path, "ann-del")


def test_annotation_change(tmp_path):
    session, main, _ = _two_unit_session(tmp_path)
    session.verdict()
    _edit(main, "assert(safe(y))", "assert(safe(z))")
    report = session.verdict()
    assert "main" in session.store.last_cone
    assert report.render(verbose=True) == _cold_render(
        session.paths, tmp_path, "ann-chg")


def test_file_delete(tmp_path):
    src = tmp_path / "prog"
    paths = generate_core_files(
        filler_units=2, fillers_per_unit=1,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    session = IncrementalSession(
        paths, config=_config(), store_root=str(tmp_path / "store"))
    session.verdict()
    os.unlink(paths[2])
    session.set_paths(paths[:2])
    report = session.verdict()
    # the deleted fillers' segments must not survive in the store
    assert report.stats.segment_evictions >= 1
    assert report.render(verbose=True) == _cold_render(
        paths[:2], tmp_path, "del")


def test_new_file(tmp_path):
    session, main, lib = _two_unit_session(tmp_path)
    session.verdict()
    extra = str(tmp_path / "extra.c")
    _write(extra, "double spare(double x) { return x * 4.0; }\n")
    session.set_paths([main, lib, extra])
    report = session.verdict()
    assert report.stats.functions_reanalyzed >= 1
    assert "spare" in session.store.last_cone
    assert report.render(verbose=True) == _cold_render(
        [main, lib, extra], tmp_path, "new")


def test_degraded_unit_edit_with_keep_going(tmp_path):
    session, main, lib = _two_unit_session(tmp_path, degraded_mode=True)
    broken = str(tmp_path / "broken.c")
    _write(broken, "int broken(void) { return 0 %%% 1; }\n")
    session.set_paths([main, lib, broken])
    first = session.verdict()
    assert first.stats.degraded_units == 1
    # an edit that keeps the unit broken still re-verdicts identically
    _write(broken, "int broken(void) { still not C at all }\n")
    report = session.verdict()
    assert report.stats.degraded_units == 1
    assert report.render(verbose=True) == _cold_render(
        [main, lib, broken], tmp_path, "deg", degraded_mode=True)
    # fixing the unit brings its functions into the analyzed set
    _write(broken, "double broken(double x) { return x + 1.0; }\n")
    fixed = session.verdict()
    assert fixed.stats.degraded_units == 0
    assert fixed.render(verbose=True) == _cold_render(
        [main, lib, broken], tmp_path, "deg-fixed", degraded_mode=True)


# ----------------------------------------------------------------------
# stale store cold start + fallback
# ----------------------------------------------------------------------

def test_cold_start_on_corrupt_store_evicts_and_recomputes(tmp_path):
    session, _, _ = _two_unit_session(tmp_path)
    cold = session.verdict()
    log = session.store.path
    with open(log, "r+b") as f:
        f.write(b"\xde\xad\xbe\xef" * 8)  # clobber the header frame

    fresh = IncrementalSession(
        session.paths, config=_config(), store_root=str(tmp_path / "store"))
    report = fresh.verdict()
    assert report.stats.cache_integrity_evictions >= 1
    assert report.stats.functions_reanalyzed >= 1
    assert report.render(verbose=True) == cold.render(verbose=True)


def test_tampered_segment_triggers_validating_fallback(tmp_path):
    session, _, lib = _two_unit_session(tmp_path)
    cold = session.verdict()
    store = session.store
    # a verdict with no changed inputs is answered from memory; touch
    # a comment so the pipeline (and with it segment replay) really
    # runs against the tampered store
    _edit(lib, "return a * 2.0;", "return a * 2.0; /* touched */")
    # poison one record's deferred reads with a taint stolen from a
    # different record's return value — trusted replay must notice at
    # convergence and the driver must rerun phase 3 validating
    tampered = False
    rets = {seg.record.ret for seg in store._segments.values()}
    for key, seg in store._segments.items():
        for name, value in seg.record.reads:
            wrong = next((r for r in rets if r != value), None)
            if wrong is None:
                continue
            store._segments[key] = dataclasses.replace(
                seg, record=dataclasses.replace(
                    seg.record,
                    reads=tuple(
                        (n, wrong if n == name else v)
                        for n, v in seg.record.reads)))
            tampered = True
            break
        if tampered:
            break
    assert tampered, "no record with a read to tamper"
    report = session.verdict()
    assert report.stats.segment_fallbacks == 1
    assert report.render(verbose=True) == cold.render(verbose=True)
    # the failed trusted run poisoned its held merged-input seeds; the
    # validating rerun re-harvested fresh ones, so the session keeps
    # re-verdicting trusted (no repeat fallback)
    _edit(lib, "/* touched */", "/* touched twice */")
    again = session.verdict()
    assert again.stats.segment_fallbacks == 0
    assert again.render(verbose=True) == cold.render(verbose=True)


def test_warm_runs_seed_merged_inputs_and_skip_the_widening_cascade(
        tmp_path):
    src = tmp_path / "prog"
    paths = generate_core_files(
        filler_units=2, fillers_per_unit=2, chain_depth=4, call_fanout=2,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    session = IncrementalSession(
        paths, config=_config(), store_root=str(tmp_path / "store"))
    cold = session.verdict()
    cold_sweeps = cold.stats.kernel_counters["outer_iterations"]
    _edit(paths[1], "* 0.99", "* 0.98")  # both fillers of the unit
    report = session.verdict()
    counters = report.stats.kernel_counters
    # the joins started at the previous run's converged values, so no
    # merged-input widening forced extra outer sweeps
    assert counters.get("merged_seeds_applied", 0) > 0
    assert counters["outer_iterations"] <= 2 <= cold_sweeps
    assert report.stats.segment_fallbacks == 0
    assert report.render(verbose=True) == _cold_render(
        paths, tmp_path, "seeded")


# ----------------------------------------------------------------------
# the watch loop
# ----------------------------------------------------------------------

def _fake_loop(tmp_path, src):
    session = IncrementalSession(
        [], config=_config(), store_root=str(tmp_path / "store"))
    now = [0.0]
    def clock():
        return now[0]
    def sleep(seconds):
        now[0] += seconds
    reports = []
    loop = WatchLoop(session, roots=[str(src)], interval=0.1,
                     idle_release=1.0, clock=clock, sleep=sleep,
                     on_report=reports.append)
    return loop, now, reports


def test_watch_loop_reverdicts_on_change_only(tmp_path):
    src = tmp_path / "w"
    paths = generate_core_files(
        filler_units=1, fillers_per_unit=1,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    loop, now, reports = _fake_loop(tmp_path, src)

    assert loop.poll_once() is not None  # first poll always verdicts
    assert loop.poll_once() is None      # quiet: no verdict
    assert len(reports) == 1

    _edit(paths[1], "* 0.99", "* 0.98")
    os.utime(paths[1], (1, 1))  # force a visible mtime move
    assert loop.poll_once() is not None
    assert len(reports) == 2
    assert loop.session.swaps == 1


def test_watch_loop_holds_gc_pause_across_bursts(tmp_path):
    src = tmp_path / "w"
    generate_core_files(
        filler_units=1, fillers_per_unit=1,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    loop, now, _ = _fake_loop(tmp_path, src)

    loop.poll_once()
    assert loop.gc_pause_held
    now[0] += 0.5                 # still inside the idle window
    loop.poll_once()
    assert loop.gc_pause_held
    now[0] += 1.0                 # past idle_release
    loop.poll_once()
    assert not loop.gc_pause_held


def test_watch_loop_run_counts_verdicts_and_releases(tmp_path):
    src = tmp_path / "w"
    generate_core_files(
        filler_units=1, fillers_per_unit=1,
        data_error_regions=1, monitored_regions=1,
    ).write_to(str(src))
    loop, _, reports = _fake_loop(tmp_path, src)
    assert loop.run(max_verdicts=1) == 1
    assert not loop.gc_pause_held
    assert len(reports) == 1


def test_watch_loop_picks_up_new_files(tmp_path):
    src = tmp_path / "w"
    src.mkdir()
    _write(str(src / "main.c"), MAIN_C)
    _write(str(src / "lib.c"), LIB_C)
    loop, _, reports = _fake_loop(tmp_path, src)
    loop.poll_once()
    _write(str(src / "extra.c"),
           "double spare(double x) { return x * 4.0; }\n")
    report = loop.poll_once()
    assert report is not None
    assert "spare" in loop.session.store.last_cone


# ----------------------------------------------------------------------
# stats surfacing
# ----------------------------------------------------------------------

def test_render_stats_shows_incremental_counters(tmp_path):
    from repro.cli import _render_stats

    session, _, lib = _two_unit_session(tmp_path)
    session.verdict()
    _edit(lib, "a * 2.0", "a * 2.5")
    report = session.verdict()
    text = _render_stats(report)
    assert "functions_reanalyzed" in text
    assert "dirty_cone_size" in text

    # a run without a segment store keeps the stats block unchanged
    from repro import SafeFlow

    plain = SafeFlow(AnalysisConfig(cache_dir=None)).analyze_source(
        LIB_C + MAIN_C.replace("double leaf(double a);", ""),
        filename="plain.c", name="plain")
    assert "functions_reanalyzed" not in _render_stats(plain)
