"""Segment store durability + dependency-graph invalidation.

Covers the on-disk discipline in isolation: sealed-frame round-trips,
torn-tail truncation (the SIGKILL-mid-append case), wholesale eviction
of foreign/stale stores, log compaction, the ``deps.bin`` artifact, and
the dirty-cone closure over writer→reader cell coupling.
"""

import os

from repro.incremental.depgraph import DependencyGraph
from repro.incremental.segments import (
    SEGMENT_FORMAT_VERSION, SegmentStore, _frame,
)
from repro.perf.fingerprint import SCHEMA_VERSION
from repro.perf.summary_store import BodyRecord


def _record(reads=(), writes=(), calls=()):
    return BodyRecord(ret="safe", reads=tuple(reads),
                      writes=tuple(writes), calls=tuple(calls))


def _store_with(root, closures, bodies):
    """One completed run: ``bodies`` is {function: (reads, writes)}."""
    store = SegmentStore(str(root))
    store.begin_run(closures)
    for function, (reads, writes) in bodies.items():
        key = store.entry_key(function, "summary",
                              closures[function], (), ())
        store.stage(key, _record(reads=reads, writes=writes))
    store.flush()
    return store


# ----------------------------------------------------------------------
# round-trip + invalidation
# ----------------------------------------------------------------------

def test_segments_survive_reopen(tmp_path):
    closures = {"f": "fp-f", "g": "fp-g"}
    store = _store_with(tmp_path, closures, {
        "f": ((), (("c1", "tainted"),)),
        "g": ((("c1", "tainted"),), ()),
    })
    reopened = SegmentStore(str(tmp_path))
    assert len(reopened) == 2
    assert reopened.integrity_evictions == 0
    lookup_key = reopened.entry_key("f", "summary", "fp-f", (), ())
    assert reopened.lookup(lookup_key) == _record(
        writes=(("c1", "tainted"),))
    # unchanged closures: no seeds, no cone, nothing evicted
    cone = reopened.begin_run(closures)
    assert cone == frozenset()
    assert reopened.evictions == 0


def test_changed_closure_evicts_the_coupling_cone(tmp_path):
    closures = {"f": "fp-f", "g": "fp-g", "h": "fp-h"}
    _store_with(tmp_path, closures, {
        "f": ((), (("c1", "tainted"),)),       # f writes c1
        "g": ((("c1", "tainted"),), ()),       # g reads c1 → f's reader
        "h": ((("other", "safe"),), ()),       # h is uncoupled
    })
    reopened = SegmentStore(str(tmp_path))
    cone = reopened.begin_run({**closures, "f": "fp-f-EDITED"})
    assert reopened.last_seeds == frozenset({"f"})
    assert cone == frozenset({"f", "g"})
    assert reopened.evictions == 2
    assert reopened.lookup(
        reopened.entry_key("g", "summary", "fp-g", (), ())) is None
    assert reopened.lookup(
        reopened.entry_key("h", "summary", "fp-h", (), ())) is not None


def test_coupling_stubs_extend_the_cone(tmp_path):
    """A body without a segment still contributes coupling edges."""
    closures = {"f": "fp-f", "g": "fp-g"}
    store = SegmentStore(str(tmp_path))
    store.begin_run(closures)
    key = store.entry_key("f", "summary", "fp-f", (), ())
    store.stage(key, _record(writes=(("c1", "tainted"),)))
    store.note_coupling("g", ["c1"], [])  # unpersistable reader of c1
    store.flush()

    reopened = SegmentStore(str(tmp_path))
    cone = reopened.begin_run({**closures, "f": "fp-f-EDITED"})
    assert cone == frozenset({"f", "g"})


def test_deleted_function_seeds_the_cone(tmp_path):
    closures = {"f": "fp-f", "g": "fp-g"}
    _store_with(tmp_path, closures, {
        "f": ((), (("c1", "x"),)),
        "g": ((("c1", "x"),), ()),
    })
    reopened = SegmentStore(str(tmp_path))
    cone = reopened.begin_run({"g": "fp-g"})  # f was deleted
    assert "f" in reopened.last_seeds
    assert cone == frozenset({"f", "g"})
    assert len(reopened) == 0


# ----------------------------------------------------------------------
# crash recovery / foreign stores
# ----------------------------------------------------------------------

def test_torn_tail_is_truncated_to_the_last_intact_frame(tmp_path):
    closures = {"f": "fp-f"}
    store = _store_with(tmp_path, closures, {"f": ((), (("c1", "x"),))})
    intact_size = os.path.getsize(store.path)
    with open(store.path, "ab") as f:
        f.write(_frame(("segment", "k", None))[:-16])  # torn mid-frame

    reopened = SegmentStore(str(tmp_path))
    assert reopened.integrity_evictions == 1
    assert os.path.getsize(reopened.path) == intact_size
    assert len(reopened) == 1  # the intact prefix survived


def test_garbage_store_is_evicted_wholesale(tmp_path):
    store = _store_with(tmp_path, {"f": "fp-f"},
                        {"f": ((), (("c1", "x"),))})
    with open(store.path, "wb") as f:
        f.write(b"\x00\x00\x00\x10not a sealed frame at all")
    reopened = SegmentStore(str(tmp_path))
    assert reopened.integrity_evictions == 1
    assert len(reopened) == 0
    assert not os.path.exists(reopened.path)


def test_stale_format_store_is_evicted_wholesale(tmp_path):
    path = tmp_path / "segments.log"
    tmp_path.mkdir(exist_ok=True)
    with open(path, "wb") as f:
        f.write(_frame(("header", {"format": SEGMENT_FORMAT_VERSION + 1,
                                   "schema": SCHEMA_VERSION})))
        f.write(_frame(("segment", "k", None)))
    reopened = SegmentStore(str(tmp_path))
    assert reopened.integrity_evictions == 1
    assert len(reopened) == 0
    assert not os.path.exists(str(path))


def test_compaction_rewrites_dead_frames(tmp_path):
    store = SegmentStore(str(tmp_path))
    # many runs that re-stage the same function: tombstone + segment +
    # closures frames accumulate until dead frames dominate
    for i in range(60):
        closures = {"f": f"fp-{i}"}
        store.begin_run(closures)
        key = store.entry_key("f", "summary", f"fp-{i}", (), ())
        store.stage(key, _record(writes=(("c1", str(i)),)))
        store.flush()
    live = len(store._segments) + len(store._couplings) + 2
    assert store._disk_frames <= 2 * live + 64
    reopened = SegmentStore(str(tmp_path))
    assert reopened.integrity_evictions == 0
    assert reopened.lookup(
        reopened.entry_key("f", "summary", "fp-59", (), ())) is not None


# ----------------------------------------------------------------------
# deps.bin artifact
# ----------------------------------------------------------------------

def test_deps_artifact_round_trips(tmp_path):
    closures = {"f": "fp-f", "g": "fp-g"}
    store = _store_with(tmp_path, closures, {
        "f": ((), (("c1", "x"),)),
        "g": ((("c1", "x"),), ()),
    })
    payload = store.read_deps_artifact()
    assert payload is not None
    assert payload["format"] == SEGMENT_FORMAT_VERSION
    assert payload["closures"] == closures
    graph = DependencyGraph.from_payload(payload["graph"])
    assert graph.dirty_cone({"f"}) == frozenset({"f", "g"})


def test_damaged_deps_artifact_reads_as_none(tmp_path):
    store = _store_with(tmp_path, {"f": "fp-f"},
                        {"f": ((), (("c1", "x"),))})
    with open(store.deps_path, "r+b") as f:
        f.truncate(os.path.getsize(store.deps_path) // 2)
    before = store.integrity_evictions
    assert store.read_deps_artifact() is None
    assert store.integrity_evictions == before + 1


# ----------------------------------------------------------------------
# dependency graph
# ----------------------------------------------------------------------

def test_dirty_cone_is_a_forward_closure():
    graph = DependencyGraph()
    graph.add_body("a", reads=[], writes=["c1"], calls=["b"])
    graph.add_body("b", reads=["c1"], writes=["c2"])
    graph.add_body("c", reads=["c2"], writes=[])
    graph.add_body("d", reads=["unrelated"], writes=[])
    assert graph.dirty_cone({"a"}) == frozenset({"a", "b", "c"})
    assert graph.dirty_cone({"c"}) == frozenset({"c"})
    assert graph.coupling_edges() == {"a": {"b"}, "b": {"c"}}


def test_graph_payload_round_trip():
    graph = DependencyGraph()
    graph.add_body("a", reads=["r"], writes=["w"], calls=["b"])
    clone = DependencyGraph.from_payload(graph.to_payload())
    assert clone.cell_readers == graph.cell_readers
    assert clone.cell_writers == graph.cell_writers
    assert clone.call_edges == graph.call_edges
