"""Shared fixtures and helpers for the SafeFlow test suite."""

import sys
from pathlib import Path

import pytest

# allow running the tests without installation
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import AnalysisConfig, SafeFlow  # noqa: E402
from repro.frontend import load_source  # noqa: E402


FIGURE2_SOURCE = r'''
typedef struct { double control; double feedback; int mode; } SHMData;

SHMData *noncoreCtrl;
SHMData *feedback;

int checkSafety(SHMData *f, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData))) /***/
{
    if (nc->control > 5.0 || nc->control < -5.0)
        return 0;
    if (f->feedback > 100.0)
        return 0;
    return 1;
}

double decision(SHMData *f, double safe, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData))) /***/
{
    if (checkSafety(f, nc))
        return nc->control;
    else
        return safe;
}

void initComm(void)
/***SafeFlow Annotation shminit /***/
{
    void *shmStart;
    int shmid;
    shmid = shmget(42, 2 * sizeof(SHMData), 0666);
    shmStart = shmat(shmid, 0, 0);
    feedback = (SHMData *) shmStart;
    noncoreCtrl = feedback + 1;
    /***SafeFlow Annotation
       assume(shmvar(feedback, sizeof(SHMData)));
       assume(shmvar(noncoreCtrl, sizeof(SHMData)));
       assume(noncore(noncoreCtrl));
       assume(noncore(feedback)); /***/
}

void sendControl(double v);
void getFeedback(SHMData *f);
void computeSafety(SHMData *f, double *out);

int main(void)
{
    double output;
    double safeControl;
    int i;
    initComm();
    for (i = 0; i < 100; i++) {
        getFeedback(feedback);
        computeSafety(feedback, &safeControl);
        output = decision(feedback, safeControl, noncoreCtrl);
        /***SafeFlow Annotation assert(safe(output)); /***/
        sendControl(output);
    }
    return 0;
}
'''


def analyze(source: str, config: AnalysisConfig = None, name: str = "test"):
    """Run the full SafeFlow pipeline on a C source string."""
    return SafeFlow(config).analyze_source(source, filename=f"{name}.c",
                                           name=name)


def front(source: str, filename: str = "test.c"):
    """Run only the front end (preprocess/parse/lower/attach)."""
    return load_source(source, filename=filename)


@pytest.fixture
def figure2_source() -> str:
    return FIGURE2_SOURCE


@pytest.fixture
def figure2_program():
    return front(FIGURE2_SOURCE, "figure2.c")


@pytest.fixture
def figure2_report():
    return analyze(FIGURE2_SOURCE, name="figure2")
