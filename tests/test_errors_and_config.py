"""Exception hierarchy and analysis configuration."""

import pytest

from repro import AnalysisConfig
from repro.errors import (
    AnalysisError,
    AnnotationError,
    CorpusError,
    IRError,
    LoweringError,
    ParseError,
    PreprocessorError,
    SafeFlowError,
    SimulationError,
    SolverError,
)
from repro.ir.source import SourceLocation, UNKNOWN_LOCATION


class TestErrors:
    @pytest.mark.parametrize("cls", [
        AnalysisError, AnnotationError, CorpusError, IRError,
        LoweringError, ParseError, PreprocessorError, SimulationError,
        SolverError,
    ])
    def test_all_derive_from_safeflow_error(self, cls):
        assert issubclass(cls, SafeFlowError)

    def test_location_rendered(self):
        err = ParseError("bad token", SourceLocation("x.c", 5, 3))
        assert str(err) == "x.c:5:3: bad token"

    def test_location_optional(self):
        assert str(SafeFlowError("plain")) == "plain"

    def test_catchable_as_family(self):
        try:
            raise LoweringError("nope")
        except SafeFlowError as exc:
            assert exc.message == "nope"

    def test_source_location_ordering(self):
        a = SourceLocation("a.c", 3)
        b = SourceLocation("a.c", 10)
        assert a < b

    def test_unknown_location_constant(self):
        assert UNKNOWN_LOCATION.line == 0


class TestConfig:
    def test_defaults_reproduce_the_paper(self):
        config = AnalysisConfig()
        assert config.context_sensitive
        assert config.track_control_dependence
        assert config.check_restrictions
        assert config.triage_control_dependence
        assert not config.summary_mode
        assert config.message_passing_extension

    def test_defines_are_independent_per_instance(self):
        a = AnalysisConfig()
        b = AnalysisConfig()
        a.defines["X"] = "1"
        assert "X" not in b.defines

    def test_defines_reach_the_preprocessor(self):
        from tests.conftest import analyze
        source = """
            void emit(int v);
            int main(void) {
            #ifdef EXTRA
                emit(1);
            #endif
                return 0;
            }
        """
        from repro import SafeFlow
        plain = SafeFlow().analyze_source(source)
        with_define = SafeFlow(
            AnalysisConfig(defines={"EXTRA": "1"})
        ).analyze_source(source)
        # both clean; just ensure the define changed the program size
        assert with_define.stats.instructions > plain.stats.instructions

    def test_include_dirs_used(self, tmp_path):
        from repro import SafeFlow
        inc = tmp_path / "inc"
        inc.mkdir()
        (inc / "shared.h").write_text("#define LIMIT 9\n")
        src = tmp_path / "main.c"
        src.write_text('#include "shared.h"\nint main(void)'
                       '{ return LIMIT; }\n')
        config = AnalysisConfig(include_dirs=(str(inc),))
        report = SafeFlow(config).analyze_files([str(src)])
        assert report.passed

    def test_verify_ir_can_be_disabled(self):
        from repro import SafeFlow
        config = AnalysisConfig(verify_ir=False)
        report = SafeFlow(config).analyze_source(
            "int main(void) { return 0; }"
        )
        assert report.passed
