"""Plant dynamics: instability without control, stability under LQR."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simplex import (
    DoubleInvertedPendulum,
    InvertedPendulum,
    LQRController,
    SimplePlant,
    rk4_step,
)


class TestRK4:
    def test_exponential_decay_accuracy(self):
        # dx/dt = -x, exact solution e^{-t}
        x = np.array([1.0])
        for _ in range(100):
            x = rk4_step(lambda s, u: -s, x, 0.0, 0.01)
        assert abs(x[0] - math.exp(-1.0)) < 1e-8

    def test_forced_system(self):
        # dx/dt = u with u=2: x(1) = 2
        x = np.array([0.0])
        for _ in range(100):
            x = rk4_step(lambda s, u: np.array([u]), x, 2.0, 0.01)
        assert abs(x[0] - 2.0) < 1e-9


class TestInvertedPendulum:
    def test_initial_state_validated(self):
        with pytest.raises(SimulationError):
            InvertedPendulum(initial_state=(0.0, 0.0))

    def test_upright_is_unstable_without_control(self):
        plant = InvertedPendulum(initial_state=(0.0, 0.0, 0.02, 0.0))
        for _ in range(400):
            plant.step(0.0, 0.01)
        assert abs(plant.state[2]) > 0.5  # the pendulum falls

    def test_lqr_stabilizes(self):
        plant = InvertedPendulum(initial_state=(0.1, 0.0, 0.08, 0.0))
        controller = LQRController(plant)
        for _ in range(800):
            u = controller.compute(plant.state, plant.time)
            plant.step(u, 0.01)
        assert abs(plant.state[2]) < 0.02
        assert abs(plant.state[0]) < 0.2

    def test_input_saturation(self):
        plant = InvertedPendulum()
        before = plant.state.copy()
        plant.step(1000.0, 0.01)  # clipped to u_max
        plant2 = InvertedPendulum()
        plant2.step(plant.u_max, 0.01)
        assert np.allclose(plant.state, plant2.state)

    def test_nan_input_handled(self):
        plant = InvertedPendulum()
        plant.step(float("nan"), 0.01)
        assert np.all(np.isfinite(plant.state))

    def test_linearization_shape(self):
        a, b = InvertedPendulum().linearized()
        assert a.shape == (4, 4)
        assert b.shape == (4, 1)

    def test_linearization_matches_dynamics_near_origin(self):
        plant = InvertedPendulum(initial_state=(0.0, 0.0, 0.0, 0.0))
        a, b = plant.linearized()
        eps = 1e-6
        state = np.array([0.0, 0.0, eps, 0.0])
        nonlinear = plant.dynamics(state, 0.0)
        linear = a @ state
        assert np.allclose(nonlinear, linear, atol=1e-9)

    def test_fallen_predicate(self):
        plant = InvertedPendulum(initial_state=(0.0, 0.0, 2.0, 0.0))
        assert plant.fallen

    def test_reset(self):
        plant = InvertedPendulum()
        plant.step(1.0, 0.01)
        plant.reset((0.0, 0.0, 0.0, 0.0))
        assert plant.time == 0.0
        assert np.allclose(plant.state, 0.0)


class TestSimplePlant:
    def test_decays_to_origin_unforced(self):
        plant = SimplePlant(initial_state=(1.0, 0.0))
        for _ in range(4000):
            plant.step(0.0, 0.01)
        assert abs(plant.state[0]) < 0.05

    def test_constant_input_settles_at_gain(self):
        plant = SimplePlant(initial_state=(0.0, 0.0), a0=1.0, a1=2.0, b=1.0)
        for _ in range(4000):
            plant.step(1.0, 0.01)
        assert abs(plant.state[0] - 1.0) < 0.02  # steady state b/a0


class TestDoubleInvertedPendulum:
    def test_unstable_without_control(self):
        plant = DoubleInvertedPendulum()
        for _ in range(300):
            plant.step(0.0, 0.005)
        assert plant.fallen or abs(plant.state[2]) > 0.2

    def test_lqr_stabilizes_six_states(self):
        plant = DoubleInvertedPendulum(
            initial_state=(0.0, 0.0, 0.02, 0.0, -0.015, 0.0)
        )
        controller = LQRController(plant)
        for _ in range(2000):
            u = controller.compute(plant.state, plant.time)
            plant.step(u, 0.005)
        assert abs(plant.state[2]) < 0.01
        assert abs(plant.state[4]) < 0.01

    def test_linearization_shape(self):
        a, b = DoubleInvertedPendulum().linearized()
        assert a.shape == (6, 6)
        assert b.shape == (6, 1)
