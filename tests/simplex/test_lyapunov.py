"""Lyapunov stability envelopes (the Simplex recoverability monitor)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.simplex import (
    InvertedPendulum,
    LQRController,
    StabilityEnvelope,
)


@pytest.fixture(scope="module")
def setup():
    plant = InvertedPendulum()
    controller = LQRController(plant)
    envelope = StabilityEnvelope.from_closed_loop(
        controller.closed_loop_a,
        state_limits=[plant.track_limit, None, plant.angle_limit, None],
    )
    return plant, controller, envelope


class TestConstruction:
    def test_p_is_positive_definite(self, setup):
        _, _, envelope = setup
        eigs = np.linalg.eigvalsh(envelope.p)
        assert np.all(eigs > 0)

    def test_level_respects_state_limits(self, setup):
        plant, _, envelope = setup
        # any state on the envelope boundary must satisfy the box limits;
        # check along the worst-case axes via P^-1 diagonal formula
        p_inv = np.linalg.inv(envelope.p)
        for i, limit in [(0, plant.track_limit), (2, plant.angle_limit)]:
            worst = np.sqrt(envelope.level * p_inv[i, i])
            assert worst <= limit + 1e-9

    def test_unstable_closed_loop_rejected(self):
        a_unstable = np.array([[1.0, 0.0], [0.0, 2.0]])
        with pytest.raises(SimulationError):
            StabilityEnvelope.from_closed_loop(a_unstable)

    def test_non_square_p_rejected(self):
        with pytest.raises(SimulationError):
            StabilityEnvelope(np.ones((2, 3)))

    def test_for_plant_convenience(self):
        envelope = StabilityEnvelope.for_plant(InvertedPendulum())
        assert envelope.p.shape == (4, 4)


class TestQueries:
    def test_origin_inside(self, setup):
        _, _, envelope = setup
        assert envelope.contains(np.zeros(4))
        assert envelope.margin(np.zeros(4)) == pytest.approx(envelope.level)

    def test_far_state_outside(self, setup):
        _, _, envelope = setup
        assert not envelope.contains(np.array([5.0, 5.0, 5.0, 5.0]))

    def test_value_is_quadratic(self, setup):
        _, _, envelope = setup
        x = np.array([0.1, 0.0, 0.05, 0.0])
        assert envelope.value(2 * x) == pytest.approx(4 * envelope.value(x))

    def test_nan_input_never_recoverable(self, setup):
        plant, _, envelope = setup
        assert not envelope.recoverable(plant, np.zeros(4), float("nan"),
                                        0.01)

    def test_small_input_from_origin_recoverable(self, setup):
        plant, _, envelope = setup
        assert envelope.recoverable(plant, np.zeros(4), 0.1, 0.01)

    def test_huge_input_near_boundary_not_recoverable(self, setup):
        plant, _, envelope = setup
        # state close to the boundary along the angle axis
        p_inv = np.linalg.inv(envelope.p)
        angle = 0.98 * np.sqrt(envelope.level * p_inv[2, 2])
        state = np.array([0.0, 0.0, angle, 0.6])
        if envelope.contains(state):
            assert not envelope.recoverable(plant, state, -plant.u_max, 0.2)


class TestInvariance:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(-1.0, 1.0), st.floats(-1.0, 1.0),
           st.floats(-1.0, 1.0), st.floats(-1.0, 1.0))
    def test_lyapunov_value_decreases_under_safety_controller(
        self, a, b, c, d
    ):
        """The defining envelope property: under the safety controller
        the Lyapunov function is non-increasing (up to integration
        error) for states inside the envelope."""
        plant = InvertedPendulum()
        controller = LQRController(plant)
        envelope = StabilityEnvelope.from_closed_loop(
            controller.closed_loop_a,
            state_limits=[plant.track_limit, None, plant.angle_limit, None],
        )
        direction = np.array([a, b, c, d])
        norm = np.linalg.norm(direction)
        if norm < 1e-3:
            return
        # place the state well inside the envelope
        state = direction / norm * 0.1
        value = envelope.value(state)
        if value >= envelope.level:
            return
        # evolve the *linearized* closed loop one small step
        a_cl = controller.closed_loop_a
        next_state = state + 0.002 * (a_cl @ state)
        assert envelope.value(next_state) <= value + 1e-6
