"""Controller implementations, including fault injection."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simplex import (
    EnergyShapingController,
    FaultyController,
    InvertedPendulum,
    LQRController,
    MPCController,
    PDController,
    SimplePlant,
    lqr_gains,
)


class TestLQRDesign:
    def test_gains_shape(self):
        plant = InvertedPendulum()
        a, b = plant.linearized()
        k = lqr_gains(a, b)
        assert k.shape == (1, 4)

    def test_closed_loop_stable(self):
        plant = InvertedPendulum()
        controller = LQRController(plant)
        eigs = np.linalg.eigvals(controller.closed_loop_a)
        assert np.all(eigs.real < 0)

    def test_output_clamped(self):
        plant = InvertedPendulum()
        controller = LQRController(plant)
        huge_state = np.array([10.0, 10.0, 10.0, 10.0])
        u = controller.compute(huge_state, 0.0)
        assert abs(u) <= plant.u_max

    def test_zero_state_zero_output(self):
        controller = LQRController(InvertedPendulum())
        assert controller.compute(np.zeros(4), 0.0) == pytest.approx(0.0)


class TestOtherControllers:
    def test_pd_drives_toward_setpoint(self):
        plant = SimplePlant(initial_state=(1.0, 0.0))
        pd = PDController(kp=4.0, kd=2.0)
        for _ in range(3000):
            u = pd.compute(plant.state, plant.time)
            plant.step(u, 0.01)
        assert abs(plant.state[0]) < 0.05

    def test_energy_shaping_output_bounded(self):
        ctrl = EnergyShapingController(u_max=5.0)
        state = np.array([0.5, 0.0, 0.3, 2.0])
        assert abs(ctrl.compute(state, 0.0)) <= 5.0

    def test_mpc_picks_stabilizing_direction(self):
        plant = InvertedPendulum(initial_state=(0.0, 0.0, 0.1, 0.0))
        mpc = MPCController(plant, state_weights=[0.5, 0.1, 8.0, 0.9])
        u = mpc.compute(plant.state, 0.0)
        # pendulum leaning positive: the cart must move to catch it;
        # any admissible output is fine, but it must not be extreme-wrong
        plant_copy = InvertedPendulum(initial_state=(0.0, 0.0, 0.1, 0.0))
        for _ in range(50):
            u = mpc.compute(plant_copy.state, plant_copy.time)
            plant_copy.step(u, 0.01)
        assert abs(plant_copy.state[2]) < 0.5

    def test_mpc_output_within_limits(self):
        plant = InvertedPendulum()
        mpc = MPCController(plant)
        u = mpc.compute(np.array([0.5, 0.0, 0.2, 0.0]), 0.0)
        assert abs(u) <= plant.u_max


class TestFaultyController:
    def _base(self):
        return PDController(kp=1.0, kd=0.5, u_max=5.0)

    def test_nominal_before_fault_time(self):
        faulty = FaultyController(self._base(), fault_time=10.0, mode="wild")
        state = np.array([0.5, 0.0])
        assert faulty.compute(state, 0.0) == self._base().compute(state, 0.0)

    def test_wild_mode_is_bang_bang(self):
        faulty = FaultyController(self._base(), fault_time=0.0, mode="wild",
                                  magnitude=5.0)
        state = np.zeros(2)
        outputs = {faulty.compute(state, 1.0) for _ in range(4)}
        assert outputs == {5.0, -5.0}

    def test_stuck_mode_holds_last(self):
        faulty = FaultyController(self._base(), fault_time=1.0, mode="stuck")
        state = np.array([0.5, 0.0])
        before = faulty.compute(state, 0.5)
        after = faulty.compute(np.array([-0.9, 0.0]), 2.0)
        assert after == before

    def test_nan_mode(self):
        faulty = FaultyController(self._base(), fault_time=0.0, mode="nan")
        assert math.isnan(faulty.compute(np.zeros(2), 1.0))

    def test_bias_mode(self):
        faulty = FaultyController(self._base(), fault_time=0.0, mode="bias",
                                  magnitude=2.0)
        state = np.zeros(2)
        assert faulty.compute(state, 1.0) == pytest.approx(2.0)

    def test_reverse_mode(self):
        faulty = FaultyController(self._base(), fault_time=0.0,
                                  mode="reverse")
        state = np.array([1.0, 0.0])
        nominal = self._base().compute(state, 0.0)
        assert faulty.compute(state, 0.0) == pytest.approx(-nominal)

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            FaultyController(self._base(), fault_time=0.0, mode="gremlins")

    def test_reset_clears_fault_state(self):
        faulty = FaultyController(self._base(), fault_time=1.0, mode="stuck")
        faulty.compute(np.array([0.7, 0.0]), 0.5)
        faulty.reset()
        assert faulty._last == 0.0
