"""The full Simplex loop: protection, attacks, and the fix."""

import pytest

from repro.runtime import RuntimeFlowTracker
from repro.simplex import (
    FeedbackOverwrite,
    HeartbeatFreeze,
    PidOverwrite,
    SimplexSystem,
    InvertedPendulum,
    pendulum_simplex,
)


class TestNominalOperation:
    def test_healthy_system_stays_up(self):
        system = pendulum_simplex(dt=0.01)
        trace = system.run(5.0)
        assert not system.plant.fallen
        assert trace.stayed_recoverable(system.envelope)

    def test_complex_controller_mostly_in_control(self):
        system = pendulum_simplex(dt=0.01)
        trace = system.run(5.0)
        assert trace.complex_ratio > 0.5

    def test_safety_only_without_complex(self):
        plant = InvertedPendulum(initial_state=(0.0, 0.0, 0.05, 0.0))
        system = SimplexSystem(plant, dt=0.01)
        trace = system.run(4.0)
        assert trace.complex_ratio == 0.0
        assert not plant.fallen


class TestFaultProtection:
    def test_reverse_fault_contained_by_monitor(self):
        system = pendulum_simplex(fault_time=1.0, fault_mode="reverse")
        trace = system.run(6.0)
        assert not system.plant.fallen
        assert trace.stayed_recoverable(system.envelope)
        assert len(trace.rejections) > 0

    def test_nan_fault_contained(self):
        system = pendulum_simplex(fault_time=1.0, fault_mode="nan")
        system.run(4.0)
        assert not system.plant.fallen

    def test_heartbeat_freeze_triggers_fallback(self):
        system = pendulum_simplex(
            injections=[HeartbeatFreeze(start=1.0, region="status")]
        )
        trace = system.run(4.0)
        assert not system.plant.fallen
        # after the freeze, the stale command keeps getting rejected
        late = [used for t, used in zip(trace.times, trace.used_complex)
                if t > 1.5]
        assert not any(late)


class TestFeedbackRigging:
    """The Generic Simplex error #1, demonstrated dynamically (§4)."""

    def _injection(self):
        return FeedbackOverwrite(start=1.0, region="feedback",
                                 writer="complex")

    def test_trusting_core_is_defeated(self):
        system = pendulum_simplex(
            fault_time=1.0, fault_mode="reverse", trusting_feedback=True,
            injections=[self._injection()],
        )
        trace = system.run(6.0)
        assert system.plant.fallen
        assert not trace.stayed_recoverable(system.envelope)

    def test_local_state_core_survives(self):
        system = pendulum_simplex(
            fault_time=1.0, fault_mode="reverse", trusting_feedback=False,
            injections=[self._injection()],
        )
        trace = system.run(6.0)
        assert not system.plant.fallen
        assert trace.stayed_recoverable(system.envelope)

    def test_audit_trail_shows_intruder(self):
        system = pendulum_simplex(
            trusting_feedback=True, injections=[self._injection()]
        )
        system.run(2.0)
        intruders = system.shm.noncore_writes_to("feedback",
                                                 core_writers=("core",))
        assert intruders


class TestPidOverwrite:
    def test_status_region_corrupted(self):
        system = pendulum_simplex(
            injections=[PidOverwrite(start=0.5, region="status", pid=1)]
        )
        system.run(1.0)
        assert system.shm.read("status", "ncPid") == 1


class TestTrackerIntegration:
    def test_monitorized_values_pass_runtime_check(self):
        tracker = RuntimeFlowTracker()
        system = pendulum_simplex(dt=0.01)
        system.tracker = tracker
        system.run(2.0)
        assert tracker.violations == []
        assert tracker.reads > 0


class TestDoubleInvertedPendulumSimplex:
    """The Simplex loop generalizes to the 6-state double pendulum."""

    def _system(self, **kwargs):
        from repro.simplex import (
            DoubleInvertedPendulum,
            MPCController,
            SimplexSystem,
        )
        plant = DoubleInvertedPendulum()
        complex_controller = MPCController(
            plant, dt=0.005,
            state_weights=[0.5, 0.1, 8.0, 0.9, 6.0, 0.7],
        )
        return SimplexSystem(plant, complex_controller=complex_controller,
                             dt=0.005, **kwargs)

    def test_six_state_feedback_published(self):
        system = self._system()
        system.run(0.1)
        fb = system.shm.read_region("feedback")
        assert "x4" in fb and "x5" in fb  # beyond the 4 canonical names

    def test_stays_recoverable(self):
        system = self._system()
        trace = system.run(3.0)
        assert not system.plant.fallen
        assert trace.stayed_recoverable(system.envelope)

    def test_region_layout_scales_with_state(self):
        system = self._system()
        fb_spec = system.shm.specs["feedback"]
        assert fb_spec.size == 8 * 6 + 8
