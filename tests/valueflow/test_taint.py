"""The safe/unsafe lattice with provenance (§2 predicates)."""

import pytest
from hypothesis import given, strategies as st

from repro.valueflow import SAFE, Taint, TaintSource, data_taint, join_all


def src(region: str, line: int = 1) -> TaintSource:
    return TaintSource(region=region, function="f", filename="t.c", line=line)


sources = st.builds(
    TaintSource,
    region=st.sampled_from(["a", "b", "c", "d"]),
    function=st.just("f"),
    filename=st.just("t.c"),
    line=st.integers(1, 50),
)
taints = st.builds(
    Taint,
    data=st.frozensets(sources, max_size=4),
    control=st.frozensets(sources, max_size=4),
)


class TestPredicates:
    def test_safe_by_default(self):
        assert SAFE.is_safe
        assert not SAFE.is_unsafe

    def test_data_taint_is_unsafe(self):
        t = data_taint([src("shm")])
        assert t.is_unsafe and not t.is_safe

    def test_control_only_is_not_unsafe(self):
        """§2: unsafe(x) means *value* dependence; control-only taint is
        the candidate-false-positive class, not unsafe(x)."""
        t = Taint(control=frozenset({src("shm")}))
        assert not t.is_unsafe
        assert not t.is_safe

    def test_mutual_exclusion(self):
        """safe(x) and unsafe(x) are mutually exclusive (§2)."""
        for t in (SAFE, data_taint([src("a")]),
                  Taint(control=frozenset({src("b")}))):
            assert not (t.is_safe and t.is_unsafe)

    def test_bool_mirrors_not_safe(self):
        assert not SAFE
        assert data_taint([src("a")])

    def test_all_sources_unions(self):
        t = Taint(frozenset({src("a")}), frozenset({src("b")}))
        assert {s.region for s in t.all_sources} == {"a", "b"}


class TestJoin:
    def test_join_identity(self):
        t = data_taint([src("a")])
        assert t.join(SAFE) == t
        assert SAFE.join(t) == t

    def test_join_unions_sources(self):
        t = data_taint([src("a")]).join(data_taint([src("b")]))
        assert {s.region for s in t.data} == {"a", "b"}

    def test_join_keeps_kinds_separate(self):
        t = data_taint([src("a")]).join(Taint(control=frozenset({src("b")})))
        assert {s.region for s in t.data} == {"a"}
        assert {s.region for s in t.control} == {"b"}

    def test_as_control_demotes_data(self):
        t = data_taint([src("a")]).as_control()
        assert not t.data
        assert {s.region for s in t.control} == {"a"}

    def test_as_control_of_safe_is_safe(self):
        assert SAFE.as_control() is SAFE

    def test_join_all(self):
        t = join_all([data_taint([src("a")]), SAFE, data_taint([src("b")])])
        assert len(t.data) == 2

    @given(taints, taints)
    def test_join_commutative(self, a, b):
        assert a.join(b) == b.join(a)

    @given(taints, taints, taints)
    def test_join_associative(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(taints)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(taints)
    def test_safe_is_identity(self, a):
        assert a.join(SAFE) == a

    @given(taints)
    def test_as_control_idempotent(self, a):
        assert a.as_control().as_control() == a.as_control()

    @given(taints, taints)
    def test_join_monotone_in_sources(self, a, b):
        joined = a.join(b)
        assert a.data <= joined.data
        assert b.control <= joined.control

    @given(taints)
    def test_hashable_and_equal(self, a):
        assert hash(a) == hash(Taint(a.data, a.control))


class TestSourceIdentity:
    def test_sources_compare_by_fields(self):
        assert src("a", 3) == src("a", 3)
        assert src("a", 3) != src("a", 4)

    def test_sorted_deterministically(self):
        items = [src("b"), src("a"), src("a", 2)]
        ordered = sorted(items)
        assert ordered[0].region == "a"

    def test_describe_mentions_region_and_site(self):
        text = src("cmdRegion", 12).describe()
        assert "cmdRegion" in text and "t.c:12" in text
