"""The compiled kernel must be invisible in results.

The bitset lattice (:mod:`repro.valueflow.bitdomain`) and the opcode
programs (:mod:`repro.valueflow.kernel`) are pure performance work: the
object-domain engine stays the oracle, and every observable report must
be byte-identical between ``kernel="object"`` and ``kernel="compiled"``
— including past the interner's width cap, where the compiled kernel
falls back to the object domain mid-analysis.

Covers: randomized algebraic laws of the bitset encoding against the
interned ``Taint`` lattice, whole-report differential sweeps (kernel x
fixpoint, the bundled corpus, degraded inputs), the kernel counters and
their daemon aggregation, and cache fingerprinting (summaries recorded
under one kernel are never replayed into the other).
"""

import gc
import json
import random

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import generate_core, load_all
from repro.frontend import load_source
from repro.perf.fingerprint import config_fingerprint
from repro.perf.gcpause import gc_paused
from repro.perf.summary_store import SummaryStore
from repro.shm.propagation import ShmAnalysis
from repro.valueflow.bitdomain import (
    DEFAULT_WIDTH,
    KernelOverflow,
    PLACEHOLDER_PREFIX,
    RegionInterner,
)
from repro.valueflow.engine import ValueFlowAnalysis
from repro.valueflow.taint import SAFE, Taint, TaintSource


def _source(i: int, placeholder: bool = False) -> TaintSource:
    region = f"{PLACEHOLDER_PREFIX}{i}" if placeholder else f"region{i}"
    return TaintSource(region=region, function="f", filename="t.c", line=i)


def _random_taint(rng: random.Random, pool) -> Taint:
    data = frozenset(rng.sample(pool, rng.randint(0, 4)))
    control = frozenset(rng.sample(pool, rng.randint(0, 4)))
    return Taint(data, control)


# ----------------------------------------------------------------------
# bitset lattice laws (randomized against the object lattice)
# ----------------------------------------------------------------------

class TestBitdomain:
    def test_encode_decode_round_trips_to_the_same_object(self):
        rng = random.Random(11)
        interner = RegionInterner(32)
        pool = [_source(i) for i in range(8)]
        for _ in range(200):
            t = _random_taint(rng, pool)
            enc = interner.encode(t)
            assert interner.decode(enc) is t

    def test_join_is_bitwise_or(self):
        rng = random.Random(12)
        interner = RegionInterner(32)
        pool = [_source(i) for i in range(8)]
        for _ in range(200):
            a = _random_taint(rng, pool)
            b = _random_taint(rng, pool)
            joined = interner.decode(
                interner.encode(a) | interner.encode(b))
            assert joined is a.join(b)

    def test_as_control_mirrors_object_lattice(self):
        rng = random.Random(13)
        interner = RegionInterner(32)
        pool = [_source(i) for i in range(8)]
        for _ in range(200):
            t = _random_taint(rng, pool)
            mirrored = interner.decode(
                interner.as_control(interner.encode(t)))
            assert mirrored is t.as_control()

    def test_distinct_taints_get_distinct_encodings(self):
        rng = random.Random(14)
        interner = RegionInterner(64)
        pool = [_source(i) for i in range(10)]
        seen = {}
        for _ in range(300):
            t = _random_taint(rng, pool)
            enc = interner.encode(t)
            assert seen.setdefault(enc, t) is t

    def test_keep_mask_strips_exactly_the_placeholder_bits(self):
        interner = RegionInterner(16)
        real = _source(1)
        ph = _source(2, placeholder=True)
        t = Taint(frozenset({real, ph}), frozenset({ph}))
        stripped = interner.decode(
            interner.encode(t) & interner.keep_mask)
        assert stripped is Taint(frozenset({real}))
        # a placeholder-only taint strips to SAFE
        only = Taint(frozenset({ph}))
        assert interner.decode(
            interner.encode(only) & interner.keep_mask) is SAFE

    def test_safe_is_zero(self):
        interner = RegionInterner(8)
        assert interner.encode(SAFE) == 0
        assert interner.decode(0) is SAFE

    def test_interning_past_the_width_cap_raises(self):
        interner = RegionInterner(4)
        for i in range(4):
            interner.bit(_source(i))
        with pytest.raises(KernelOverflow):
            interner.bit(_source(99))
        # the encode path hits the same cap
        fat = Taint(frozenset({_source(100 + i) for i in range(5)}))
        with pytest.raises(KernelOverflow):
            RegionInterner(4).encode(fat)

    def test_exactly_at_the_width_cap_still_works(self):
        width = 6
        interner = RegionInterner(width)
        sources = [_source(i) for i in range(width)]
        t = Taint(frozenset(sources), frozenset(sources[:2]))
        assert interner.decode(interner.encode(t)) is t
        assert len(interner) == width

    def test_default_width_matches_config_default(self):
        assert AnalysisConfig().kernel_width == DEFAULT_WIDTH


# ----------------------------------------------------------------------
# differential byte-identity: compiled vs object, sparse vs dense
# ----------------------------------------------------------------------

def _signature(report):
    return (
        report.render(verbose=True),
        json.dumps(report.witness_graphs, sort_keys=True, default=str),
        report.stats.contexts_analyzed,
        json.dumps(
            {k: v for k, v in report.to_json().items() if k != "stats"},
            sort_keys=True, default=str,
        ),
    )


def _sweep_configs(**overrides):
    for kernel in ("object", "compiled"):
        for sparse in (True, False):
            yield AnalysisConfig(
                kernel=kernel, sparse_fixpoint=sparse, **overrides)


WORKLOADS = [
    dict(data_error_regions=2, control_fp_regions=1,
         benign_read_regions=1, monitored_regions=2,
         filler_functions=12, chain_depth=4, call_fanout=2,
         pipeline_stages=4),
    dict(data_error_regions=1, control_fp_regions=2,
         benign_read_regions=2, monitored_regions=1,
         filler_functions=6, chain_depth=3, loops=False,
         call_fanout=3, pipeline_stages=6),
]


class TestDifferentialParity:
    @pytest.mark.parametrize("params", WORKLOADS)
    def test_generated_workloads(self, params):
        source = generate_core(**params).source
        signatures = {
            _signature(SafeFlow(cfg).analyze_source(source, name="w"))
            for cfg in _sweep_configs()
        }
        assert len(signatures) == 1

    @pytest.mark.parametrize("extra", [
        dict(summary_mode=True),
        dict(context_sensitive=False),
        dict(track_control_dependence=False),
    ])
    def test_generated_workload_config_axes(self, extra):
        source = generate_core(**WORKLOADS[0]).source
        signatures = {
            _signature(SafeFlow(cfg).analyze_source(source, name="w"))
            for cfg in _sweep_configs(**extra)
        }
        assert len(signatures) == 1

    def test_bundled_corpus(self):
        for system in load_all():
            signatures = {
                _signature(system.analyze(cfg))
                for cfg in _sweep_configs()
            }
            assert len(signatures) == 1, system.key

    def test_degraded_inputs(self, tmp_path):
        good = tmp_path / "good.c"
        good.write_text(generate_core(**WORKLOADS[0]).source)
        bad = tmp_path / "bad.c"
        bad.write_text("int broken( { this is not C }\n")
        signatures = set()
        for cfg in _sweep_configs(degraded_mode=True):
            report = SafeFlow(cfg).analyze_files(
                [str(good), str(bad)], name="deg")
            assert report.stats.degraded_units > 0
            signatures.add(_signature(report))
        assert len(signatures) == 1

    def test_width_cap_fallback_is_byte_identical(self):
        source = generate_core(**WORKLOADS[0]).source
        oracle = _signature(
            SafeFlow(AnalysisConfig(kernel="object"))
            .analyze_source(source, name="w"))
        capped_cfg = AnalysisConfig(kernel="compiled", kernel_width=1)
        capped = SafeFlow(capped_cfg).analyze_source(source, name="w")
        assert _signature(capped) == oracle
        counters = capped.stats.kernel_counters
        assert counters["kernel_fallbacks"] > 0
        assert counters["kernel_fallback_bodies"] > 0


# ----------------------------------------------------------------------
# kernel counters and their daemon aggregation
# ----------------------------------------------------------------------

class TestKernelCounters:
    def test_compiled_run_exposes_kernel_counters(self):
        source = generate_core(**WORKLOADS[0]).source
        report = SafeFlow(
            AnalysisConfig(kernel="compiled")
        ).analyze_source(source, name="w")
        counters = report.stats.kernel_counters
        assert counters["kernel_compiled_bodies"] > 0
        assert counters["kernel_compiled_programs"] > 0
        assert counters["kernel_opcode_dispatches"] > 0
        assert counters["kernel_passes"] >= counters[
            "kernel_compiled_bodies"]
        assert counters["kernel_interner_bits"] > 0
        assert counters["kernel_compile_us"] >= 0
        assert counters["kernel_execute_us"] >= 0
        assert counters["kernel_fallbacks"] == 0
        # per-opcode histogram entries sum to the dispatch total
        per_op = sum(v for k, v in counters.items()
                     if k.startswith("kernel_op_"))
        assert per_op == counters["kernel_opcode_dispatches"]

    def test_object_run_has_no_kernel_counters(self):
        source = generate_core(**WORKLOADS[0]).source
        report = SafeFlow(
            AnalysisConfig(kernel="object")
        ).analyze_source(source, name="w")
        assert "kernel_compiled_bodies" not in report.stats.kernel_counters

    def test_server_metrics_fold_kernel_counters(self):
        from repro.server.metrics import ServerMetrics

        source = generate_core(**WORKLOADS[0]).source
        report = SafeFlow(
            AnalysisConfig(kernel="compiled")
        ).analyze_source(source, name="w")
        metrics = ServerMetrics()
        stats_json = report.stats.to_json()
        metrics.observe_analysis(stats_json)
        metrics.observe_analysis(stats_json)
        block = metrics.snapshot()["kernel"]
        assert block["kernel_compiled_bodies"] == 2 * (
            report.stats.kernel_counters["kernel_compiled_bodies"])
        assert block["kernel_opcode_dispatches"] == 2 * (
            report.stats.kernel_counters["kernel_opcode_dispatches"])


# ----------------------------------------------------------------------
# cache fingerprints: kernel mode separates summary namespaces
# ----------------------------------------------------------------------

SUMMARY_PROGRAM = r"""
typedef struct { double v; } R;
R *nc;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(noncore(nc)) /***/
}

double leaf(double a) { return a * 2.0; }
double helper(double a) { return leaf(a) + 1.0; }

int main(void)
{
    double x;
    double y;
    initShm();
    x = nc->v;
    y = helper(x);
    /***SafeFlow Annotation assert(safe(y)); /***/
    emit(y);
    return 0;
}
"""


def _run_with_store(kernel: str, store_path: str) -> ValueFlowAnalysis:
    config = AnalysisConfig(summary_mode=True, kernel=kernel)
    program = load_source(SUMMARY_PROGRAM, filename="prog.c")
    shm = ShmAnalysis(program, config).run()
    store = SummaryStore(store_path)
    return ValueFlowAnalysis(program, shm, config,
                             summary_store=store).run()


def _outcomes(vf: ValueFlowAnalysis, wanted: str):
    return {func for func, _, outcome in vf.summary_events
            if outcome == wanted}


class TestKernelFingerprinting:
    def test_kernel_mode_changes_the_config_fingerprint(self):
        fp_object = config_fingerprint(AnalysisConfig(kernel="object"))
        fp_compiled = config_fingerprint(AnalysisConfig(kernel="compiled"))
        assert fp_object != fp_compiled

    def test_compiled_fingerprint_tracks_opcode_format_version(self):
        from repro.valueflow import opcodes

        fp_before = config_fingerprint(AnalysisConfig(kernel="compiled"))
        original = opcodes.OPCODE_FORMAT_VERSION
        opcodes.OPCODE_FORMAT_VERSION = original + 1
        try:
            fp_after = config_fingerprint(
                AnalysisConfig(kernel="compiled"))
        finally:
            opcodes.OPCODE_FORMAT_VERSION = original
        assert fp_before != fp_after

    def test_report_preserving_knobs_are_cache_only(self):
        base = config_fingerprint(AnalysisConfig())
        assert config_fingerprint(AnalysisConfig(kernel_width=7)) == base
        assert config_fingerprint(AnalysisConfig(pause_gc=False)) == base
        assert config_fingerprint(
            AnalysisConfig(sparse_fixpoint=False)) == base

    def test_kernel_flip_never_replays_recorded_summaries(self, tmp_path):
        store_path = str(tmp_path / "summaries.pkl")
        cold = _run_with_store("compiled", store_path)
        assert _outcomes(cold, "hit") == set()
        recorded = _outcomes(cold, "miss")
        assert {"main", "helper", "leaf"} <= recorded

        # same kernel: everything replays
        warm = _run_with_store("compiled", store_path)
        assert _outcomes(warm, "miss") == set()
        assert _outcomes(warm, "hit") == recorded

        # flipped kernel: nothing recorded under "compiled" is reused
        flipped = _run_with_store("object", store_path)
        assert _outcomes(flipped, "hit") == set()
        assert _outcomes(flipped, "miss") == recorded

        # and the object-mode records now coexist with the compiled ones
        warm_object = _run_with_store("object", store_path)
        assert _outcomes(warm_object, "miss") == set()
        warm_compiled = _run_with_store("compiled", store_path)
        assert _outcomes(warm_compiled, "miss") == set()


# ----------------------------------------------------------------------
# gc pause guard
# ----------------------------------------------------------------------

class TestGcPause:
    def test_nested_guards_restore_gc_once(self):
        assert gc.isenabled()
        with gc_paused():
            assert not gc.isenabled()
            with gc_paused():
                assert not gc.isenabled()
            assert not gc.isenabled()  # outer region still active
        assert gc.isenabled()

    def test_exception_still_restores_gc(self):
        with pytest.raises(RuntimeError):
            with gc_paused():
                raise RuntimeError("boom")
        assert gc.isenabled()

    def test_respects_externally_disabled_gc(self):
        gc.disable()
        try:
            with gc_paused():
                assert not gc.isenabled()
            assert not gc.isenabled()  # not ours to re-enable
        finally:
            gc.enable()

    def test_inactive_guard_is_a_no_op(self):
        with gc_paused(active=False):
            assert gc.isenabled()
