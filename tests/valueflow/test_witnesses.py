"""Witness quality: region-specific paths and per-error DOT subgraphs."""

import pytest

from repro import AnalysisConfig
from tests.conftest import analyze

SOURCE = """
typedef struct { double v; int flag; } R;
R *alpha;
R *beta;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 2 * sizeof(R), 0666), 0, 0);
    alpha = (R *) cursor;
    beta = (R *) (cursor + sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(alpha, sizeof(R)));
        assume(shmvar(beta, sizeof(R)));
        assume(noncore(alpha));
        assume(noncore(beta)) /***/
}
double scalePass(double x) { return 2.0 * x; }
int main(void) {
    double fromAlpha;
    double fromBeta;
    double out;
    int sel;
    initShm();
    fromAlpha = scalePass(alpha->v);
    sel = beta->flag;
    if (sel == 1) out = fromAlpha; else out = 0.0;
    /***SafeFlow Annotation assert(safe(out)); /***/
    emit(out);
    fromBeta = beta->v;
    /***SafeFlow Annotation assert(safe(fromBeta)); /***/
    emit(fromBeta);
    return 0;
}
"""


class TestWitnessRegions:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze(SOURCE, name="witnesses")

    def test_each_dependency_has_its_own_region_source(self, report):
        for error in report.errors:
            region = error.message.split("'")[-2]
            assert f"noncore read {region}" in error.witness[0], error.message

    def test_cross_function_path_traverses_callee(self, report):
        alpha_errors = [e for e in report.errors if "alpha" in e.message]
        assert alpha_errors
        witness = "\n".join(alpha_errors[0].witness)
        assert "scalePass" in witness

    def test_every_witness_ends_at_its_sink(self, report):
        for error in report.errors:
            assert error.variable in error.witness[-1]

    def test_dot_subgraph_excludes_unrelated_sinks(self, report):
        # find the index of the fromBeta error; its DOT must not pull in
        # the whole graph's other sink
        for index, error in enumerate(report.errors):
            dot = report.witness_graphs[index]
            assert "digraph" in dot
            assert f"assert safe({error.variable})" in dot

    def test_dot_contains_source_nodes(self, report):
        for index, error in enumerate(report.errors):
            region = error.message.split("'")[-2]
            assert f"noncore read {region}" in report.witness_graphs[index]


class TestExtensionInterplay:
    def test_summaries_plus_paranoid(self):
        config = AnalysisConfig(summary_mode=True,
                                unannotated_shm_is_core=False)
        report = analyze(SOURCE, config)
        base = analyze(SOURCE)
        assert len(report.errors) >= len(base.errors)

    def test_summaries_preserve_witness_quality(self):
        report = analyze(SOURCE, AnalysisConfig(summary_mode=True))
        alpha_errors = [e for e in report.errors if "alpha" in e.message]
        assert alpha_errors and alpha_errors[0].witness

    def test_insensitive_plus_no_control(self):
        config = AnalysisConfig(context_sensitive=False,
                                track_control_dependence=False)
        report = analyze(SOURCE, config)
        # data deps survive, control-only ones vanish
        variables = {e.variable for e in report.errors}
        assert "fromBeta" in variables
