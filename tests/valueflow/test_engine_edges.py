"""Phase-3 edge cases: loops, switches, arrays, unions, mixed flows."""

import pytest

from repro.core.config import AnalysisConfig
from repro.reporting import DependencyKind
from tests.conftest import analyze

HEADER = """
typedef struct { double v; int flag; double arr[4]; } R;
R *nc;
R *core;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 2 * sizeof(R), 0666), 0, 0);
    nc = (R *) cursor;
    core = (R *) (cursor + sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(shmvar(core, sizeof(R)));
        assume(noncore(nc)) /***/
}
"""


def run(body, config=None):
    return analyze(HEADER + body, config=config)


class TestLoops:
    def test_loop_accumulation_taints(self):
        report = run("""
            int main(void) {
                double total;
                int i;
                initShm();
                total = 0.0;
                for (i = 0; i < 4; i++) {
                    total = total + nc->arr[i];
                }
                /***SafeFlow Annotation assert(safe(total)); /***/
                emit(total);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind in (DependencyKind.DATA,
                                         DependencyKind.BOTH)

    def test_loop_bound_from_shm_is_control(self):
        report = run("""
            int main(void) {
                double total;
                int i;
                int n;
                initShm();
                total = 0.0;
                n = nc->flag;
                if (n > 4) { n = 4; }
                for (i = 0; i < n; i++) {
                    total = total + 1.0;
                }
                /***SafeFlow Annotation assert(safe(total)); /***/
                emit(total);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.CONTROL

    def test_while_loop_stable_taint(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = 0.0;
                while (x < 10.0) {
                    x = x + nc->v;
                }
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1


class TestSwitch:
    def test_switch_on_tainted_value_is_control(self):
        report = run("""
            int main(void) {
                double out;
                initShm();
                switch (nc->flag) {
                case 0: out = 1.0; break;
                case 1: out = 2.0; break;
                default: out = 3.0;
                }
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.CONTROL

    def test_switch_case_with_tainted_value_is_data(self):
        report = run("""
            int main(void) {
                double out;
                int m;
                initShm();
                m = 1;
                switch (m) {
                case 1: out = nc->v; break;
                default: out = 0.0;
                }
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind in (DependencyKind.DATA,
                                         DependencyKind.BOTH)


class TestAggregates:
    def test_union_fields_share_taint(self):
        """Unions overlay storage: taint must not be laundered through
        the other member (both fields map to offset 0)."""
        report = run("""
            typedef union { double d; int i; } U;
            int main(void) {
                U u;
                double x;
                initShm();
                u.d = nc->v;
                x = (double) u.i;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        # union members may or may not collapse to one cell; the read
        # of u.i must at minimum not crash, and if cells collapse the
        # error appears. Accept the conservative outcome only.
        assert len(report.errors) <= 1

    def test_nested_struct_flow(self):
        report = run("""
            typedef struct { double inner; } In;
            typedef struct { In a; In b; } Out;
            int main(void) {
                Out o;
                double x;
                initShm();
                o.a.inner = nc->v;
                o.b.inner = 1.0;
                x = o.b.inner;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.errors == []

    def test_array_element_collapse_is_conservative(self):
        """Whole-array granularity (§3.1): taint on one element taints
        the array unit."""
        report = run("""
            int main(void) {
                double buf[4];
                double x;
                initShm();
                buf[0] = nc->v;
                buf[1] = 1.0;
                x = buf[1];
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1  # conservative, matches the paper

    def test_struct_copy_moves_taint(self):
        report = run("""
            typedef struct { double a; double b; } P;
            int main(void) {
                P src;
                P dst;
                double x;
                initShm();
                src.a = nc->v;
                dst = src;
                x = dst.a;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1


class TestMixedFlows:
    def test_taint_through_double_pointer_out_param(self):
        report = run("""
            void locate(double **slot, double *storage) {
                *slot = storage;
            }
            int main(void) {
                double storage;
                double *p;
                double x;
                initShm();
                storage = nc->v;
                locate(&p, &storage);
                x = *p;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_monitored_then_stored_then_loaded_is_safe(self):
        report = run("""
            double holder;
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                double v;
                v = r->v;
                if (v > 5.0 || v < -5.0) return fb;
                return v;
            }
            int main(void) {
                double x;
                initShm();
                holder = mon(nc, 0.0);
                x = holder;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.errors == []

    def test_same_line_reads_are_one_warning(self):
        report = run("""
            R *extra;
            int main(void) {
                double x;
                initShm();
                x = nc->v + nc->arr[0];
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        # warnings deduplicate per static location: one line, one warning
        assert len(report.errors) == 1
        assert len(report.warnings) == 1

    def test_ternary_operator_taint(self):
        report = run("""
            int main(void) {
                double out;
                initShm();
                out = (nc->flag == 1) ? 1.0 : 2.0;
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.CONTROL

    def test_short_circuit_condition_taint(self):
        report = run("""
            int main(void) {
                double out;
                int ready;
                initShm();
                ready = (nc->flag > 0) && (nc->v < 5.0);
                if (ready) out = 1.0; else out = 2.0;
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_multiple_asserts_counted_separately(self):
        report = run("""
            int main(void) {
                double a;
                double b;
                initShm();
                a = nc->v;
                b = nc->v * 2.0;
                /***SafeFlow Annotation assert(safe(a)); /***/
                emit(a);
                /***SafeFlow Annotation assert(safe(b)); /***/
                emit(b);
                return 0;
            }
        """)
        assert len(report.errors) == 2
