"""Phase-3 engine behavior: the operational rules of §2, context
sensitivity, control dependence, memory flow, and the extensions."""

import pytest

from repro.core.config import AnalysisConfig
from repro.reporting import DependencyKind
from tests.conftest import analyze


HEADER = """
typedef struct { double v; int flag; double arr[4]; } R;
R *nc;      /* non-core region */
R *core;    /* core region      */
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 2 * sizeof(R), 0666), 0, 0);
    nc = (R *) cursor;
    core = (R *) (cursor + sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(shmvar(core, sizeof(R)));
        assume(noncore(nc)) /***/
}
"""


def run(body: str, config: AnalysisConfig = None):
    return analyze(HEADER + body, config=config)


class TestOperationalRules:
    def test_unmonitored_noncore_read_is_error(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = nc->v;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.warnings) == 1
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.DATA
        assert not report.passed

    def test_core_region_read_is_safe(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = core->v;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.warnings == []
        assert report.errors == []
        assert report.passed

    def test_monitored_read_is_safe(self):
        report = run("""
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                double v;
                v = r->v;
                if (v > 5.0 || v < -5.0) return fb;
                return v;
            }
            int main(void) {
                double out;
                initShm();
                out = mon(nc, 0.0);
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert report.warnings == []
        assert report.errors == []

    def test_write_does_not_change_noncore_status(self):
        """§2: writes to a shared variable do not change core/noncore —
        the core writing a value it later reads back is still unsafe."""
        report = run("""
            int main(void) {
                double x;
                initShm();
                nc->v = 3.0;          /* core writes a perfectly safe value */
                x = nc->v;            /* ...but the read-back is unsafe     */
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.DATA

    def test_core_region_laundering_caught(self):
        """Storing an unsafe value into a *core* region and reading it
        back must not wash the taint away."""
        report = run("""
            int main(void) {
                double x;
                double y;
                initShm();
                x = nc->v;
                core->v = x;
                y = core->v;
                /***SafeFlow Annotation assert(safe(y)); /***/
                emit(y);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_arithmetic_propagates_taint(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = 2.0 * nc->v + 1.0;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_safe_computation_passes(self):
        report = run("""
            double helper(double a) { return a * 2.0 + 1.0; }
            int main(void) {
                double x;
                initShm();
                x = helper(3.0);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.passed


class TestContextSensitivity:
    SHARED_HELPER = """
        double raw(R *r) { return r->v; }
        double mon(R *r, double fb)
        /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
        {
            double v;
            v = raw(r);             /* monitored: assume flows to callee */
            if (v > 5.0 || v < -5.0) return fb;
            return v;
        }
        int main(void) {
            double a;
            double b;
            initShm();
            a = mon(nc, 0.0);
            /***SafeFlow Annotation assert(safe(a)); /***/
            emit(a);
            b = raw(nc);            /* same helper, unmonitored context */
            /***SafeFlow Annotation assert(safe(b)); /***/
            emit(b);
            return 0;
        }
    """

    def test_assume_flows_to_callees(self):
        report = run(self.SHARED_HELPER)
        failing = {e.variable for e in report.errors}
        assert failing == {"b"}

    def test_warning_only_for_unmonitored_context(self):
        report = run(self.SHARED_HELPER)
        assert len(report.warnings) == 1
        assert report.warnings[0].function == "raw"

    def test_context_insensitive_merges_conservatively(self):
        config = AnalysisConfig(context_sensitive=False)
        report = run(self.SHARED_HELPER, config)
        failing = {e.variable for e in report.errors}
        # merged context must not assume core (intersection): both fail
        assert "b" in failing and "a" in failing

    def test_contexts_counted(self):
        report = run(self.SHARED_HELPER)
        assert report.stats.contexts_analyzed >= 4


class TestControlDependence:
    CONTROL = """
        int main(void) {
            double out;
            int sel;
            initShm();
            sel = nc->flag;
            if (sel == 1) out = 1.0; else out = 2.0;
            /***SafeFlow Annotation assert(safe(out)); /***/
            emit(out);
            return 0;
        }
    """

    def test_control_dependence_reported_as_candidate_fp(self):
        report = run(self.CONTROL)
        assert len(report.errors) == 1
        error = report.errors[0]
        assert error.kind is DependencyKind.CONTROL
        assert error.candidate_false_positive
        assert report.confirmed_errors == []
        assert len(report.candidate_false_positives) == 1

    def test_triage_can_be_disabled(self):
        config = AnalysisConfig(triage_control_dependence=False)
        report = run(self.CONTROL, config)
        assert len(report.confirmed_errors) == 1

    def test_control_tracking_can_be_disabled(self):
        config = AnalysisConfig(track_control_dependence=False)
        report = run(self.CONTROL, config)
        assert report.errors == []
        # the warning remains either way
        assert len(report.warnings) == 1

    def test_control_through_returns(self):
        report = run("""
            int check(void) {
                if (nc->flag == 1) return 0;
                return 1;
            }
            int main(void) {
                double out;
                initShm();
                if (check()) out = 1.0; else out = 2.0;
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.CONTROL

    def test_data_beats_control_in_kind(self):
        report = run("""
            int main(void) {
                double out;
                initShm();
                if (nc->flag) out = nc->v; else out = 0.0;
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert report.errors[0].kind is DependencyKind.BOTH
        assert not report.errors[0].candidate_false_positive


class TestMemoryFlow:
    def test_out_parameter_flow(self):
        report = run("""
            void compute(double *out) { *out = nc->v; }
            int main(void) {
                double x;
                initShm();
                compute(&x);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_struct_fields_do_not_cross_taint(self):
        report = run("""
            typedef struct { double hot; double cold; } Pair;
            int main(void) {
                Pair p;
                double x;
                initShm();
                p.hot = nc->v;
                p.cold = 1.0;
                x = p.cold;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.errors == []

    def test_global_cell_flow(self):
        report = run("""
            double stash;
            void save(void) { stash = nc->v; }
            int main(void) {
                double x;
                initShm();
                save();
                x = stash;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_memcpy_from_region_taints_destination(self):
        report = run("""
            int main(void) {
                double local[4];
                double x;
                initShm();
                memcpy(local, nc->arr, 4 * sizeof(double));
                x = local[0];
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1

    def test_return_value_flow(self):
        report = run("""
            double fetch(void) { return nc->v; }
            int main(void) {
                double x;
                initShm();
                x = fetch();
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1


class TestImplicitCriticalCalls:
    def test_kill_pid_checked(self):
        report = run("""
            int main(void) {
                int pid;
                initShm();
                pid = nc->flag;
                if (pid > 1) kill(pid, 9);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert "kill" in report.errors[0].variable

    def test_kill_with_safe_pid_passes(self):
        report = run("""
            int main(void) {
                initShm();
                kill(getpid(), 9);
                return 0;
            }
        """)
        assert report.errors == []


class TestMessagePassingExtension:
    RECV = """
        int noncoreSock;
        double parse(char *buf);
        int main(void)
        /***SafeFlow Annotation assume(noncore(noncoreSock)) /***/
        {
            char buf[64];
            double x;
            initShm();
            recv(noncoreSock, buf, 64, 0);
            x = parse(buf);
            /***SafeFlow Annotation assert(safe(x)); /***/
            emit(x);
            return 0;
        }
    """

    def test_recv_from_noncore_socket_taints(self):
        report = run(self.RECV)
        assert len(report.errors) == 1
        assert "socket" in report.errors[0].message

    def test_extension_can_be_disabled(self):
        config = AnalysisConfig(message_passing_extension=False)
        report = run(self.RECV, config)
        assert report.errors == []

    def test_unannotated_socket_is_core(self):
        report = run("""
            int coreSock;
            double parse(char *buf);
            int main(void)
            {
                char buf[64];
                double x;
                initShm();
                recv(coreSock, buf, 64, 0);
                x = parse(buf);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.errors == []


class TestWarningAccounting:
    def test_distinct_lines_distinct_warnings(self):
        report = run("""
            int main(void) {
                double a;
                double b;
                initShm();
                a = nc->v;
                b = nc->v;
                emit(a + b);
                return 0;
            }
        """)
        assert len(report.warnings) == 2

    def test_same_site_deduplicated_across_contexts(self):
        report = run("""
            double raw(R *r) { return r->v; }
            int main(void) {
                initShm();
                emit(raw(nc));
                emit(raw(nc));
                return 0;
            }
        """)
        assert len(report.warnings) == 1

    def test_warning_names_region_and_function(self):
        report = run("""
            double peek(void) { return nc->v; }
            int main(void) { initShm(); emit(peek()); return 0; }
        """)
        warning = report.warnings[0]
        assert warning.region == "nc"
        assert warning.function == "peek"


class TestWitnesses:
    def test_error_carries_witness_path(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = nc->v;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        error = report.errors[0]
        assert error.witness
        assert any("noncore read" in step for step in error.witness)
        assert "assert safe(x)" in error.witness[-1]

    def test_witness_graph_exported_as_dot(self):
        report = run("""
            int main(void) {
                double x;
                initShm();
                x = nc->v;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert 0 in report.witness_graphs
        assert "digraph" in report.witness_graphs[0]
