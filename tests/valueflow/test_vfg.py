"""Value flow graph: provenance edges, witness paths, DOT export."""

from repro.valueflow import ValueFlowGraph, VFGNode


def node(kind, label):
    return VFGNode(kind, label, "")


class TestWitnessPaths:
    def test_direct_edge(self):
        g = ValueFlowGraph()
        s, t = node("source", "read"), node("sink", "assert")
        g.add_edge(s, t)
        path = g.witness_path(t)
        assert path[0] == s and path[-1] == t

    def test_multi_hop_path(self):
        g = ValueFlowGraph()
        s = node("source", "read")
        v1, v2 = node("value", "v1"), node("value", "v2")
        t = node("sink", "assert")
        g.add_edge(s, v1)
        g.add_edge(v1, v2)
        g.add_edge(v2, t)
        path = g.witness_path(t)
        assert [n.label for n in path] == ["read", "v1", "v2", "assert"]

    def test_shortest_source_preferred(self):
        g = ValueFlowGraph()
        near = node("source", "near")
        far = node("source", "far")
        mid = node("value", "mid")
        t = node("sink", "assert")
        g.add_edge(far, mid)
        g.add_edge(mid, t)
        g.add_edge(near, t)
        path = g.witness_path(t)
        assert path[0] == near
        assert len(path) == 2

    def test_sink_without_sources(self):
        g = ValueFlowGraph()
        t = node("sink", "assert")
        g.add_edge(node("value", "v"), t)
        path = g.witness_path(t)
        assert path[-1] == t

    def test_unknown_sink_returns_itself(self):
        g = ValueFlowGraph()
        t = node("sink", "assert")
        assert g.witness_path(t) == [t]

    def test_cycle_terminates(self):
        g = ValueFlowGraph()
        a, b = node("value", "a"), node("value", "b")
        t = node("sink", "assert")
        g.add_edge(a, b)
        g.add_edge(b, a)
        g.add_edge(b, t)
        path = g.witness_path(t)
        assert path[-1] == t

    def test_self_edge_ignored(self):
        g = ValueFlowGraph()
        a = node("value", "a")
        g.add_edge(a, a)
        assert a not in g.edges


class TestDot:
    def test_dot_contains_nodes_and_edges(self):
        g = ValueFlowGraph()
        s, t = node("source", "read r"), node("sink", "assert x")
        g.add_edge(s, t, "data")
        dot = g.to_dot("demo")
        assert "digraph" in dot
        assert "read r" in dot and "assert x" in dot
        assert "->" in dot

    def test_control_edges_dashed(self):
        g = ValueFlowGraph()
        g.add_edge(node("value", "cond"), node("value", "phi"), "control")
        assert "dashed" in g.to_dot()

    def test_node_count(self):
        g = ValueFlowGraph()
        g.add_edge(node("value", "a"), node("value", "b"))
        g.add_edge(node("value", "b"), node("value", "c"))
        assert g.node_count == 3
