"""ESP-style function summaries (§3.3 last paragraph).

Summary mode must produce byte-identical diagnoses while analyzing
shared helpers once per assumed-core context instead of once per
argument-taint combination.
"""

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.corpus import SYSTEM_KEYS, generate_core, load_system
from repro.corpus.running_example import RUNNING_EXAMPLE
from tests.conftest import analyze


def summary_config(**kwargs) -> AnalysisConfig:
    return AnalysisConfig(summary_mode=True, **kwargs)


HEADER = """
typedef struct { double v; int flag; } R;
R *r0;
R *r1;
R *r2;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 3 * sizeof(R), 0666), 0, 0);
    r0 = (R *) cursor;
    r1 = (R *) (cursor + sizeof(R));
    r2 = (R *) (cursor + 2 * sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(r0, sizeof(R)));
        assume(shmvar(r1, sizeof(R)));
        assume(shmvar(r2, sizeof(R)));
        assume(noncore(r0));
        assume(noncore(r1));
        assume(noncore(r2)) /***/
}
"""

MANY_COMBINATIONS = HEADER + """
    double mix(double a, double b) { return 0.5 * a + 0.25 * b; }
    int main(void) {
        double x0; double x1; double x2;
        double a; double b; double c; double d;
        initShm();
        x0 = r0->v;
        x1 = r1->v;
        x2 = r2->v;
        a = mix(x0, x1);
        b = mix(x1, x2);
        c = mix(x2, x0);
        d = mix(1.0, 2.0);
        /***SafeFlow Annotation assert(safe(a)); /***/
        /***SafeFlow Annotation assert(safe(d)); /***/
        emit(a + b + c + d);
        return 0;
    }
"""


class TestEquivalence:
    def test_per_site_precision_preserved(self):
        """`d = mix(1.0, 2.0)` must stay safe even though other call
        sites pass tainted arguments — the test a naive merged summary
        fails."""
        report = analyze(MANY_COMBINATIONS, summary_config())
        failing = {e.variable for e in report.errors}
        assert "a" in failing
        assert "d" not in failing

    def test_same_counts_as_reanalysis(self):
        base = analyze(MANY_COMBINATIONS)
        summ = analyze(MANY_COMBINATIONS, summary_config())
        assert base.counts() == summ.counts()

    def test_fewer_helper_analyses(self):
        base = analyze(MANY_COMBINATIONS)
        summ = analyze(MANY_COMBINATIONS, summary_config())
        # base re-analyzes mix() per argument-taint combination (4);
        # summary mode needs at most 2 passes for it
        assert summ.stats.contexts_analyzed < base.stats.contexts_analyzed

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_corpus_reports_identical(self, key):
        system = load_system(key)
        base = system.analyze()
        summ = system.analyze(summary_config())
        assert base.counts() == summ.counts()
        assert {(e.variable, e.message) for e in base.errors} == \
            {(e.variable, e.message) for e in summ.errors}

    def test_running_example_identical(self):
        base = SafeFlow().analyze_source(RUNNING_EXAMPLE)
        summ = SafeFlow(summary_config()).analyze_source(RUNNING_EXAMPLE)
        assert base.counts() == summ.counts()

    def test_generated_chain_identical(self):
        program = generate_core(monitored_regions=2, chain_depth=6,
                                data_error_regions=2, control_fp_regions=1)
        base = SafeFlow().analyze_source(program.source)
        summ = SafeFlow(summary_config()).analyze_source(program.source)
        assert base.counts() == summ.counts()


class TestSummaryMechanics:
    def test_memory_effects_still_flow(self):
        """The effects pass must carry actual taints into cells."""
        source = HEADER + """
            double stash;
            void save(double v) { stash = v; }
            int main(void) {
                double x;
                initShm();
                save(r0->v);
                x = stash;
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """
        report = analyze(source, summary_config())
        assert len(report.errors) == 1

    def test_control_position_demotes_to_control(self):
        source = HEADER + """
            double pick(int sel) {
                if (sel == 1) return 1.0;
                return 2.0;
            }
            int main(void) {
                double out;
                initShm();
                out = pick(r0->flag);
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """
        report = analyze(source, summary_config())
        assert len(report.errors) == 1
        assert report.errors[0].candidate_false_positive

    def test_placeholders_never_reach_reports(self):
        report = analyze(MANY_COMBINATIONS, summary_config())
        for error in report.errors:
            for source in error.sources:
                assert not source.region.startswith("\x00")
        for warning in report.warnings:
            assert not warning.region.startswith("\x00")

    def test_monitored_context_still_safe(self):
        source = HEADER + """
            double raw(R *r) { return r->v; }
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                double v;
                v = raw(r);
                if (v > 5.0 || v < -5.0) return fb;
                return v;
            }
            int main(void) {
                double out;
                initShm();
                out = mon(r0, 0.0);
                /***SafeFlow Annotation assert(safe(out)); /***/
                emit(out);
                return 0;
            }
        """
        report = analyze(source, summary_config())
        assert report.errors == []
        assert report.warnings == []
