"""The vacuous-monitor lint (mitigation of the paper's limitation #2)."""

import pytest

from repro import AnalysisConfig
from tests.conftest import analyze

HEADER = """
typedef struct { double v; int flag; } R;
R *nc;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(noncore(nc)) /***/
}
"""


class TestVacuousMonitors:
    def test_monitor_with_no_checks_flagged(self):
        report = analyze(HEADER + """
            double mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                return r->v;   /* no check whatsoever */
            }
            int main(void) {
                double x;
                initShm();
                x = mon(nc);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.lint_findings) == 1
        assert "monitors nothing" in report.lint_findings[0].message
        # the lint is advisory: value-flow itself still trusts the assume
        assert report.errors == []

    def test_range_checking_monitor_clean(self):
        report = analyze(HEADER + """
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                double v;
                v = r->v;
                if (v > 5.0 || v < -5.0) return fb;
                return v;
            }
            int main(void) {
                double x;
                initShm();
                x = mon(nc, 0.0);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.lint_findings == []

    def test_flag_check_counts_as_monitoring(self):
        report = analyze(HEADER + """
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                if (r->flag == 0) return fb;
                return r->v;
            }
            int main(void) {
                initShm();
                emit(mon(nc, 0.0));
                return 0;
            }
        """)
        assert report.lint_findings == []

    def test_monitor_that_releases_nothing_clean(self):
        report = analyze(HEADER + """
            double mon(R *r, double fb)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                return fb;   /* never uses the region at all */
            }
            int main(void) {
                initShm();
                emit(mon(nc, 0.0));
                return 0;
            }
        """)
        assert report.lint_findings == []

    def test_escape_through_global_flagged(self):
        report = analyze(HEADER + """
            double stash;
            void mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            {
                stash = r->v;   /* unchecked escape via memory */
            }
            int main(void) {
                initShm();
                mon(nc);
                emit(stash);
                return 0;
            }
        """)
        assert len(report.lint_findings) == 1

    def test_lint_can_be_disabled(self):
        report = analyze(HEADER + """
            double mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
            int main(void) { initShm(); emit(mon(nc)); return 0; }
        """, AnalysisConfig(lint_monitors=False))
        assert report.lint_findings == []

    def test_corpus_monitors_all_pass_the_lint(self):
        from repro.corpus import load_all
        for system in load_all():
            report = system.analyze()
            assert report.lint_findings == [], system.key


class TestReadExtension:
    def test_read_from_noncore_descriptor_taints(self):
        report = analyze("""
            int sensorFd;
            void emit(double v);
            int main(void)
            /***SafeFlow Annotation assume(noncore(sensorFd)) /***/
            {
                char buf[16];
                double x;
                read(sensorFd, buf, 16);
                x = atof(buf);
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.errors) == 1
        assert "socket:sensorFd" in report.errors[0].message
