"""Client-side failure classification: retryable server responses are
resubmitted with jittered backoff, everything else raises immediately."""

import pytest

from repro.server import SafeFlowClient, ServerError, protocol
from repro.server import client as client_mod


class _FakeSock:
    def sendall(self, _data):
        pass

    def settimeout(self, _value):
        pass


def _scripted_client(monkeypatch, responses, retries=3):
    """A client whose transport is stubbed out; ``responses`` is a list
    of ServerError (raised) or payloads (returned), one per attempt."""
    client = SafeFlowClient(port=1, retries=retries, backoff=0.001)
    client._sock = _FakeSock()
    monkeypatch.setattr(client, "connect", lambda: None)
    monkeypatch.setattr(client, "close", lambda: None)
    attempts = []

    def read_response(_req_id, _timeout):
        attempts.append(1)
        outcome = responses[min(len(attempts) - 1, len(responses) - 1)]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    monkeypatch.setattr(client, "_read_response", read_response)
    sleeps = []
    monkeypatch.setattr(client, "_backoff_sleep",
                        lambda attempt: sleeps.append(attempt))
    return client, attempts, sleeps


class TestClassification:
    @pytest.mark.parametrize("code,expected", [
        (protocol.QUEUE_FULL, True),
        (protocol.WORKER_CRASHED, False),
        (protocol.ANALYSIS_FAILED, False),
        (protocol.DEADLINE_EXCEEDED, False),
        (protocol.RESOURCE_EXHAUSTED, False),
        (protocol.CANCELLED, False),
        (protocol.INVALID_REQUEST, False),
    ])
    def test_retryable_matches_protocol_table(self, code, expected):
        assert ServerError(code, "x").retryable is expected

    def test_retryable_codes_are_a_deliberate_subset(self):
        # resource_exhausted is a property of the input, not of the
        # moment: resubmitting would burn another worker's budget.
        # worker_crashed means the input is already quarantined after
        # killing max_crashes workers: resubmitting would kill more.
        # shed is an explicit overload refusal: blind resubmission is
        # exactly the traffic the brownout is trying to get rid of.
        assert protocol.RESOURCE_EXHAUSTED not in protocol.RETRYABLE_CODES
        assert protocol.WORKER_CRASHED not in protocol.RETRYABLE_CODES
        assert protocol.SHED not in protocol.RETRYABLE_CODES
        assert protocol.RETRYABLE_CODES == frozenset(
            {protocol.QUEUE_FULL, protocol.RATE_LIMITED})

    def test_rate_limited_is_retryable_only_with_a_hint(self):
        bare = ServerError(protocol.RATE_LIMITED, "over quota")
        assert bare.retryable is False
        hinted = ServerError(protocol.RATE_LIMITED, "over quota",
                             data={"retry_after_s": 0.5})
        assert hinted.retryable is True


class TestRetryLoop:
    def test_retryable_response_is_retried_then_succeeds(self, monkeypatch):
        client, attempts, sleeps = _scripted_client(monkeypatch, [
            ServerError(protocol.QUEUE_FULL, "queue full"),
            {"pong": True},
        ])
        assert client.call("ping") == {"pong": True}
        assert len(attempts) == 2
        assert sleeps == [0]  # backed off once, before the resubmit

    def test_non_retryable_response_raises_immediately(self, monkeypatch):
        client, attempts, _ = _scripted_client(monkeypatch, [
            ServerError(protocol.ANALYSIS_FAILED, "parse error"),
        ])
        with pytest.raises(ServerError) as exc:
            client.call("analyze", {"source": "x"})
        assert exc.value.code == protocol.ANALYSIS_FAILED
        assert len(attempts) == 1

    def test_exhausted_retries_raise_the_server_error(self, monkeypatch):
        # the terminal failure is the structured ServerError, not a
        # generic connection failure
        client, attempts, _ = _scripted_client(monkeypatch, [
            ServerError(protocol.QUEUE_FULL, "queue full"),
        ], retries=2)
        with pytest.raises(ServerError) as exc:
            client.call("ping")
        assert exc.value.code == protocol.QUEUE_FULL
        assert len(attempts) == 3

    def test_retries_zero_disables_resubmission(self, monkeypatch):
        client, attempts, _ = _scripted_client(monkeypatch, [
            ServerError(protocol.QUEUE_FULL, "queue full"),
        ], retries=0)
        with pytest.raises(ServerError):
            client.call("ping")
        assert len(attempts) == 1


class TestBackoff:
    def test_backoff_is_exponential_with_bounded_jitter(self, monkeypatch):
        client = SafeFlowClient(port=1, backoff=0.1)
        slept = []
        monkeypatch.setattr(client_mod.time, "sleep", slept.append)
        for attempt in range(3):
            client._backoff_sleep(attempt)
        for attempt, duration in enumerate(slept):
            base = 0.1 * (2 ** attempt)
            assert 0.5 * base <= duration < 1.5 * base
