"""Checksum-framed cache entries: corruption is detected, evicted, and
silently recomputed — never trusted, never fatal."""

import os
import pickle

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.perf.integrity import HEADER_LEN, MAGIC, IntegrityError, seal, unseal
from repro.resilience import faults

from tests.perf.test_cache_correctness import SIMPLE


class TestSealUnseal:
    def test_roundtrip(self):
        payload = b"x" * 1000
        blob = seal(payload)
        assert blob.startswith(MAGIC)
        assert len(blob) == HEADER_LEN + len(payload)
        assert unseal(blob) == payload

    def test_flipped_payload_byte_is_detected(self):
        blob = bytearray(seal(b"hello cache"))
        blob[-1] ^= 0xFF
        with pytest.raises(IntegrityError):
            unseal(bytes(blob))

    def test_flipped_digest_byte_is_detected(self):
        blob = bytearray(seal(b"hello cache"))
        blob[len(MAGIC)] ^= 0xFF
        with pytest.raises(IntegrityError):
            unseal(bytes(blob))

    def test_truncation_is_detected(self):
        blob = seal(b"a longer payload that will be torn")
        with pytest.raises(IntegrityError):
            unseal(blob[: len(blob) // 2])

    def test_legacy_unframed_entry_is_rejected(self):
        # entries written before the checksum frame are raw pickles:
        # no magic, so they fail closed and get recomputed
        with pytest.raises(IntegrityError):
            unseal(pickle.dumps({"legacy": True}))


class TestIRCacheSelfHeal:
    def _config(self, tmp_path):
        # memo off: these tests corrupt the *disk* tier and assert its
        # self-healing, which an in-memory program hit would mask
        return AnalysisConfig(cache_dir=str(tmp_path / "cache"),
                              frontend_memo=False)

    def test_corrupt_entry_is_evicted_and_recomputed(self, tmp_path):
        config = self._config(tmp_path)
        cold = SafeFlow(config).analyze_source(SIMPLE)
        assert cold.stats.cache_integrity_evictions == 0

        assert faults.corrupt_ir_entry(config.cache_dir) is not None
        healed = SafeFlow(config).analyze_source(SIMPLE)
        assert healed.render(verbose=True) == cold.render(verbose=True)
        assert healed.stats.cache_integrity_evictions >= 1
        assert healed.stats.frontend_cache_hits == 0

        # the eviction rewrote the entry: the next run hits again
        warm = SafeFlow(config).analyze_source(SIMPLE)
        assert warm.render(verbose=True) == cold.render(verbose=True)
        assert warm.stats.frontend_cache_hits >= 1
        assert warm.stats.cache_integrity_evictions == 0

    def test_truncated_entry_is_evicted_and_recomputed(self, tmp_path):
        config = self._config(tmp_path)
        cold = SafeFlow(config).analyze_source(SIMPLE)
        assert faults.truncate_ir_entry(config.cache_dir) is not None
        healed = SafeFlow(config).analyze_source(SIMPLE)
        assert healed.render(verbose=True) == cold.render(verbose=True)
        assert healed.stats.cache_integrity_evictions >= 1

    def test_legacy_raw_pickle_entry_is_evicted(self, tmp_path):
        config = self._config(tmp_path)
        cold = SafeFlow(config).analyze_source(SIMPLE)
        ir_dir = os.path.join(config.cache_dir, "ir")
        names = [n for n in os.listdir(ir_dir) if n.endswith(".pkl")]
        assert names
        path = os.path.join(ir_dir, names[0])
        with open(path, "rb") as f:
            payload = unseal(f.read())
        with open(path, "wb") as f:
            f.write(payload)  # strip the frame: pre-upgrade entry
        healed = SafeFlow(config).analyze_source(SIMPLE)
        assert healed.render(verbose=True) == cold.render(verbose=True)
        assert healed.stats.cache_integrity_evictions >= 1


class TestSummaryStoreSelfHeal:
    def test_torn_store_is_evicted_and_recomputed(self, tmp_path):
        config = AnalysisConfig(
            summary_mode=True, cache_dir=str(tmp_path / "cache"))
        cold = SafeFlow(config).analyze_source(SIMPLE)
        assert faults.tear_summary_store(config.cache_dir) is not None
        healed = SafeFlow(config).analyze_source(SIMPLE)
        assert healed.render(verbose=True) == cold.render(verbose=True)
        assert healed.stats.cache_integrity_evictions >= 1
        assert healed.stats.summary_cache_hits == 0

        # the store heals: a further run replays summaries again
        warm = SafeFlow(config).analyze_source(SIMPLE)
        assert warm.render(verbose=True) == cold.render(verbose=True)
        assert warm.stats.summary_cache_hits >= 1
