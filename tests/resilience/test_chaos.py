"""The chaos harness's own contract: a schedule run produces a
structured outcome whose byte-identity assertions actually executed.

Only the cheapest schedule runs here — the full matrix is the CI
chaos job (``safeflow chaos --smoke``) and ``safeflow chaos``."""

from repro.resilience.chaos import SCHEDULES, SMOKE_SCHEDULES, run_chaos


def test_smoke_schedules_are_a_subset():
    assert set(SMOKE_SCHEDULES) <= set(SCHEDULES)


def test_kill_resume_schedule_is_registered():
    # the durability schedule must run in CI smoke: it is the only
    # coverage of a SIGKILLed batch *driver* (not worker) resuming
    assert "kill-resume" in SCHEDULES
    assert "kill-resume" in SMOKE_SCHEDULES


def test_corrupt_ir_schedule_passes_and_reports():
    outcome = run_chaos(schedules=["corrupt-ir"], jobs=2, workers=1)
    assert outcome.ok
    assert [s.name for s in outcome.schedules] == ["corrupt-ir"]
    report = outcome.schedules[0]
    assert report.passed and not report.skipped
    assert any("eviction" in note for note in report.notes)
    payload = outcome.to_json()
    assert payload["ok"] is True
    assert payload["schedules"][0]["name"] == "corrupt-ir"
    rendered = outcome.render()
    assert "corrupt-ir" in rendered and "PASS" in rendered


def test_unknown_schedule_is_rejected():
    import pytest

    with pytest.raises(ValueError):
        run_chaos(schedules=["no-such-schedule"])
