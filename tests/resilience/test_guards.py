"""Resource-guard units: the cooperative deadline and the guard
record itself (the rlimit syscalls only ever run inside sacrificial
worker processes and are exercised end to end by the chaos harness)."""

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.errors import ResourceExhaustedError
from repro.resilience import ResourceGuards, check_deadline, deadline_scope
from repro.resilience.guards import clear_deadline, set_deadline

from tests.perf.test_cache_correctness import SIMPLE


class TestDeadline:
    def test_unarmed_is_a_noop(self):
        clear_deadline()
        check_deadline()  # must not raise

    def test_expired_deadline_raises(self):
        set_deadline(0.0)
        try:
            with pytest.raises(ResourceExhaustedError) as exc:
                check_deadline()
            assert exc.value.kind == "deadline"
        finally:
            clear_deadline()

    def test_scope_restores_previous_deadline(self):
        clear_deadline()
        with deadline_scope(1000.0):
            with deadline_scope(None):
                check_deadline()
            check_deadline()  # outer deadline restored, far away
        check_deadline()  # disarmed again

    def test_analysis_honors_the_deadline(self):
        # the value-flow fixpoint checks the budget; an expired
        # deadline aborts the analysis with a structured error instead
        # of running to completion
        with deadline_scope(0.0):
            with pytest.raises(ResourceExhaustedError) as exc:
                SafeFlow(AnalysisConfig()).analyze_source(SIMPLE)
        assert exc.value.kind == "deadline"


class TestResourceGuards:
    def test_tuple_roundtrip(self):
        guards = ResourceGuards(cpu_seconds=30, rss_bytes=1 << 30,
                                deadline_seconds=5.0)
        assert ResourceGuards.from_tuple(guards.to_tuple()) == guards

    def test_with_deadline_keeps_the_tighter_budget(self):
        loose = ResourceGuards(deadline_seconds=60.0)
        assert loose.with_deadline(5.0).deadline_seconds == 5.0
        tight = ResourceGuards(deadline_seconds=2.0)
        assert tight.with_deadline(5.0).deadline_seconds == 2.0
        assert tight.with_deadline(None) is tight

    def test_has_rlimits(self):
        assert not ResourceGuards().has_rlimits()
        assert not ResourceGuards(deadline_seconds=1.0).has_rlimits()
        assert ResourceGuards(cpu_seconds=1).has_rlimits()
        assert ResourceGuards(rss_bytes=1).has_rlimits()
