"""Daemon-side crash isolation: a worker death is invisible to the
client whose request survives it, poisoned requests are quarantined,
and the daemon itself never dies."""

import os

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.perf.batch import resolve_mp_context
from repro.server import SafeFlowClient, SafeFlowServer, ServerError, protocol
from repro.resilience import faults
from repro.resilience.faults import FaultPlan

from tests.perf.test_cache_correctness import SIMPLE

needs_pool = pytest.mark.skipif(
    resolve_mp_context() is None,
    reason="no multiprocessing context on this platform",
)


def _start_server(tmp_path, **kwargs):
    kwargs.setdefault("config", AnalysisConfig(
        cache_dir=str(tmp_path / "cache")))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_size", 8)
    server = SafeFlowServer(port=0, **kwargs)
    server.start()
    return server


def _client(server, **kwargs):
    kwargs.setdefault("request_timeout", 60.0)
    return SafeFlowClient(port=server.address[1], **kwargs)


def _require_processes(server):
    if server.pool.mode != "processes":
        server.stop()
        pytest.skip("server fell back to in-process execution")


@needs_pool
class TestServerCrashIsolation:
    def test_request_survives_its_workers_death(self, tmp_path):
        # the plan must be in the environment before the pool forks
        plan = FaultPlan(kill_job="victim",
                         latch_dir=str(tmp_path / "latch"))
        with faults.activate(plan):
            server = _start_server(tmp_path)
            try:
                _require_processes(server)
                with _client(server) as client:
                    result = client.analyze(source=SIMPLE, name="victim")
                    health = client.health()
                    metrics = client.metrics()
            finally:
                server.stop()
        direct = SafeFlow(AnalysisConfig()).analyze_source(
            SIMPLE, name="victim")
        assert result["render"] == direct.render()
        assert health["worker_restarts"] >= 1
        assert metrics["resilience"]["jobs_resubmitted"] >= 1
        assert metrics["resilience"]["worker_restarts"] >= 1
        # the daemon itself never died
        assert health["pid"] == os.getpid()

    def test_poisoned_request_is_quarantined_daemon_survives(self, tmp_path):
        plan = FaultPlan(kill_job="poison", kill_always=True)
        with faults.activate(plan):
            server = _start_server(tmp_path, max_crashes=2)
            try:
                _require_processes(server)
                # worker_crashed is non-retryable: even a client left
                # at its default retry budget raises the quarantine
                # verdict immediately instead of resubmitting a known
                # worker-killer
                with _client(server) as client:
                    with pytest.raises(ServerError) as exc:
                        client.analyze(source=SIMPLE, name="poison")
                    assert exc.value.code == protocol.WORKER_CRASHED
                    assert not exc.value.retryable
                    assert exc.value.data.get("crashes") == 2
                    restarts = client.metrics()[
                        "resilience"]["worker_restarts"]
                    # an explicit resubmission of the quarantined spec
                    # fails fast: no worker is fed to it, so no
                    # further pool break / restart
                    with pytest.raises(ServerError) as again:
                        client.analyze(source=SIMPLE, name="poison")
                    assert again.value.code == protocol.WORKER_CRASHED
                    # the very next request on the same daemon succeeds
                    clean = client.analyze(source=SIMPLE, name="clean")
                    metrics = client.metrics()
            finally:
                server.stop()
        direct = SafeFlow(AnalysisConfig()).analyze_source(
            SIMPLE, name="clean")
        assert clean["render"] == direct.render()
        assert metrics["resilience"]["worker_restarts"] == restarts
        assert metrics["resilience"]["jobs_quarantined"] >= 2
        assert metrics["analyses"]["worker_crashed"] >= 2


class TestDegradedResultMapping:
    def test_resource_exhausted_is_not_retried(self, tmp_path):
        # boom (the deterministic RLIMIT_AS stand-in) must surface as
        # the non-retryable resource_exhausted error even through the
        # in-process fallback pool
        plan = FaultPlan(boom_job="hog", kill_always=True)
        with faults.activate(plan):
            server = _start_server(tmp_path, use_processes=False)
            try:
                with _client(server) as client:
                    with pytest.raises(ServerError) as exc:
                        client.analyze(source=SIMPLE, name="hog")
            finally:
                server.stop()
        assert exc.value.code == protocol.RESOURCE_EXHAUSTED
        assert not exc.value.retryable

    def test_protocol_names_cover_the_new_codes(self):
        assert protocol.error_name(protocol.WORKER_CRASHED) == (
            "worker_crashed")
        assert protocol.error_name(protocol.RESOURCE_EXHAUSTED) == (
            "resource_exhausted")
