"""Crash supervision in the batch driver: pool rebuilds, quarantine,
per-job durations, and resource-guard degradation."""

import time

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.perf.batch import BatchJob, resolve_mp_context, run_batch
from repro.resilience import SupervisedExecutor, faults
from repro.resilience.faults import FaultPlan

from tests.perf.test_cache_correctness import SIMPLE

needs_pool = pytest.mark.skipif(
    resolve_mp_context() is None,
    reason="no multiprocessing context on this platform",
)


def _write_jobs(tmp_path, count=4):
    jobs = []
    for i in range(count):
        path = tmp_path / f"prog{i}.c"
        path.write_text(SIMPLE.replace("a * 2.0", f"a * {i + 2}.0"))
        jobs.append(BatchJob(name=f"prog{i}", files=(str(path),)))
    return jobs


def _baseline(jobs):
    flow = SafeFlow(AnalysisConfig())
    return {
        job.name: flow.analyze_files(list(job.files),
                                     name=job.name).render()
        for job in jobs
    }


@needs_pool
class TestCrashRecovery:
    def test_one_killed_worker_costs_nothing(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        baseline = _baseline(jobs)
        plan = FaultPlan(kill_job="prog1",
                         latch_dir=str(tmp_path / "latch"))
        with faults.activate(plan):
            outcome = run_batch(jobs, AnalysisConfig(), max_workers=2)
        assert outcome.ok
        assert outcome.worker_restarts >= 1
        assert outcome.quarantined == []
        for result in outcome.results:
            assert result.report.render() == baseline[result.name]

    def test_poisoned_job_is_quarantined(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        baseline = _baseline(jobs)
        plan = FaultPlan(kill_job="prog1", kill_always=True)
        with faults.activate(plan):
            outcome = run_batch(jobs, AnalysisConfig(), max_workers=2)
        assert not outcome.ok
        assert outcome.quarantined == ["prog1"]
        by_name = {r.name: r for r in outcome.results}
        assert by_name["prog1"].code == "worker_crashed"
        assert by_name["prog1"].report is None
        # innocent siblings all complete, byte-identical
        for name, result in by_name.items():
            if name != "prog1":
                assert result.ok
                assert result.report.render() == baseline[name]

    def test_quarantine_threshold_is_configurable(self, tmp_path):
        jobs = _write_jobs(tmp_path, count=2)
        plan = FaultPlan(kill_job="prog0", kill_always=True)
        with faults.activate(plan):
            outcome = run_batch(jobs, AnalysisConfig(), max_workers=2,
                                max_crashes=1)
        by_name = {r.name: r for r in outcome.results}
        assert by_name["prog0"].code == "worker_crashed"
        assert "1 time" in by_name["prog0"].error


@needs_pool
class TestDurations:
    def test_timeout_duration_is_per_job_not_per_batch(self, tmp_path):
        # prog1 stalls; its timeout duration must reflect its OWN
        # runtime, not the whole batch's elapsed wall-clock
        jobs = _write_jobs(tmp_path, count=3)
        plan = FaultPlan(slow_job="prog1", slow_seconds=5.0)
        with faults.activate(plan):
            outcome = run_batch(jobs, AnalysisConfig(), max_workers=2,
                                timeout=0.5)
        by_name = {r.name: r for r in outcome.results}
        straggler = by_name["prog1"]
        assert not straggler.ok
        assert straggler.code == "timeout"
        assert "timed out" in straggler.error
        assert 0.4 <= straggler.duration < 3.0
        for name in ("prog0", "prog2"):
            assert by_name[name].ok
            # a completed job's duration is its own, bounded well
            # below the straggler-dominated batch wall time
            assert by_name[name].duration < 3.0

    def test_successful_job_duration_is_positive(self, tmp_path):
        jobs = _write_jobs(tmp_path, count=2)
        outcome = run_batch(jobs, AnalysisConfig(), max_workers=2)
        assert outcome.ok
        for result in outcome.results:
            assert 0.0 < result.duration <= outcome.wall_time + 0.5


class TestResourceGuards:
    def test_boom_degrades_into_resource_exhausted(self, tmp_path):
        # the boom fault raises MemoryError exactly where a breached
        # RLIMIT_AS would; sequential path exercises the mapping
        jobs = _write_jobs(tmp_path, count=2)
        plan = FaultPlan(boom_job="prog0", kill_always=True)
        with faults.activate(plan):
            outcome = run_batch(jobs, AnalysisConfig(), max_workers=1)
        by_name = {r.name: r for r in outcome.results}
        assert by_name["prog0"].code == "resource_exhausted"
        assert "resource exhausted" in by_name["prog0"].error
        assert by_name["prog1"].ok

    def test_worker_deadline_degrades_into_timeout(self, tmp_path):
        # sequential path: the per-job timeout arms the in-analysis
        # deadline, which the fixpoint honors cooperatively
        jobs = _write_jobs(tmp_path, count=1)
        outcome = run_batch(jobs, AnalysisConfig(), max_workers=1,
                            timeout=0.0)
        result = outcome.results[0]
        assert not result.ok
        assert result.code == "timeout"
        assert "timed out" in result.error


class TestSupervisedExecutor:
    @needs_pool
    def test_exactly_one_rebuild_per_generation(self):
        executor = SupervisedExecutor(max_workers=1)
        try:
            assert executor.available
            generation, _future = executor.submit(time.sleep, 0)
            assert executor.notify_broken(generation) is True
            # a second observer of the SAME break must not rebuild again
            assert executor.notify_broken(generation) is False
            assert executor.restarts == 1
            assert executor.available
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    @needs_pool
    def test_submit_after_shutdown_raises(self):
        executor = SupervisedExecutor(max_workers=1)
        executor.shutdown(wait=False)
        with pytest.raises(RuntimeError):
            executor.submit(time.sleep, 0)
