"""``--recover`` through the CLI: flag parsing, batch exit codes, and
the recovery block of ``--stats``.

The exit-code contract under test (documented in ``repro.cli``):
0 = everything certified, 1 = findings or a mix of verdicts, 2 = tool
failure *or* — under ``--keep-going``/``--recover`` — a batch where
nothing was certified because every job's verdict is degraded.
"""

import json

import pytest

from repro.cli import main as cli_main

GNU = "int __attribute__((noinline)) f(int a) { return a + a; }\n"
CLEAN = "int g(int a) { return a - 1; }\n"
HOPELESS = "int f(void) {{ %% \"unterminated\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestAnalyzeRecover:
    def test_recovered_analyze_reports_degraded(self, tmp_path, capsys):
        path = _write(tmp_path, "gnu.c", GNU)
        rc = cli_main(["analyze", path, "--recover", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "degraded"
        assert payload["stats"]["recovered_units"] == 1
        assert payload["stats"]["recovery_successes"] == {"gnu": 1}
        assert rc != 0  # a salvaged unit is never certified

    def test_recover_accepts_tier_subset(self, tmp_path, capsys):
        path = _write(tmp_path, "gnu.c", GNU)
        rc = cli_main(["analyze", path, "--recover", "gnu", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "degraded"
        assert rc != 0

    def test_recover_rejects_unknown_tier(self, tmp_path, capsys):
        path = _write(tmp_path, "gnu.c", GNU)
        rc = cli_main(["analyze", path, "--recover", "nope"])
        assert rc == 2
        assert "nope" in capsys.readouterr().err

    def test_stats_renders_recovery_block(self, tmp_path, capsys):
        path = _write(tmp_path, "gnu.c", GNU)
        cli_main(["analyze", path, "--recover", "--stats"])
        out = capsys.readouterr().out
        assert "recovered units" in out
        assert "tier gnu" in out

    def test_stats_silent_without_recover(self, tmp_path, capsys):
        path = _write(tmp_path, "clean.c", CLEAN)
        cli_main(["analyze", path, "--stats"])
        assert "recovered units" not in capsys.readouterr().out


class TestBatchExitCodes:
    def test_all_certified_exit_zero(self, tmp_path, capsys):
        a = _write(tmp_path, "a.c", CLEAN)
        b = _write(tmp_path, "b.c", "int h(void) { return 2; }\n")
        assert cli_main(["batch", a, b, "--recover"]) == 0

    def test_mixed_verdicts_exit_one(self, tmp_path, capsys):
        clean = _write(tmp_path, "clean.c", CLEAN)
        gnu = _write(tmp_path, "gnu.c", GNU)
        assert cli_main(["batch", clean, gnu, "--recover"]) == 1

    def test_nothing_certified_exit_two(self, tmp_path, capsys):
        gnu = _write(tmp_path, "gnu.c", GNU)
        lost = _write(tmp_path, "blob.c", HOPELESS)
        rc = cli_main(["batch", gnu, lost, "--recover"])
        assert rc == 2
        assert "nothing certified" in capsys.readouterr().err

    def test_nothing_certified_applies_to_keep_going(self, tmp_path,
                                                     capsys):
        lost = _write(tmp_path, "blob.c", HOPELESS)
        assert cli_main(["batch", lost, "--keep-going"]) == 2

    def test_strict_batch_unchanged_by_contract(self, tmp_path, capsys):
        # without --keep-going/--recover a frontend failure is still a
        # tool failure, not a fail-closed skip
        lost = _write(tmp_path, "blob.c", HOPELESS)
        clean = _write(tmp_path, "clean.c", CLEAN)
        assert cli_main(["batch", lost, clean]) == 2

    def test_batch_stats_aggregates_tiers(self, tmp_path, capsys):
        clean = _write(tmp_path, "clean.c", CLEAN)
        gnu = _write(tmp_path, "gnu.c", GNU)
        cli_main(["batch", clean, gnu, "--recover", "--stats"])
        out = capsys.readouterr().out
        assert "recovered units     : 1" in out
        assert "tier strict" in out and "tier gnu" in out

    def test_batch_json_carries_recovery_stats(self, tmp_path, capsys):
        gnu = _write(tmp_path, "gnu.c", GNU)
        cli_main(["batch", gnu, "--recover", "--json"])
        payload = json.loads(capsys.readouterr().out)
        (job,) = payload["jobs"]
        assert job["report"]["stats"]["recovered_units"] == 1
