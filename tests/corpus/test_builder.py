"""The synthetic program generator must produce its promised diagnosis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SafeFlow
from repro.corpus import generate_core


def analyze_generated(program):
    return SafeFlow().analyze_source(program.source, name="generated")


class TestDefaults:
    def test_default_program_analyzes_clean(self):
        program = generate_core()
        report = analyze_generated(program)
        assert report.violations == []
        assert len(report.warnings) == program.expected_warnings
        assert len(report.confirmed_errors) == program.expected_errors
        assert len(report.candidate_false_positives) == \
            program.expected_false_positives

    def test_monitored_only_program_passes(self):
        program = generate_core(data_error_regions=0, control_fp_regions=0,
                                benign_read_regions=0, monitored_regions=3)
        report = analyze_generated(program)
        assert report.passed
        assert report.warnings == []

    def test_zero_regions_rejected(self):
        with pytest.raises(ValueError):
            generate_core(data_error_regions=0, control_fp_regions=0,
                          benign_read_regions=0, monitored_regions=0)

    def test_filler_functions_scale_loc(self):
        small = generate_core()
        big = generate_core(filler_functions=30)
        assert big.loc > small.loc + 100

    def test_chain_depth_adds_monitors(self):
        program = generate_core(chain_depth=4)
        report = analyze_generated(program)
        assert report.violations == []
        assert len(report.confirmed_errors) == program.expected_errors


class TestGeneratedDiagnosisProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        data=st.integers(0, 3),
        control=st.integers(0, 3),
        benign=st.integers(0, 3),
        monitored=st.integers(0, 2),
    )
    def test_counts_always_match_prediction(self, data, control, benign,
                                            monitored):
        if data + control + benign + monitored == 0:
            return
        program = generate_core(
            data_error_regions=data,
            control_fp_regions=control,
            benign_read_regions=benign,
            monitored_regions=monitored,
        )
        report = analyze_generated(program)
        assert len(report.warnings) == program.expected_warnings
        assert len(report.confirmed_errors) == program.expected_errors
        assert len(report.candidate_false_positives) == \
            program.expected_false_positives
        assert report.violations == []
