"""The Table-1 corpus: every row must reproduce the paper's counts and
error classes."""

import pytest

from repro.corpus import SYSTEM_KEYS, load_all, load_system
from repro.errors import CorpusError
from repro.reporting import DependencyKind


@pytest.fixture(scope="module")
def reports():
    return {key: (load_system(key), load_system(key).analyze())
            for key in SYSTEM_KEYS}


class TestTable1Counts:
    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_error_dependencies_match_paper(self, reports, key):
        system, report = reports[key]
        assert len(report.confirmed_errors) == system.paper.error_dependencies

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_warnings_match_paper(self, reports, key):
        system, report = reports[key]
        assert len(report.warnings) == system.paper.warnings

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_false_positives_match_paper(self, reports, key):
        system, report = reports[key]
        assert len(report.candidate_false_positives) == \
            system.paper.false_positives

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_annotation_lines_match_paper(self, reports, key):
        system, report = reports[key]
        assert report.stats.annotation_lines == system.paper.annotation_lines

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_no_restriction_violations(self, reports, key):
        _, report = reports[key]
        assert report.violations == []
        assert report.init_issues == []


class TestErrorClasses:
    def test_kill_pid_error_in_every_system(self, reports):
        """§4: 'In all the three systems, the first argument of a kill
        system call ... was dependent on an unmonitored non-core
        value.'"""
        for key in SYSTEM_KEYS:
            _, report = reports[key]
            kill_errors = [e for e in report.confirmed_errors
                           if "kill" in e.variable]
            assert len(kill_errors) == 1, key
            assert kill_errors[0].kind is DependencyKind.DATA

    def test_generic_simplex_feedback_readback(self, reports):
        """§4: feedback written by core, read back by core — the
        'rigging' dependency."""
        _, report = reports["generic_simplex"]
        readback = [e for e in report.confirmed_errors
                    if "gsFeedback" in e.message]
        assert len(readback) == 1
        assert readback[0].variable == "output"

    def test_double_ip_invalid_assumption(self, reports):
        """§4: an unmonitored value assumed not to propagate to
        critical data — the analysis shows it does."""
        _, report = reports["double_ip"]
        trim = [e for e in report.confirmed_errors
                if "dipCmd2" in e.message]
        assert len(trim) == 1
        assert trim[0].variable == "output"

    def test_false_positives_are_control_only(self, reports):
        """§4: 'All false positives returned in our tests were due to
        control dependence on non-core values.'"""
        for key in SYSTEM_KEYS:
            _, report = reports[key]
            for fp in report.candidate_false_positives:
                assert fp.kind is DependencyKind.CONTROL

    def test_every_error_has_witness(self, reports):
        for key in SYSTEM_KEYS:
            _, report = reports[key]
            for error in report.errors:
                assert error.witness
                assert error.sources


class TestAnnotationBurden:
    EXPECTED_INIT_LINES = {"ip": 9, "generic_simplex": 15, "double_ip": 15}

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_majority_of_annotations_on_init_functions(self, key):
        """§4: 9 of 11, 15 of 22, 15 of 23 annotation lines are on
        initializing functions."""
        from repro.frontend import load_files
        from repro.annotations import AssertSafe, AssumeCore

        system = load_system(key)
        program = load_files([str(p) for p in system.core_files])
        init_lines = 0
        for annotation in program.annotations:
            first = annotation.items[0]
            if isinstance(first, (AssertSafe, AssumeCore)):
                continue
            init_lines += max(1, annotation.raw_text.strip().count("\n") + 1)
        assert init_lines == self.EXPECTED_INIT_LINES[key]


class TestCorpusStructure:
    def test_all_systems_load(self):
        systems = load_all()
        assert [s.key for s in systems] == list(SYSTEM_KEYS)

    def test_unknown_key_rejected(self):
        with pytest.raises(CorpusError):
            load_system("quadruple_ip")

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_noncore_components_present(self, key):
        system = load_system(key)
        assert system.noncore_files, "corpus should ship the non-core side"

    def test_original_variants_for_ported_systems(self):
        assert load_system("ip").original_files
        assert load_system("double_ip").original_files
        assert not load_system("generic_simplex").original_files  # 0 changes

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_loc_counters(self, key):
        system = load_system(key)
        assert 0 < system.loc_core() < system.loc_total()

    def test_original_ip_differs_only_around_monitor(self):
        import difflib
        system = load_system("ip")
        ported = system.core_files[0].read_text().splitlines()
        original = system.original_files[0].read_text().splitlines()
        changed = sum(1 for line in difflib.unified_diff(original, ported)
                      if line.startswith(("+", "-")))
        assert changed > 0

    @pytest.mark.parametrize("key", SYSTEM_KEYS)
    def test_monitoring_functions_annotated(self, key):
        system = load_system(key)
        report = system.analyze()
        assert report.stats.monitored_functions >= 2  # init + >=1 monitor
