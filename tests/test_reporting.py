"""Diagnostics, report aggregation, table rendering, JSON export."""

import pytest

from repro.core.results import AnalysisReport, AnalysisStats
from repro.ir.source import SourceLocation
from repro.reporting import (
    CriticalDependencyError,
    DependencyKind,
    InitializationIssue,
    RestrictionViolation,
    Severity,
    UnmonitoredReadWarning,
    sort_key,
)
from repro.reporting.render import render_table, table1_comparison


def warning(region="nc", line=10, function="f"):
    return UnmonitoredReadWarning(
        message=f"unmonitored access to {region}",
        location=SourceLocation("a.c", line),
        function=function,
        severity=Severity.WARNING,
        region=region,
    )


def error(variable="out", kind=DependencyKind.DATA, fp=False, line=20):
    return CriticalDependencyError(
        message=f"critical data {variable} depends on nc",
        location=SourceLocation("a.c", line),
        function="main",
        severity=Severity.ERROR,
        variable=variable,
        kind=kind,
        sources=(warning(),),
        witness=("[source] read nc", "[sink] assert"),
        candidate_false_positive=fp,
    )


class TestDiagnostics:
    def test_str_contains_location_and_function(self):
        text = str(warning())
        assert "a.c:10" in text and "[in f]" in text

    def test_warning_key_is_stable(self):
        assert warning().key == ("f", "nc", 10)

    def test_sort_key_orders_by_position(self):
        diags = [warning(line=30), warning(line=5), error(line=12)]
        ordered = sorted(diags, key=sort_key)
        assert [d.location.line for d in ordered] == [5, 12, 30]

    def test_witness_text_joins_steps(self):
        text = error().witness_text()
        assert "read nc" in text and "assert" in text

    def test_dependency_kind_str(self):
        assert str(DependencyKind.DATA) == "data"
        assert str(DependencyKind.BOTH) == "data+control"


class TestReport:
    def _report(self):
        report = AnalysisReport(name="demo")
        report.warnings = [warning()]
        report.errors = [error(), error(variable="mode",
                                        kind=DependencyKind.CONTROL,
                                        fp=True, line=25)]
        return report

    def test_counts_split_errors_and_fps(self):
        counts = self._report().counts()
        assert counts["errors"] == 1
        assert counts["false_positives"] == 1
        assert counts["warnings"] == 1

    def test_confirmed_vs_candidates(self):
        report = self._report()
        assert [e.variable for e in report.confirmed_errors] == ["out"]
        assert [e.variable for e in report.candidate_false_positives] == \
            ["mode"]

    def test_passed_requires_no_diagnostics(self):
        assert AnalysisReport().passed
        assert not self._report().passed

    def test_violations_fail_report(self):
        report = AnalysisReport()
        report.violations = [RestrictionViolation(
            message="P2: bad", location=None, function="f",
            severity=Severity.VIOLATION, rule="P2",
        )]
        assert not report.passed

    def test_init_issues_fail_report(self):
        report = AnalysisReport()
        report.init_issues = [InitializationIssue(
            message="overlap", location=None, function="init",
            severity=Severity.VIOLATION, region_a="a", region_b="b",
        )]
        assert not report.passed

    def test_diagnostics_merged_and_sorted(self):
        diags = self._report().diagnostics
        assert len(diags) == 3
        lines = [d.location.line for d in diags]
        assert lines == sorted(lines)

    def test_summary_mentions_counts(self):
        text = self._report().summary()
        assert "warnings           : 1" in text
        assert "error dependencies : 1" in text

    def test_render_verbose_includes_witness(self):
        text = self._report().render(verbose=True)
        assert "read nc" in text

    def test_to_json_round_trips_counts(self):
        import json
        payload = self._report().to_json()
        encoded = json.dumps(payload)  # must be JSON-serializable
        decoded = json.loads(encoded)
        assert decoded["counts"]["errors"] == 1
        assert decoded["errors"][0]["witness"]

    def test_stats_defaults(self):
        stats = AnalysisStats()
        assert stats.functions == 0 and stats.contexts_analyzed == 0


class TestRenderTable:
    def test_columns_aligned(self):
        text = render_table(["name", "value"],
                            [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_included(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_formatted(self):
        text = render_table(["v"], [[3.14159]])
        assert "3.14" in text

    def test_table1_comparison_smoke(self):
        from repro.corpus import load_system
        system = load_system("ip")
        text = table1_comparison([(system, system.analyze())])
        assert "Table 1" in text
        assert "7 (7)" in text  # warnings measured (paper)
