"""Call graph construction, SCCs, and traversal orders."""

import pytest

from repro.callgraph import CallGraph, strongly_connected_components
from tests.conftest import front


def graph_of(source: str) -> CallGraph:
    return CallGraph(front(source).module)


class TestTarjan:
    def test_linear_chain_reverse_topological(self):
        sccs = strongly_connected_components(
            ["a", "b", "c"], {"a": ["b"], "b": ["c"], "c": []}
        )
        assert sccs == [["c"], ["b"], ["a"]]

    def test_cycle_grouped(self):
        sccs = strongly_connected_components(
            ["a", "b", "c"], {"a": ["b"], "b": ["a"], "c": ["a"]}
        )
        assert sorted(sorted(group) for group in sccs) == [["a", "b"], ["c"]]
        assert set(sccs[0]) == {"a", "b"}

    def test_self_loop(self):
        sccs = strongly_connected_components(["a"], {"a": ["a"]})
        assert sccs == [["a"]]

    def test_diamond(self):
        sccs = strongly_connected_components(
            ["a", "b", "c", "d"],
            {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []},
        )
        order = {node: i for i, group in enumerate(sccs) for node in group}
        assert order["d"] < order["b"]
        assert order["d"] < order["c"]
        assert order["b"] < order["a"]

    def test_disconnected_nodes(self):
        sccs = strongly_connected_components(["a", "b"], {})
        assert len(sccs) == 2

    def test_large_cycle_no_recursion_error(self):
        n = 5000
        nodes = list(range(n))
        succ = {i: [(i + 1) % n] for i in nodes}
        sccs = strongly_connected_components(nodes, succ)
        assert len(sccs) == 1
        assert len(sccs[0]) == n


class TestCallGraph:
    SOURCE = """
        int leaf(int x) { return x + 1; }
        int mid(int x) { return leaf(x) * 2; }
        int even(int x);
        int odd(int x) { if (x == 0) return 0; return even(x - 1); }
        int even(int x) { if (x == 0) return 1; return odd(x - 1); }
        int main(void) { return mid(3) + odd(4) + printf("x"); }
    """

    def test_edges(self):
        cg = graph_of(self.SOURCE)
        module = cg.module
        main = module.get_function("main")
        names = {f.name for f in cg.callees(main)}
        assert names == {"mid", "odd"}

    def test_callers(self):
        cg = graph_of(self.SOURCE)
        leaf = cg.module.get_function("leaf")
        assert {f.name for f in cg.callers(leaf)} == {"mid"}

    def test_external_calls_tracked(self):
        cg = graph_of(self.SOURCE)
        externals = {c.callee_name for _, c in cg.external_calls}
        assert "printf" in externals

    def test_mutual_recursion_one_scc(self):
        cg = graph_of(self.SOURCE)
        groups = [sorted(f.name for f in group) for group in cg.sccs()]
        assert ["even", "odd"] in groups

    def test_bottom_up_order(self):
        cg = graph_of(self.SOURCE)
        order = {}
        for i, group in enumerate(cg.bottom_up_order()):
            for func in group:
                order[func.name] = i
        assert order["leaf"] < order["mid"] < order["main"]

    def test_top_down_is_reverse(self):
        cg = graph_of(self.SOURCE)
        assert cg.top_down_order() == list(reversed(cg.bottom_up_order()))

    def test_root_is_main(self):
        cg = graph_of(self.SOURCE)
        assert cg.root.name == "main"

    def test_reachable_from_main(self):
        cg = graph_of(self.SOURCE)
        reachable = {f.name for f in cg.reachable_from([cg.root])}
        assert reachable == {"main", "mid", "leaf", "even", "odd"}

    def test_indirect_call_resolves_address_taken(self):
        cg = graph_of("""
            int inc(int x) { return x + 1; }
            int dec(int x) { return x - 1; }
            int apply(int x) {
                int (*fn)(int);
                fn = inc;
                return fn(x);
            }
        """)
        apply_fn = cg.module.get_function("apply")
        names = {f.name for f in cg.callees(apply_fn)}
        assert "inc" in names

    def test_sites_in(self):
        cg = graph_of(self.SOURCE)
        main = cg.module.get_function("main")
        sites = list(cg.sites_in(main))
        assert len(sites) == 2
