"""Dominator/postdominator trees and control dependence."""

import pytest

from repro.ir import (
    Cmp,
    CondBranch,
    Constant,
    DominatorTree,
    Function,
    FunctionType,
    Jump,
    Ret,
    control_dependence,
)
from repro.ir import types as T


def diamond():
    """entry -> (then|else) -> merge"""
    func = Function("f", FunctionType(T.VOID, []))
    entry = func.new_block("entry")
    then = func.new_block("then")
    other = func.new_block("else")
    merge = func.new_block("merge")
    cond = Cmp("<", Constant(T.INT, 0), Constant(T.INT, 1), T.INT)
    entry.append(cond)
    entry.append(CondBranch(cond, then, other))
    then.append(Jump(merge))
    other.append(Jump(merge))
    merge.append(Ret())
    return func, entry, then, other, merge


def loop():
    """entry -> header <-> body; header -> exit"""
    func = Function("f", FunctionType(T.VOID, []))
    entry = func.new_block("entry")
    header = func.new_block("header")
    body = func.new_block("body")
    exit_ = func.new_block("exit")
    entry.append(Jump(header))
    cond = Cmp("<", Constant(T.INT, 0), Constant(T.INT, 10), T.INT)
    header.append(cond)
    header.append(CondBranch(cond, body, exit_))
    body.append(Jump(header))
    exit_.append(Ret())
    return func, entry, header, body, exit_


class TestDominators:
    def test_entry_dominates_all(self):
        func, entry, then, other, merge = diamond()
        dt = DominatorTree(func)
        for block in (then, other, merge):
            assert dt.dominates(entry, block)

    def test_branches_do_not_dominate_merge(self):
        func, entry, then, other, merge = diamond()
        dt = DominatorTree(func)
        assert not dt.dominates(then, merge)
        assert not dt.dominates(other, merge)
        assert dt.idom[merge] is entry

    def test_dominance_is_reflexive(self):
        func, entry, *_ = diamond()
        dt = DominatorTree(func)
        assert dt.dominates(entry, entry)

    def test_strict_dominance_excludes_self(self):
        func, entry, *_ = diamond()
        dt = DominatorTree(func)
        assert not dt.strictly_dominates(entry, entry)

    def test_loop_header_dominates_body(self):
        func, entry, header, body, exit_ = loop()
        dt = DominatorTree(func)
        assert dt.dominates(header, body)
        assert dt.dominates(header, exit_)
        assert not dt.dominates(body, exit_)

    def test_tree_children(self):
        func, entry, then, other, merge = diamond()
        dt = DominatorTree(func)
        children = set(dt.tree_children(entry))
        assert {then, other, merge} <= children


class TestDominanceFrontier:
    def test_diamond_frontier_is_merge(self):
        func, entry, then, other, merge = diamond()
        dt = DominatorTree(func)
        df = dt.dominance_frontier()
        assert df[then] == {merge}
        assert df[other] == {merge}
        assert df[merge] == set()

    def test_loop_body_frontier_is_header(self):
        func, entry, header, body, exit_ = loop()
        dt = DominatorTree(func)
        df = dt.dominance_frontier()
        assert header in df[body]
        assert header in df[header]  # header is in its own frontier


class TestPostdominators:
    def test_merge_postdominates_branches(self):
        func, entry, then, other, merge = diamond()
        pdt = DominatorTree(func, post=True)
        assert pdt.dominates(merge, then)
        assert pdt.dominates(merge, other)
        assert pdt.dominates(merge, entry)

    def test_branch_does_not_postdominate_entry(self):
        func, entry, then, other, merge = diamond()
        pdt = DominatorTree(func, post=True)
        assert not pdt.dominates(then, entry)

    def test_infinite_loop_does_not_crash(self):
        func = Function("f", FunctionType(T.VOID, []))
        b = func.new_block("spin")
        b.append(Jump(b))
        pdt = DominatorTree(func, post=True)
        assert pdt is not None


class TestControlDependence:
    def test_diamond_arms_depend_on_entry(self):
        func, entry, then, other, merge = diamond()
        deps = control_dependence(func)
        assert deps[then] == {entry}
        assert deps[other] == {entry}

    def test_merge_not_control_dependent(self):
        func, entry, then, other, merge = diamond()
        deps = control_dependence(func)
        assert deps[merge] == set()

    def test_loop_body_depends_on_header(self):
        func, entry, header, body, exit_ = loop()
        deps = control_dependence(func)
        assert header in deps[body]
        assert deps[exit_] == set()

    def test_loop_header_depends_on_itself(self):
        # whether another iteration runs is decided by the header branch
        func, entry, header, body, exit_ = loop()
        deps = control_dependence(func)
        assert header in deps[header]
