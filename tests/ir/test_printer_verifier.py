"""IR printer output and verifier rejection of malformed IR."""

import pytest

from repro.ir import (
    BinOp,
    Cmp,
    CondBranch,
    Constant,
    Function,
    FunctionType,
    Jump,
    Phi,
    Ret,
    function_to_text,
    module_to_text,
    verify_function,
)
from repro.ir import types as T
from repro.ir.verifier import VerificationError
from tests.conftest import front


class TestPrinter:
    def test_declaration_rendering(self):
        func = Function("ext", FunctionType(T.INT, [T.DOUBLE]))
        assert "declare ext" in function_to_text(func)

    def test_definition_contains_blocks_and_args(self):
        program = front("int add(int a, int b) { return a + b; }")
        text = function_to_text(program.module.get_function("add"))
        assert "define add(%a: int, %b: int) -> int" in text
        assert "entry0:" in text
        assert "binop '+'" in text

    def test_module_text_lists_globals(self):
        program = front("double rate = 2.5;\nint f(void) { return 0; }")
        text = module_to_text(program.module)
        assert "@rate : double = 2.5" in text

    def test_temp_names_are_stable_within_print(self):
        program = front("int f(int a) { return a * a + a; }")
        text = function_to_text(program.module.get_function("f"))
        assert "%t0" in text and "%t1" in text

    def test_phi_rendering_names_blocks(self):
        program = front("""
            int f(int a) {
                int x;
                if (a) x = 1; else x = 2;
                return x;
            }
        """)
        text = function_to_text(program.module.get_function("f"))
        assert "phi" in text and "[if.then" in text


def _empty_func():
    return Function("f", FunctionType(T.VOID, []))


class TestVerifier:
    def test_unterminated_block_rejected(self):
        func = _empty_func()
        func.new_block("entry")  # no terminator
        with pytest.raises(VerificationError, match="not terminated"):
            verify_function(func)

    def test_use_before_def_in_block_rejected(self):
        func = Function("f", FunctionType(T.INT, []))
        block = func.new_block("entry")
        late = BinOp("+", Constant(T.INT, 1), Constant(T.INT, 2), T.INT)
        use = BinOp("*", late, Constant(T.INT, 2), T.INT)
        use.parent = block
        block.instructions.append(use)
        block.append(late)
        block.append(Ret(use))
        with pytest.raises(VerificationError, match="used before defined"):
            verify_function(func)

    def test_use_not_dominated_rejected(self):
        func = Function("f", FunctionType(T.INT, []))
        entry = func.new_block("entry")
        left = func.new_block("left")
        right = func.new_block("right")
        merge = func.new_block("merge")
        cond = Cmp("<", Constant(T.INT, 0), Constant(T.INT, 1), T.INT)
        entry.append(cond)
        entry.append(CondBranch(cond, left, right))
        value = BinOp("+", Constant(T.INT, 1), Constant(T.INT, 1), T.INT)
        left.append(value)
        left.append(Jump(merge))
        right.append(Jump(merge))
        merge.append(Ret(value))  # only defined on the left path
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_function(func)

    def test_phi_with_non_predecessor_rejected(self):
        func = Function("f", FunctionType(T.INT, []))
        entry = func.new_block("entry")
        other = func.new_block("other")
        merge = func.new_block("merge")
        entry.append(Jump(merge))
        other.append(Jump(merge))  # other IS a pred; build a bogus one
        bogus = func.new_block("bogus")
        bogus.append(Ret(Constant(T.INT, 0)))
        phi = Phi(T.INT, "x")
        merge.insert_phi(phi)
        phi.add_incoming(entry, Constant(T.INT, 1))
        phi.add_incoming(bogus, Constant(T.INT, 2))  # not a predecessor
        merge.append(Ret(phi))
        with pytest.raises(VerificationError, match="non-predecessor"):
            verify_function(func)

    def test_phi_after_non_phi_rejected(self):
        func = Function("f", FunctionType(T.INT, []))
        entry = func.new_block("entry")
        merge = func.new_block("merge")
        entry.append(Jump(merge))
        value = BinOp("+", Constant(T.INT, 1), Constant(T.INT, 1), T.INT)
        merge.append(value)
        phi = Phi(T.INT, "x")
        phi.parent = merge
        merge.instructions.append(phi)  # after the binop: malformed
        phi.add_incoming(entry, Constant(T.INT, 0))
        merge.append(Ret(value))
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(func)

    def test_well_formed_function_accepted(self):
        program = front("int f(int a) { if (a) return 1; return 2; }")
        verify_function(program.module.get_function("f"))

    def test_whole_corpus_verifies(self):
        from repro.corpus import load_all
        from repro.frontend import load_files
        from repro.ir import verify_module
        for system in load_all():
            prog = load_files([str(p) for p in system.core_files])
            verify_module(prog.module)
