"""SSA construction (mem2reg) tests, both on hand-built IR and on IR
lowered from C snippets."""

import pytest

from repro.ir import (
    Alloca,
    Load,
    Phi,
    Store,
    UndefValue,
    module_to_text,
    promotable_allocas,
    verify_module,
)
from tests.conftest import front


def ir_of(source: str):
    program = front(source)
    return program.module


class TestPromotionFromC:
    def test_scalars_promoted_no_loads_remain(self):
        module = ir_of("""
            int f(int a) {
                int x;
                x = a + 1;
                return x * 2;
            }
        """)
        func = module.get_function("f")
        allocas = [i for i in func.instructions() if isinstance(i, Alloca)]
        assert allocas == []

    def test_branch_merge_creates_phi(self):
        module = ir_of("""
            int f(int a) {
                int x;
                if (a > 0) x = 1; else x = 2;
                return x;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 1
        values = sorted(v.value for v in phis[0].incoming.values())
        assert values == [1, 2]

    def test_loop_variable_becomes_phi(self):
        module = ir_of("""
            int f(void) {
                int i;
                int total;
                total = 0;
                for (i = 0; i < 10; i++) total = total + i;
                return total;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 2  # i and total

    def test_no_phi_when_single_assignment(self):
        module = ir_of("""
            int f(int a) {
                int x;
                x = a;
                if (a > 0) sendIt(x);
                return x;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert phis == []

    def test_address_taken_variable_not_promoted(self):
        module = ir_of("""
            void fill(double *p);
            double f(void) {
                double x;
                fill(&x);
                return x;
            }
        """)
        func = module.get_function("f")
        allocas = [i for i in func.instructions() if isinstance(i, Alloca)]
        assert len(allocas) == 1
        loads = [i for i in func.instructions() if isinstance(i, Load)]
        assert len(loads) == 1

    def test_aggregate_alloca_not_promoted(self):
        module = ir_of("""
            typedef struct { int a; int b; } Pair;
            int f(void) {
                Pair p;
                p.a = 1;
                return p.a;
            }
        """)
        func = module.get_function("f")
        allocas = [i for i in func.instructions() if isinstance(i, Alloca)]
        assert len(allocas) == 1

    def test_uninitialized_read_becomes_undef(self):
        module = ir_of("""
            int f(int c) {
                int x;
                if (c) x = 1;
                return x;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 1
        assert any(isinstance(v, UndefValue) for v in phis[0].incoming.values())

    def test_nested_branches(self):
        module = ir_of("""
            int f(int a, int b) {
                int x;
                if (a) {
                    if (b) x = 1; else x = 2;
                } else {
                    x = 3;
                }
                return x;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        # one phi for the inner merge, one for the outer merge
        assert len(phis) == 2

    def test_ssa_verifies(self, figure2_program):
        verify_module(figure2_program.module)

    def test_while_loop_condition_uses_phi(self):
        module = ir_of("""
            int f(int n) {
                int i;
                i = 0;
                while (i < n) i = i + 1;
                return i;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 1

    def test_trivial_phi_pruned(self):
        # both arms assign the same constant: the phi must collapse
        module = ir_of("""
            int f(int a) {
                int x;
                x = 5;
                if (a) x = 5;
                return x;
            }
        """)
        func = module.get_function("f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert phis == []

    def test_printer_runs_on_ssa(self, figure2_program):
        text = module_to_text(figure2_program.module)
        assert "define main" in text
        assert "phi" in text


class TestPromotableDetection:
    def test_promotable_detection_on_lowered_code(self):
        module = ir_of("""
            void use(int *p);
            int f(void) {
                int kept;
                use(&kept);
                return kept;
            }
        """)
        func = module.get_function("f")
        assert promotable_allocas(func) == []

    def test_unreachable_code_removed(self):
        module = ir_of("""
            int f(void) {
                return 1;
                return 2;
            }
        """)
        func = module.get_function("f")
        rets = [i for i in func.instructions() if i.opname() == "ret"]
        assert len(rets) == 1
