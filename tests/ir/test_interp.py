"""Differential tests: the lowered IR must compute what the C says.

Uses the IR interpreter to execute front-ended C and compares against
Python reference implementations, including hypothesis-generated
arithmetic and control flow.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.interp import InterpError, Interpreter
from tests.conftest import front


def interp_of(source: str) -> Interpreter:
    program = front(source)
    return Interpreter(program.module)


class TestArithmetic:
    def test_basic_expression(self):
        it = interp_of("int f(int a, int b) { return a * b + 2; }")
        assert it.call("f", 3, 4) == 14

    def test_c_division_truncates_toward_zero(self):
        it = interp_of("int f(int a, int b) { return a / b; }")
        assert it.call("f", 7, 2) == 3
        assert it.call("f", -7, 2) == -3   # C truncation, not Python floor

    def test_c_modulo_sign(self):
        it = interp_of("int f(int a, int b) { return a % b; }")
        assert it.call("f", -7, 2) == -1

    def test_division_by_zero_faults(self):
        it = interp_of("int f(int a) { return 10 / a; }")
        with pytest.raises(InterpError):
            it.call("f", 0)

    def test_double_arithmetic(self):
        it = interp_of("double f(double x) { return 0.5 * x + 1.0; }")
        assert it.call("f", 4.0) == pytest.approx(3.0)

    def test_mixed_promotion(self):
        it = interp_of("double f(int a) { return a / 2.0; }")
        assert it.call("f", 3) == pytest.approx(1.5)

    def test_bitwise(self):
        it = interp_of("int f(int a, int b) { return (a & b) | (a ^ b); }")
        assert it.call("f", 12, 10) == 12 | 10

    def test_math_external(self):
        it = interp_of("double f(double x) { return fabs(x) + sqrt(4.0); }")
        assert it.call("f", -3.0) == pytest.approx(5.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_polynomial_matches_python(self, a, b):
        it = interp_of(
            "int f(int a, int b) { return 3 * a * a - 2 * a * b + b; }"
        )
        assert it.call("f", a, b) == 3 * a * a - 2 * a * b + b


class TestControlFlow:
    def test_if_else(self):
        it = interp_of("int f(int a) { if (a > 0) return 1; else return -1; }")
        assert it.call("f", 5) == 1
        assert it.call("f", -5) == -1

    def test_short_circuit_and_skips_rhs(self):
        it = interp_of("""
            int f(int a) { return (a != 0) && (10 / a > 2); }
        """)
        assert it.call("f", 0) == 0   # must not divide by zero
        assert it.call("f", 3) == 1

    def test_short_circuit_or(self):
        it = interp_of("int f(int a) { return (a == 0) || (10 / a > 2); }")
        assert it.call("f", 0) == 1

    def test_ternary(self):
        it = interp_of("int f(int a) { return a > 10 ? a - 10 : 10 - a; }")
        assert it.call("f", 13) == 3
        assert it.call("f", 4) == 6

    def test_for_loop_sum(self):
        it = interp_of("""
            int f(int n) {
                int total;
                int i;
                total = 0;
                for (i = 1; i <= n; i++) total = total + i;
                return total;
            }
        """)
        assert it.call("f", 10) == 55

    def test_while_with_break_continue(self):
        it = interp_of("""
            int f(int n) {
                int total;
                int i;
                total = 0;
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i > n) break;
                    if (i % 2 == 0) continue;
                    total = total + i;
                }
                return total;
            }
        """)
        assert it.call("f", 10) == 1 + 3 + 5 + 7 + 9

    def test_do_while(self):
        it = interp_of("""
            int f(int n) {
                int count;
                count = 0;
                do { count = count + 1; n = n / 2; } while (n > 0);
                return count;
            }
        """)
        assert it.call("f", 8) == 4

    def test_switch_dispatch(self):
        it = interp_of("""
            int f(int m) {
                int r;
                switch (m) {
                case 0: r = 10; break;
                case 1:
                case 2: r = 20; break;
                default: r = 30;
                }
                return r;
            }
        """)
        assert it.call("f", 0) == 10
        assert it.call("f", 1) == 20
        assert it.call("f", 2) == 20
        assert it.call("f", 9) == 30

    def test_switch_fallthrough(self):
        it = interp_of("""
            int f(int m) {
                int r;
                r = 0;
                switch (m) {
                case 1: r = r + 1;
                case 2: r = r + 2; break;
                default: r = 100;
                }
                return r;
            }
        """)
        assert it.call("f", 1) == 3
        assert it.call("f", 2) == 2

    def test_nonterminating_loop_hits_step_limit(self):
        program = front("int f(void) { while (1) { } return 0; }")
        it = Interpreter(program.module, max_steps=1000)
        with pytest.raises(InterpError):
            it.call("f")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 40))
    def test_loop_sum_matches_reference(self, n):
        it = interp_of("""
            int f(int n) {
                int total;
                int i;
                total = 0;
                for (i = 0; i < n; i++) {
                    if (i % 3 == 0) total = total + 2 * i;
                    else total = total - i;
                }
                return total;
            }
        """)
        expected = sum(2 * i if i % 3 == 0 else -i for i in range(n))
        assert it.call("f", n) == expected


class TestMemory:
    def test_local_array(self):
        it = interp_of("""
            int f(void) {
                int a[4];
                int i;
                for (i = 0; i < 4; i++) a[i] = i * i;
                return a[3];
            }
        """)
        assert it.call("f") == 9

    def test_struct_fields(self):
        it = interp_of("""
            typedef struct { int x; int y; } P;
            int f(void) {
                P p;
                p.x = 3;
                p.y = 4;
                return p.x * p.x + p.y * p.y;
            }
        """)
        assert it.call("f") == 25

    def test_out_parameter(self):
        it = interp_of("""
            void fill(int *out, int v) { *out = v * 2; }
            int f(int v) { int x; fill(&x, v); return x; }
        """)
        assert it.call("f", 21) == 42

    def test_struct_copy(self):
        it = interp_of("""
            typedef struct { int a; int b; } P;
            int f(void) {
                P src;
                P dst;
                src.a = 7;
                src.b = 8;
                dst = src;
                return dst.a + dst.b;
            }
        """)
        assert it.call("f") == 15

    def test_global_variable(self):
        it = interp_of("""
            int counter;
            void bump(void) { counter = counter + 1; }
            int f(void) { bump(); bump(); bump(); return counter; }
        """)
        assert it.call("f") == 3

    def test_global_initializer(self):
        it = interp_of("""
            int base = 40;
            int f(void) { return base + 2; }
        """)
        assert it.call("f") == 42

    def test_pointer_into_array(self):
        it = interp_of("""
            int f(void) {
                int a[4];
                int *p;
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                p = a;
                p = p + 2;
                return *p;
            }
        """)
        assert it.call("f") == 3

    def test_uninitialized_read_faults(self):
        it = interp_of("""
            void sink(int *p);
            int f(void) { int x; sink(&x); return x; }
        """)
        # sink is external and does nothing useful here
        it.externals["sink"] = lambda p: 0
        with pytest.raises(InterpError):
            it.call("f")

    def test_recursion(self):
        it = interp_of("""
            int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        """)
        assert it.call("fact", 6) == 720

    def test_function_pointer_call(self):
        it = interp_of("""
            int inc(int x) { return x + 1; }
            int f(int x) {
                int (*fn)(int);
                fn = inc;
                return fn(x);
            }
        """)
        assert it.call("f", 41) == 42
