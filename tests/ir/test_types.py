"""Unit tests for the IR type model (ILP32 layout, nominal structs)."""

import pytest

from repro.ir import types as T
from repro.ir.types import (
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    pointer_compatible,
)


class TestPrimitiveSizes:
    def test_char_is_one_byte(self):
        assert T.CHAR.sizeof() == 1

    def test_short_is_two_bytes(self):
        assert T.SHORT.sizeof() == 2

    def test_int_is_four_bytes(self):
        assert T.INT.sizeof() == 4

    def test_long_is_four_bytes_ilp32(self):
        assert T.LONG.sizeof() == 4

    def test_long_long_is_eight_bytes(self):
        assert T.LONGLONG.sizeof() == 8

    def test_float_is_four_bytes(self):
        assert T.FLOAT.sizeof() == 4

    def test_double_is_eight_bytes(self):
        assert T.DOUBLE.sizeof() == 8

    def test_void_has_no_size(self):
        assert T.VOID.sizeof() == 0

    def test_pointer_is_four_bytes(self):
        assert PointerType(T.DOUBLE).sizeof() == 4


class TestTypeEquality:
    def test_same_int_types_equal(self):
        assert T.INT == T.IntType("int", 4)

    def test_signedness_distinguishes(self):
        assert T.INT != T.UINT

    def test_size_distinguishes(self):
        assert T.SHORT != T.INT

    def test_pointer_equality_structural(self):
        assert PointerType(T.INT) == PointerType(T.INT)
        assert PointerType(T.INT) != PointerType(T.DOUBLE)

    def test_array_equality_includes_count(self):
        assert ArrayType(T.INT, 4) == ArrayType(T.INT, 4)
        assert ArrayType(T.INT, 4) != ArrayType(T.INT, 5)

    def test_struct_equality_is_nominal(self):
        a = StructType("point")
        b = StructType("point")
        c = StructType("vec")
        assert a == b
        assert a != c

    def test_union_distinct_from_struct(self):
        assert StructType("u", is_union=True) != StructType("u")

    def test_types_usable_as_dict_keys(self):
        d = {T.INT: 1, PointerType(T.INT): 2, ArrayType(T.INT, 3): 3}
        assert d[T.IntType("int", 4)] == 1
        assert d[PointerType(T.INT)] == 2

    def test_function_type_equality(self):
        f1 = FunctionType(T.VOID, [T.INT, T.DOUBLE])
        f2 = FunctionType(T.VOID, [T.INT, T.DOUBLE])
        f3 = FunctionType(T.VOID, [T.INT], varargs=True)
        assert f1 == f2
        assert f1 != f3


class TestStructLayout:
    def test_field_offsets_accumulate(self):
        s = StructType("shmdata")
        s.set_fields([("control", T.DOUBLE), ("feedback", T.DOUBLE),
                      ("mode", T.INT)])
        assert s.field("control").offset == 0
        assert s.field("feedback").offset == 8
        assert s.field("mode").offset == 16
        assert s.sizeof() == 24  # padded to 8-byte alignment

    def test_union_fields_share_offset_zero(self):
        u = StructType("payload", is_union=True)
        u.set_fields([("i", T.INT), ("d", T.DOUBLE)])
        assert u.field("i").offset == 0
        assert u.field("d").offset == 0
        assert u.sizeof() == 8

    def test_nested_struct_size(self):
        inner = StructType("inner")
        inner.set_fields([("a", T.INT), ("b", T.INT)])
        outer = StructType("outer")
        outer.set_fields([("x", inner), ("y", T.DOUBLE)])
        assert outer.sizeof() == 16
        assert outer.field("y").offset == 8

    def test_array_field_size(self):
        s = StructType("cfg")
        s.set_fields([("mode", T.INT), ("reserved", ArrayType(T.INT, 5))])
        assert s.sizeof() == 24  # 4-byte aligned throughout

    def test_incomplete_struct_raises_on_field_access(self):
        s = StructType("fwd")
        assert not s.is_complete
        with pytest.raises(KeyError):
            s.field("anything")

    def test_unknown_field_raises(self):
        s = StructType("p")
        s.set_fields([("x", T.INT)])
        with pytest.raises(KeyError):
            s.field("y")

    def test_field_index(self):
        s = StructType("p")
        s.set_fields([("x", T.INT), ("y", T.INT)])
        assert s.field_index("y") == 1

    def test_incomplete_array_sizeof_zero(self):
        assert ArrayType(T.INT, None).sizeof() == 0


class TestPointerCompatibility:
    def test_void_pointer_compatible_with_everything(self):
        assert pointer_compatible(T.VOID_PTR, PointerType(T.DOUBLE))
        assert pointer_compatible(PointerType(T.DOUBLE), T.VOID_PTR)

    def test_char_pointer_compatible(self):
        assert pointer_compatible(T.CHAR_PTR, PointerType(T.INT))

    def test_same_pointee_compatible(self):
        s = StructType("s")
        assert pointer_compatible(PointerType(s), PointerType(StructType("s")))

    def test_different_structs_incompatible(self):
        a = PointerType(StructType("a"))
        b = PointerType(StructType("b"))
        assert not pointer_compatible(a, b)

    def test_int_double_pointers_incompatible(self):
        assert not pointer_compatible(PointerType(T.INT),
                                      PointerType(T.DOUBLE))

    def test_non_pointer_never_compatible(self):
        assert not pointer_compatible(T.INT, PointerType(T.INT))

    def test_scalar_predicate(self):
        assert T.INT.is_scalar
        assert PointerType(T.INT).is_scalar
        assert not ArrayType(T.INT, 3).is_scalar
        s = StructType("s")
        assert not s.is_scalar
        assert s.is_aggregate
