"""Unit tests for IR instruction construction and invariants."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Alloca,
    BasicBlock,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    Constant,
    FieldAddr,
    Function,
    FunctionType,
    IndexAddr,
    Jump,
    Load,
    Phi,
    PointerType,
    Ret,
    Store,
    UnaryOp,
)
from repro.ir import types as T
from repro.ir.types import ArrayType, StructType


def make_struct():
    s = StructType("pt")
    s.set_fields([("x", T.DOUBLE), ("y", T.DOUBLE), ("tag", T.INT)])
    return s


class TestAllocaLoadStore:
    def test_alloca_result_is_pointer(self):
        a = Alloca(T.INT, "i")
        assert a.type == PointerType(T.INT)
        assert a.allocated_type == T.INT

    def test_load_yields_pointee_type(self):
        a = Alloca(T.DOUBLE, "d")
        load = Load(a)
        assert load.type == T.DOUBLE
        assert load.pointer is a

    def test_load_from_non_pointer_rejected(self):
        with pytest.raises(IRError):
            Load(Constant(T.INT, 3))

    def test_store_has_no_result(self):
        a = Alloca(T.INT, "i")
        st = Store(Constant(T.INT, 7), a)
        assert st.type == T.VOID
        assert st.value.value == 7
        assert st.pointer is a

    def test_store_to_non_pointer_rejected(self):
        with pytest.raises(IRError):
            Store(Constant(T.INT, 1), Constant(T.INT, 2))


class TestArithmetic:
    def test_binop_operands(self):
        op = BinOp("+", Constant(T.INT, 1), Constant(T.INT, 2), T.INT)
        assert op.lhs.value == 1 and op.rhs.value == 2

    def test_unknown_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("**", Constant(T.INT, 1), Constant(T.INT, 2), T.INT)

    def test_unaryop(self):
        op = UnaryOp("-", Constant(T.INT, 5), T.INT)
        assert op.op == "-"

    def test_unknown_unaryop_rejected(self):
        with pytest.raises(IRError):
            UnaryOp("?", Constant(T.INT, 5), T.INT)

    def test_cmp_ops(self):
        cmp = Cmp("<=", Constant(T.INT, 1), Constant(T.INT, 2), T.INT)
        assert cmp.op == "<="

    def test_unknown_cmp_rejected(self):
        with pytest.raises(IRError):
            Cmp("<=>", Constant(T.INT, 1), Constant(T.INT, 2), T.INT)


class TestCastKinds:
    def test_pointer_to_pointer_is_bitcast(self):
        v = Alloca(T.INT, "p")
        cast = Cast(v, PointerType(T.DOUBLE))
        assert cast.kind == "bitcast"

    def test_pointer_to_int_is_ptrtoint(self):
        v = Alloca(T.INT, "p")
        assert Cast(v, T.INT).kind == "ptrtoint"

    def test_int_to_pointer_is_inttoptr(self):
        assert Cast(Constant(T.INT, 0), PointerType(T.INT)).kind == "inttoptr"

    def test_numeric_conversion(self):
        assert Cast(Constant(T.INT, 1), T.DOUBLE).kind == "numeric"


class TestAddressing:
    def test_fieldaddr_type_and_offset(self):
        s = make_struct()
        base = Alloca(s, "pt")
        fa = FieldAddr(base, "y")
        assert fa.type == PointerType(T.DOUBLE)
        assert fa.field_offset == 8

    def test_fieldaddr_requires_struct_pointer(self):
        with pytest.raises(IRError):
            FieldAddr(Alloca(T.INT, "i"), "x")

    def test_indexaddr_on_array_decays(self):
        arr = Alloca(ArrayType(T.INT, 8), "a")
        ia = IndexAddr(arr, Constant(T.INT, 2))
        assert ia.type == PointerType(T.INT)

    def test_indexaddr_pointer_arith_keeps_type(self):
        s = make_struct()
        a = Alloca(PointerType(s), "p")
        ptr = Load(a)
        ia = IndexAddr(ptr, Constant(T.INT, 1))
        assert ia.type == PointerType(s)

    def test_indexaddr_requires_pointer(self):
        with pytest.raises(IRError):
            IndexAddr(Constant(T.INT, 1), Constant(T.INT, 0))


class TestControlFlow:
    def test_block_requires_single_terminator(self):
        func = Function("f", FunctionType(T.VOID, []))
        block = func.new_block()
        block.append(Ret())
        with pytest.raises(IRError):
            block.append(Ret())

    def test_jump_successors(self):
        func = Function("f", FunctionType(T.VOID, []))
        b1, b2 = func.new_block(), func.new_block()
        b1.append(Jump(b2))
        assert b1.successors() == [b2]
        assert b2.predecessors() == [b1]

    def test_condbranch_successors(self):
        func = Function("f", FunctionType(T.VOID, []))
        b1, b2, b3 = func.new_block(), func.new_block(), func.new_block()
        cond = Cmp("<", Constant(T.INT, 0), Constant(T.INT, 1), T.INT)
        b1.append(cond)
        b1.append(CondBranch(cond, b2, b3))
        assert b1.successors() == [b2, b3]

    def test_condbranch_same_target_collapses(self):
        func = Function("f", FunctionType(T.VOID, []))
        b1, b2 = func.new_block(), func.new_block()
        cond = Constant(T.INT, 1)
        b1.append(CondBranch(cond, b2, b2))
        assert b1.successors() == [b2]

    def test_ret_block_has_no_successors(self):
        func = Function("f", FunctionType(T.VOID, []))
        b = func.new_block()
        b.append(Ret())
        assert b.successors() == []


class TestPhi:
    def test_incoming_tracked_per_block(self):
        func = Function("f", FunctionType(T.INT, []))
        b1, b2, b3 = func.new_block(), func.new_block(), func.new_block()
        phi = Phi(T.INT, "x")
        b3.insert_phi(phi)
        phi.add_incoming(b1, Constant(T.INT, 1))
        phi.add_incoming(b2, Constant(T.INT, 2))
        assert len(phi.incoming) == 2
        assert len(phi.operands) == 2

    def test_replace_operand_updates_incoming(self):
        func = Function("f", FunctionType(T.INT, []))
        b1 = func.new_block()
        phi = Phi(T.INT, "x")
        old = Constant(T.INT, 1)
        new = Constant(T.INT, 9)
        phi.add_incoming(b1, old)
        phi.replace_operand(old, new)
        assert phi.incoming[b1] == new

    def test_phis_iterate_only_leading(self):
        func = Function("f", FunctionType(T.INT, []))
        b = func.new_block()
        phi = Phi(T.INT, "x")
        b.insert_phi(phi)
        b.append(Ret(Constant(T.INT, 0)))
        assert list(b.phis()) == [phi]
        assert len(list(b.non_phi_instructions())) == 1


class TestCall:
    def test_direct_call_name(self):
        callee = Function("g", FunctionType(T.INT, [T.INT]))
        call = Call(callee, [Constant(T.INT, 1)], T.INT)
        assert call.callee_name == "g"

    def test_external_call_by_string(self):
        call = Call("printf", [Constant(PointerType(T.CHAR), "hi")], T.INT)
        assert call.callee_name == "printf"

    def test_render_mentions_target(self):
        call = Call("kill", [Constant(T.INT, 3), Constant(T.INT, 9)], T.INT)
        assert "kill" in call.render()
