"""Language restriction rules P1–P3 and A1/A2 on real C inputs."""

import pytest

from repro.core.config import AnalysisConfig
from repro.restrictions import check_arrays, check_p1, check_p2, check_p3
from repro.shm import ShmAnalysis
from tests.conftest import front


HEADER = """
typedef struct { double v; int flag; double arr[8]; } R;
R *region;
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    region = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(region, sizeof(R)));
        assume(noncore(region)) /***/
}
"""


def shm_of(body: str) -> ShmAnalysis:
    return ShmAnalysis(front(HEADER + body), AnalysisConfig()).run()


class TestP1:
    def test_detach_outside_main_flagged(self):
        shm = shm_of("""
            void cleanup(void) { shmdt(region); }
        """)
        violations = check_p1(shm)
        assert len(violations) == 1
        assert violations[0].rule == "P1"

    def test_detach_at_end_of_main_allowed(self):
        shm = shm_of("""
            int main(void) {
                initShm();
                shmdt(region);
                return 0;
            }
        """)
        assert check_p1(shm) == []

    def test_detach_before_use_in_main_flagged(self):
        shm = shm_of("""
            int main(void) {
                double v;
                initShm();
                shmdt(region);
                v = region->v;
                return (int) v;
            }
        """)
        violations = check_p1(shm)
        assert len(violations) == 1

    def test_detach_before_call_that_uses_shm_flagged(self):
        shm = shm_of("""
            double peek(void) { return region->v; }
            int main(void) {
                initShm();
                shmdt(region);
                return (int) peek();
            }
        """)
        assert len(check_p1(shm)) == 1

    def test_detach_of_local_pointer_ignored(self):
        shm = shm_of("""
            int main(void) {
                int x;
                initShm();
                shmdt(&x);
                region->v = 1.0;
                return 0;
            }
        """)
        assert check_p1(shm) == []


class TestP2:
    def test_storing_shm_pointer_into_memory_flagged(self):
        shm = shm_of("""
            R *stash[2];
            void keep(void) { stash[0] = region; }
        """)
        violations = check_p2(shm)
        assert len(violations) == 1
        assert violations[0].rule == "P2"

    def test_address_of_region_global_flagged(self):
        shm = shm_of("""
            void escape(R **out) { *out = region; }
            void top(void) {
                R **pp;
                escape(&region);
            }
        """)
        violations = check_p2(shm)
        assert any("address" in v.message for v in violations)

    def test_register_copies_allowed(self):
        shm = shm_of("""
            double ok(void) {
                R *p;
                p = region;
                return p->v;
            }
        """)
        assert check_p2(shm) == []

    def test_address_taken_local_holding_shm_pointer_flagged(self):
        shm = shm_of("""
            void mutate(R **slot);
            double bad(void) {
                R *p;
                p = region;
                mutate(&p);
                return p->v;
            }
        """)
        violations = check_p2(shm)
        assert len(violations) >= 1

    def test_init_function_exempt(self):
        # initShm itself stores the shm pointer into the global
        shm = shm_of("")
        assert check_p2(shm) == []


class TestP3:
    def test_incompatible_cast_flagged(self):
        shm = shm_of("""
            typedef struct { int a; int b; } Other;
            int reinterpret(void) {
                Other *o;
                o = (Other *) region;
                return o->a;
            }
        """)
        violations = check_p3(shm)
        assert len(violations) == 1
        assert violations[0].rule == "P3"

    def test_pointer_to_int_cast_flagged(self):
        shm = shm_of("""
            int addr(void) { return (int) region; }
        """)
        violations = check_p3(shm)
        assert any("integer" in v.message for v in violations)

    def test_void_pointer_cast_allowed(self):
        shm = shm_of("""
            void take(void *p);
            void pass(void) { take((void *) region); }
        """)
        assert check_p3(shm) == []

    def test_char_pointer_cast_allowed(self):
        shm = shm_of("""
            char peek(void) { return *((char *) region); }
        """)
        assert check_p3(shm) == []

    def test_init_function_exempt(self):
        shm = shm_of("")  # initShm casts void* -> R*
        assert check_p3(shm) == []


class TestArrayRules:
    def test_constant_index_in_bounds(self):
        shm = shm_of("""
            double ok(void) { return region->arr[7]; }
        """)
        assert check_arrays(shm) == []

    def test_constant_index_out_of_bounds(self):
        shm = shm_of("""
            double bad(void) { return region->arr[8]; }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1
        assert violations[0].rule == "A1"

    def test_negative_constant_index(self):
        shm = shm_of("""
            double bad(void) { return region->arr[-1]; }
        """)
        assert check_arrays(shm)[0].rule == "A1"

    def test_affine_loop_in_bounds(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i < 8; i++) { total = total + region->arr[i]; }
                return total;
            }
        """)
        assert check_arrays(shm) == []

    def test_affine_loop_overruns(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i <= 8; i++) { total = total + region->arr[i]; }
                return total;
            }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1
        assert violations[0].rule == "A2"

    def test_offset_index_overruns(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i < 8; i++) { total = total + region->arr[i + 1]; }
                return total;
            }
        """)
        assert len(check_arrays(shm)) == 1

    def test_symbolic_index_rejected(self):
        shm = shm_of("""
            int pick(void);
            double bad(void) { return region->arr[pick()]; }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1
        assert "cannot bound" in violations[0].message \
            or "not" in violations[0].message

    def test_nonaffine_index_rejected(self):
        shm = shm_of("""
            double bad(int n) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i < 2; i++) { total = total + region->arr[i * i]; }
                return total;
            }
        """)
        assert len(check_arrays(shm)) == 1

    def test_local_array_not_checked(self):
        shm = shm_of("""
            double ok(void) {
                double local[4];
                local[3] = 1.0;
                return local[3];
            }
        """)
        assert check_arrays(shm) == []

    def test_stride_two_loop(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i < 8; i = i + 2) { total = total + region->arr[i]; }
                return total;
            }
        """)
        assert check_arrays(shm) == []

    def test_whole_region_as_array(self):
        # region itself indexed: only element 0 exists
        shm = shm_of("""
            double bad(void) {
                R *p;
                p = region;
                return p[1].v;
            }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1
