"""Fourier–Motzkin feasibility ("omega-lite")."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.restrictions.solver import (
    Constraint,
    can_violate_bounds,
    is_feasible,
)


def ge(coeffs, const):
    return Constraint.ge_zero(
        {k: Fraction(v) for k, v in coeffs.items()}, Fraction(const)
    )


class TestFeasibility:
    def test_empty_system_feasible(self):
        assert is_feasible([])

    def test_single_bound_feasible(self):
        assert is_feasible([ge({"x": 1}, 0)])  # x >= 0

    def test_contradictory_constants(self):
        assert not is_feasible([ge({}, -1)])  # -1 >= 0

    def test_box_feasible(self):
        # 0 <= x <= 10
        assert is_feasible([ge({"x": 1}, 0), ge({"x": -1}, 10)])

    def test_empty_interval_infeasible(self):
        # x >= 5 and x <= 3
        assert not is_feasible([ge({"x": 1}, -5), ge({"x": -1}, 3)])

    def test_two_variable_chain(self):
        # x >= 0, y >= x + 2, y <= 1  → infeasible
        system = [
            ge({"x": 1}, 0),
            ge({"y": 1, "x": -1}, -2),
            ge({"y": -1}, 1),
        ]
        assert not is_feasible(system)

    def test_two_variable_feasible(self):
        # x >= 0, y >= x, y <= 100
        system = [
            ge({"x": 1}, 0),
            ge({"y": 1, "x": -1}, 0),
            ge({"y": -1}, 100),
        ]
        assert is_feasible(system)

    def test_rational_coefficients(self):
        # 2x >= 1, 3x <= 2  →  1/2 <= x <= 2/3 feasible
        assert is_feasible([ge({"x": 2}, -1), ge({"x": -3}, 2)])

    def test_degenerate_equality(self):
        # x >= 4 and x <= 4
        assert is_feasible([ge({"x": 1}, -4), ge({"x": -1}, 4)])

    def test_too_many_variables_raises(self):
        system = [ge({f"v{i}": 1}, 0) for i in range(20)]
        with pytest.raises(SolverError):
            is_feasible(system, max_vars=16)

    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_interval_feasibility_matches_arithmetic(self, lo, hi):
        system = [ge({"x": 1}, -lo), ge({"x": -1}, hi)]  # lo <= x <= hi
        assert is_feasible(system) == (lo <= hi)

    @given(st.integers(0, 30), st.integers(1, 30))
    def test_scaled_interval(self, k, scale):
        # scale*x >= 0, scale*x <= k → feasible always
        assert is_feasible([ge({"x": scale}, 0), ge({"x": -scale}, k)])


class TestBoundsViolation:
    def _loop_context(self, lower, upper):
        # lower <= i <= upper
        return [ge({"i": 1}, -lower), ge({"i": -1}, upper)]

    def test_in_bounds_loop_safe(self):
        # i in [0, 7], access arr[i] with bound 8
        assert not can_violate_bounds({"i": Fraction(1)}, 0, 8,
                                      self._loop_context(0, 7))

    def test_loop_one_too_far(self):
        # i in [0, 8] with bound 8: i == 8 violates
        assert can_violate_bounds({"i": Fraction(1)}, 0, 8,
                                  self._loop_context(0, 8))

    def test_negative_start_violates(self):
        assert can_violate_bounds({"i": Fraction(1)}, 0, 8,
                                  self._loop_context(-1, 7))

    def test_offset_shifts_range(self):
        # i in [0, 5], index = i + 3, bound 8 → max 8 → violation
        assert can_violate_bounds({"i": Fraction(1)}, 3, 8,
                                  self._loop_context(0, 5))

    def test_offset_in_bounds(self):
        # i in [0, 4], index = i + 3, bound 8 → [3, 7] ok
        assert not can_violate_bounds({"i": Fraction(1)}, 3, 8,
                                      self._loop_context(0, 4))

    def test_scaled_index(self):
        # i in [0, 3], index = 2*i, bound 8 → [0, 6] ok
        assert not can_violate_bounds({"i": Fraction(2)}, 0, 8,
                                      self._loop_context(0, 3))
        # i in [0, 4], index = 2*i, bound 8 → 8 violates
        assert can_violate_bounds({"i": Fraction(2)}, 0, 8,
                                  self._loop_context(0, 4))

    def test_unconstrained_variable_violates(self):
        assert can_violate_bounds({"i": Fraction(1)}, 0, 8, [])

    def test_constant_index(self):
        assert not can_violate_bounds({}, 5, 8, [])
        assert can_violate_bounds({}, 8, 8, [])
        assert can_violate_bounds({}, -1, 8, [])

    @given(st.integers(0, 20), st.integers(0, 20), st.integers(1, 25))
    def test_matches_exhaustive_check(self, lo, hi, bound):
        """The rational relaxation must never miss a real violation."""
        context = self._loop_context(lo, hi)
        result = can_violate_bounds({"i": Fraction(1)}, 0, bound, context)
        if lo > hi:
            return  # empty loop: nothing to compare against
        real_violation = any(i < 0 or i >= bound for i in range(lo, hi + 1))
        if real_violation:
            assert result  # soundness: must be flagged
