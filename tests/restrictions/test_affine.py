"""Affine expression extraction and induction-variable recognition."""

from fractions import Fraction

import pytest

from repro.ir import BinOp, Cmp, Phi
from repro.restrictions.affine import (
    affine_of,
    induction_info,
    loop_bounds_for,
)
from tests.conftest import front


def lowered(source: str, fname: str):
    program = front(source)
    return program.module.get_function(fname)


def only_phi(func) -> Phi:
    phis = [i for i in func.instructions() if isinstance(i, Phi)]
    assert len(phis) == 1, f"expected one phi, got {len(phis)}"
    return phis[0]


class TestAffineOf:
    def _value_of_return(self, source):
        func = lowered(source, "f")
        rets = [i for i in func.instructions() if i.opname() == "ret"]
        return rets[0].operands[0], func

    def test_constant(self):
        value, _ = self._value_of_return("int f(void) { return 42; }")
        expr = affine_of(value)
        assert expr.is_constant and expr.const == 42

    def test_argument_is_leaf(self):
        value, func = self._value_of_return("int f(int n) { return n; }")
        expr = affine_of(value)
        assert expr.coeffs[func.arguments[0]] == 1

    def test_linear_combination(self):
        value, func = self._value_of_return(
            "int f(int n, int m) { return 2 * n + m - 3; }"
        )
        expr = affine_of(value)
        coeffs = {v.name: c for v, c in expr.coeffs.items()}
        assert coeffs == {"n": 2, "m": 1}
        assert expr.const == -3

    def test_negation(self):
        value, func = self._value_of_return("int f(int n) { return -n + 1; }")
        expr = affine_of(value)
        assert list(expr.coeffs.values()) == [Fraction(-1)]

    def test_product_of_variables_not_affine(self):
        value, _ = self._value_of_return("int f(int n, int m) { return n * m; }")
        assert affine_of(value) is None

    def test_scaling_by_constant(self):
        value, _ = self._value_of_return("int f(int n) { return n * 4; }")
        expr = affine_of(value)
        assert list(expr.coeffs.values()) == [Fraction(4)]

    def test_opaque_call_is_leaf(self):
        value, _ = self._value_of_return(
            "int g(void); int f(void) { return g() + 1; }"
        )
        expr = affine_of(value)
        assert len(expr.coeffs) == 1
        assert expr.const == 1

    def test_add_and_scale_api(self):
        from repro.restrictions.affine import AffineExpr
        a = AffineExpr.constant(3)
        b = AffineExpr.variable("x")
        combined = a.add(b.scale(Fraction(2)))
        assert combined.const == 3
        assert combined.coeffs["x"] == 2


LOOP = """
void sink(int v);
void f(int n) {
    int i;
    for (i = 0; i < n; i++) {
        sink(i);
    }
}
"""


class TestInduction:
    def test_canonical_for_loop_recognized(self):
        func = lowered(LOOP, "f")
        phi = only_phi(func)
        info = induction_info(phi)
        assert info is not None
        assert info.step == 1
        assert info.init.is_constant and info.init.const == 0

    def test_downward_loop(self):
        func = lowered("""
            void sink(int v);
            void f(int n) {
                int i;
                for (i = n; i > 0; i--) { sink(i); }
            }
        """, "f")
        info = induction_info(only_phi(func))
        assert info is not None and info.step == -1

    def test_stride_two(self):
        func = lowered("""
            void sink(int v);
            void f(int n) {
                int i;
                for (i = 0; i < n; i = i + 2) { sink(i); }
            }
        """, "f")
        info = induction_info(only_phi(func))
        assert info.step == 2

    def test_non_induction_phi_rejected(self):
        func = lowered("""
            int g(void);
            int f(int c) {
                int x;
                if (c) x = g(); else x = g();
                return x;
            }
        """, "f")
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        for phi in phis:
            assert induction_info(phi) is None

    def test_multiplicative_update_rejected(self):
        func = lowered("""
            void sink(int v);
            void f(int n) {
                int i;
                for (i = 1; i < n; i = i * 2) { sink(i); }
            }
        """, "f")
        assert induction_info(only_phi(func)) is None


class TestLoopBounds:
    def test_upper_bound_from_guard(self):
        func = lowered(LOOP, "f")
        phi = only_phi(func)
        bounds = loop_bounds_for(func, phi)
        assert len(bounds) == 1
        assert bounds[0].op == "<"
        # bound is the argument n
        assert func.arguments[0] in bounds[0].bound.coeffs

    def test_le_guard(self):
        func = lowered("""
            void sink(int v);
            void f(void) {
                int i;
                for (i = 0; i <= 7; i++) { sink(i); }
            }
        """, "f")
        bounds = loop_bounds_for(func, only_phi(func))
        assert bounds[0].op == "<="
        assert bounds[0].bound.const == 7

    def test_flipped_comparison_normalized(self):
        func = lowered("""
            void sink(int v);
            void f(int n) {
                int i;
                for (i = 0; n > i; i++) { sink(i); }
            }
        """, "f")
        bounds = loop_bounds_for(func, only_phi(func))
        assert bounds[0].op == "<"
