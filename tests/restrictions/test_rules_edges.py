"""Additional restriction-rule coverage: 2D shm arrays, shmctl, mixed."""

import pytest

from repro.core.config import AnalysisConfig
from repro.restrictions import check_arrays, check_p1
from repro.shm import ShmAnalysis
from tests.conftest import front


HEADER = """
typedef struct { double m[2][4]; double tail[3]; int n; } Grid;
Grid *grid;
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    grid = (Grid *) shmat(shmget(9, sizeof(Grid), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(grid, sizeof(Grid)));
        assume(noncore(grid)) /***/
}
"""


def shm_of(body: str) -> ShmAnalysis:
    return ShmAnalysis(front(HEADER + body), AnalysisConfig()).run()


class TestTwoDimensionalArrays:
    def test_nested_loops_in_bounds(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                int j;
                total = 0.0;
                for (i = 0; i < 2; i++) {
                    for (j = 0; j < 4; j++) {
                        total = total + grid->m[i][j];
                    }
                }
                return total;
            }
        """)
        assert check_arrays(shm) == []

    def test_outer_loop_overruns(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int i;
                total = 0.0;
                for (i = 0; i <= 2; i++) {
                    total = total + grid->m[i][0];
                }
                return total;
            }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1
        assert violations[0].rule == "A2"

    def test_inner_loop_overruns(self):
        shm = shm_of("""
            double sum(void) {
                double total;
                int j;
                total = 0.0;
                for (j = 0; j < 5; j++) {
                    total = total + grid->m[1][j];
                }
                return total;
            }
        """)
        assert len(check_arrays(shm)) == 1

    def test_constant_2d_access(self):
        shm = shm_of("""
            double peek(void) { return grid->m[1][3]; }
        """)
        assert check_arrays(shm) == []

    def test_constant_2d_out_of_bounds(self):
        shm = shm_of("""
            double peek(void) { return grid->m[1][4]; }
        """)
        assert check_arrays(shm)[0].rule == "A1"

    def test_second_member_array_checked_independently(self):
        shm = shm_of("""
            double peek(void) { return grid->tail[2]; }
            double bad(void) { return grid->tail[3]; }
        """)
        violations = check_arrays(shm)
        assert len(violations) == 1


class TestP1Shmctl:
    def test_shmctl_outside_main_flagged(self):
        shm = shm_of("""
            void destroy(int shmid) { shmctl(shmid, 0, 0); }
        """)
        violations = check_p1(shm)
        assert len(violations) == 1
        assert "shmctl" in violations[0].message

    def test_shmctl_at_end_of_main_allowed(self):
        shm = shm_of("""
            int main(void) {
                initShm();
                grid->n = 1;
                shmctl(3, 0, 0);
                return 0;
            }
        """)
        assert check_p1(shm) == []


class TestMonitoredCopies:
    def test_memcpy_inside_monitor_is_safe(self):
        from tests.conftest import analyze
        report = analyze(HEADER + """
            void emit(double v);
            void monGrab(Grid *g, double *out)
            /***SafeFlow Annotation assume(core(g, 0, sizeof(Grid))) /***/
            {
                memcpy(out, g->tail, 3 * sizeof(double));
                if (out[0] > 100.0) { out[0] = 0.0; }
                if (out[1] > 100.0) { out[1] = 0.0; }
                if (out[2] > 100.0) { out[2] = 0.0; }
            }
            int main(void) {
                double local[3];
                double x;
                initShm();
                monGrab(grid, local);
                x = local[0];
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert report.warnings == []
        assert report.errors == []

    def test_memcpy_outside_monitor_still_flagged(self):
        from tests.conftest import analyze
        report = analyze(HEADER + """
            void emit(double v);
            int main(void) {
                double local[3];
                double x;
                initShm();
                memcpy(local, grid->tail, 3 * sizeof(double));
                x = local[0];
                /***SafeFlow Annotation assert(safe(x)); /***/
                emit(x);
                return 0;
            }
        """)
        assert len(report.warnings) == 1
        assert len(report.errors) == 1
