"""End-to-end scenarios tying the paper's narrative together."""

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.reporting import DependencyKind
from tests.conftest import FIGURE2_SOURCE, analyze


class TestRunningExample:
    """§3.3's walkthrough of Figure 2."""

    def test_feedback_deref_in_decision_chain_reported(self, figure2_report):
        assert len(figure2_report.warnings) == 1
        warning = figure2_report.warnings[0]
        assert warning.region == "feedback"
        assert warning.function == "checkSafety"

    def test_output_dependency_reported(self, figure2_report):
        assert len(figure2_report.errors) == 1
        error = figure2_report.errors[0]
        assert error.variable == "output"
        assert "feedback" in error.message

    def test_witness_spans_three_functions(self, figure2_report):
        witness = "\n".join(figure2_report.errors[0].witness)
        assert "checkSafety" in witness
        assert "decision" in witness
        assert "assert safe(output)" in witness

    def test_fix_with_local_copy_removes_dependency(self):
        """§3.3: 'One way to eliminate this dependency is to use a local
        copy of the feedback as an argument to decision.'"""
        fixed = FIGURE2_SOURCE.replace(
            "int checkSafety(SHMData *f, SHMData *nc)",
            "int checkSafety(double localFeedback, SHMData *nc)",
        ).replace(
            "if (f->feedback > 100.0)", "if (localFeedback > 100.0)"
        ).replace(
            "double decision(SHMData *f, double safe, SHMData *nc)",
            "double decision(double localFeedback, double safe, SHMData *nc)",
        ).replace(
            "if (checkSafety(f, nc))", "if (checkSafety(localFeedback, nc))"
        ).replace(
            "output = decision(feedback, safeControl, noncoreCtrl);",
            "output = decision(safeControl, safeControl, noncoreCtrl);",
        )
        report = analyze(fixed, name="figure2-fixed")
        assert report.errors == []
        assert report.warnings == []

    def test_extra_assume_silences_feedback_read(self):
        """§3.4.2: declaring feedback core inside decision (fine-grained
        encapsulation knowledge) eliminates the dependency."""
        relaxed = FIGURE2_SOURCE.replace(
            """int checkSafety(SHMData *f, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData))) /***/""",
            """int checkSafety(SHMData *f, SHMData *nc)
/***SafeFlow Annotation
    assume(core(nc, 0, sizeof(SHMData)));
    assume(core(f, 0, sizeof(SHMData))) /***/""",
        )
        report = analyze(relaxed, name="figure2-relaxed")
        assert report.errors == []
        assert report.warnings == []


class TestAblations:
    def test_context_insensitivity_only_loses_precision(self, figure2_source):
        precise = analyze(figure2_source, name="cs")
        merged = analyze(
            figure2_source, AnalysisConfig(context_sensitive=False),
            name="ci",
        )
        # context-insensitive must report at least everything the
        # context-sensitive analysis reports
        assert len(merged.warnings) >= len(precise.warnings)
        assert len(merged.errors) >= len(precise.errors)

    def test_context_budget_forces_merging(self, figure2_source):
        budget = AnalysisConfig(max_contexts_per_function=1)
        report = analyze(figure2_source, budget, name="budget")
        # still sound: the dependency is found
        assert len(report.errors) >= 1


class TestStaticDynamicAgreement:
    """The static verdicts must agree with runtime fault injection."""

    def test_static_error_has_dynamic_counterpart(self):
        """The feedback-rigging dependency flagged statically in the
        generic simplex corpus corresponds to a real dynamic failure
        (tests/simplex/test_architecture.py shows the fall); here we
        check the static side names the same region."""
        from repro.corpus import load_system
        report = load_system("generic_simplex").analyze()
        regions = {s.region for e in report.confirmed_errors
                   for s in e.sources}
        assert "gsFeedback" in regions
        assert "gsStatus" in regions

    def test_monitored_pipeline_passes_both(self):
        source = """
            typedef struct { double v; unsigned int seq; int valid; } Cmd;
            Cmd *cmd;
            unsigned int lastSeq;
            void actuate(double u);
            double sense(void);
            void initShm(void)
            /***SafeFlow Annotation shminit /***/
            {
                cmd = (Cmd *) shmat(shmget(9, sizeof(Cmd), 0666), 0, 0);
                /***SafeFlow Annotation
                    assume(shmvar(cmd, sizeof(Cmd)));
                    assume(noncore(cmd)) /***/
            }
            double monitor(Cmd *c, double fb)
            /***SafeFlow Annotation assume(core(c, 0, sizeof(Cmd))) /***/
            {
                double v;
                unsigned int s;
                if (c->valid == 0) return fb;
                s = c->seq;
                if (s == lastSeq) return fb;
                lastSeq = s;
                v = c->v;
                if (v > 1.0 || v < -1.0) return fb;
                return v;
            }
            int main(void)
            {
                double safe;
                double out;
                initShm();
                while (1) {
                    safe = 0.5 * sense();
                    out = monitor(cmd, safe);
                    /***SafeFlow Annotation assert(safe(out)); /***/
                    actuate(out);
                }
                return 0;
            }
        """
        report = analyze(source, name="pipeline")
        assert report.passed


class TestScaleSmoke:
    def test_medium_program_analyzes_quickly(self):
        from repro.corpus import generate_core
        import time
        program = generate_core(
            data_error_regions=2, control_fp_regions=2,
            benign_read_regions=2, monitored_regions=2,
            filler_functions=40, chain_depth=6,
        )
        start = time.time()
        report = SafeFlow().analyze_source(program.source)
        elapsed = time.time() - start
        assert elapsed < 20.0
        assert len(report.confirmed_errors) == program.expected_errors
