"""Properties of the consistent-hash ring the fleet router relies on:
stability under membership change, spread across shards, and the
deterministic skip-walk used for re-dispatch and drain overflow."""

import pytest

from repro.fleet.hashring import DEFAULT_REPLICAS, HashRing, routing_key


def _keys(n):
    return [f"job-{i}" for i in range(n)]


class TestRoutingKey:
    def test_stable_for_equal_params(self):
        params = {"source": "int main(void){}", "filename": "a.c",
                  "config": {"kernel": "compiled"}}
        assert routing_key(params) == routing_key(dict(params))

    def test_differs_by_source(self):
        a = routing_key({"source": "int main(void){return 0;}"})
        b = routing_key({"source": "int main(void){return 1;}"})
        assert a != b

    def test_differs_by_config_override(self):
        base = {"files": ["/srv/x.c"], "name": "x"}
        a = routing_key(base)
        b = routing_key({**base, "config": {"summary_mode": True}})
        assert a != b

    def test_total_over_missing_fields(self):
        # any params dict hashes; absent fields hash as their absence
        assert routing_key({}) == routing_key({"irrelevant": 1})

    def test_ignores_file_contents(self, tmp_path):
        # paths, not digests: an edited file keeps its warm shard
        path = tmp_path / "unit.c"
        path.write_text("int a;")
        before = routing_key({"files": [str(path)]})
        path.write_text("int b;")
        assert routing_key({"files": [str(path)]}) == before


class TestRingBasics:
    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing([0], replicas=0)

    def test_empty_ring_has_no_owner(self):
        ring = HashRing([])
        assert ring.lookup("anything") is None
        assert ring.preference("anything") == []

    def test_single_shard_owns_everything(self):
        ring = HashRing([7])
        assert all(ring.lookup(k) == 7 for k in _keys(50))

    def test_lookup_is_deterministic(self):
        ring_a = HashRing(range(4))
        ring_b = HashRing(range(4))
        for key in _keys(200):
            assert ring_a.lookup(key) == ring_b.lookup(key)

    def test_add_remove_roundtrip(self):
        ring = HashRing(range(3))
        before = {k: ring.lookup(k) for k in _keys(100)}
        ring.add(3)
        ring.remove(3)
        assert {k: ring.lookup(k) for k in _keys(100)} == before


class TestStability:
    def test_adding_one_shard_moves_about_one_nth(self):
        keys = _keys(4000)
        ring = HashRing(range(4))
        before = {k: ring.lookup(k) for k in keys}
        ring.add(4)
        moved = sum(1 for k in keys if ring.lookup(k) != before[k])
        # ideal movement is 1/5 of the keyspace; allow generous slack
        assert 0.5 * len(keys) / 5 <= moved <= 1.7 * len(keys) / 5
        # every moved key moved TO the new shard, never between old ones
        for k in keys:
            owner = ring.lookup(k)
            assert owner == before[k] or owner == 4

    def test_removing_a_shard_only_moves_its_keys(self):
        keys = _keys(2000)
        ring = HashRing(range(4))
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        for k in keys:
            if before[k] != 2:
                assert ring.lookup(k) == before[k]
            else:
                assert ring.lookup(k) != 2


class TestSpread:
    def test_virtual_nodes_keep_shards_near_fair(self):
        keys = _keys(8000)
        counts = HashRing(range(4)).spread(keys)
        fair = len(keys) / 4
        for shard, count in counts.items():
            assert 0.5 * fair <= count <= 1.6 * fair, (shard, counts)

    def test_more_replicas_tighten_the_spread(self):
        keys = _keys(8000)
        coarse = HashRing(range(4), replicas=4).spread(keys)
        fine = HashRing(range(4), replicas=DEFAULT_REPLICAS).spread(keys)

        def imbalance(counts):
            return max(counts.values()) - min(counts.values())

        assert imbalance(fine) <= imbalance(coarse)


class TestSkipWalk:
    def test_skip_walks_to_next_distinct_shard(self):
        ring = HashRing(range(4))
        for key in _keys(300):
            home = ring.lookup(key)
            fallback = ring.lookup(key, skip={home})
            assert fallback is not None and fallback != home

    def test_walk_follows_preference_order(self):
        ring = HashRing(range(4))
        for key in _keys(100):
            pref = ring.preference(key)
            assert pref[0] == ring.lookup(key)
            assert sorted(pref) == [0, 1, 2, 3]
            # skipping the first k preferred shards yields pref[k]
            for k in range(1, 4):
                assert ring.lookup(key, skip=set(pref[:k])) == pref[k]

    def test_all_skipped_returns_none(self):
        ring = HashRing(range(3))
        assert ring.lookup("key", skip={0, 1, 2}) is None

    def test_preference_is_stable_across_calls(self):
        ring = HashRing(range(5))
        for key in _keys(50):
            assert ring.preference(key) == ring.preference(key)
