"""Router correctness with embedded (in-process) shards: byte-identity
against the direct analysis path, the unchanged-client contract, the
fleet RPC surface, and work stealing with per-shard attribution."""

import threading

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.fleet import FleetConfig, FleetRouter
from repro.server import SafeFlowClient, ServerError

SOURCES = {
    "clean": "int main(void) { return 0; }",
    "guarded": """
int source(void);
void sink(int x);
int main(void) {
    int v = source();
    if (v > 0) sink(v);
    return 0;
}
""",
    "unguarded": """
int source(void);
void sink(int x);
int main(void) {
    int v = source();
    sink(v);
    return 0;
}
""",
}


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    router = FleetRouter(FleetConfig(
        shards=4, port=0, cache_root=str(root),
        backend="inprocess", use_processes=False,
        steal_threshold=1, steal_margin=1,
        health_interval=0.2,
    ))
    host, port = router.start()
    yield router, host, port
    router.stop()


def fleet_client(fleet, **kwargs):
    _router, host, port = fleet
    kwargs.setdefault("request_timeout", 60.0)
    return SafeFlowClient(host=host, port=port, **kwargs)


class TestByteIdentity:
    @pytest.mark.parametrize("key", sorted(SOURCES))
    def test_router_matches_direct_analysis(self, fleet, key):
        direct = SafeFlow(AnalysisConfig()).analyze_source(
            SOURCES[key], filename=f"{key}.c")
        with fleet_client(fleet) as client:
            via_fleet = client.analyze(
                source=SOURCES[key], filename=f"{key}.c")
        assert via_fleet["render"] == direct.render()
        assert via_fleet["passed"] == direct.passed
        assert via_fleet["exit_code"] == (0 if direct.passed else 1)

    def test_repeats_are_identical(self, fleet):
        with fleet_client(fleet) as client:
            first = client.analyze(source=SOURCES["guarded"], filename="g.c")
            for _ in range(5):
                again = client.analyze(
                    source=SOURCES["guarded"], filename="g.c")
                assert again["render"] == first["render"]
                assert again["counts"] == first["counts"]


class TestClientContract:
    def test_one_connection_many_requests(self, fleet):
        """SafeFlowClient needs no changes to speak to the fleet, and
        its persistent connection is reused across calls."""
        with fleet_client(fleet) as client:
            for _ in range(10):
                client.analyze(source=SOURCES["clean"], filename="c.c")
            assert client.stats["connects"] == 1
            assert client.stats["reconnects"] == 0
            assert client.stats["requests"] == 10
            assert client.stats["responses"] == 10

    def test_errors_are_structured(self, fleet):
        with fleet_client(fleet) as client:
            with pytest.raises(ServerError) as err:
                client.call("no_such_method")
            assert err.value.code == -32601  # METHOD_NOT_FOUND


class TestFleetRpcSurface:
    def test_ping_identifies_the_router(self, fleet):
        with fleet_client(fleet) as client:
            pong = client.call("ping")
        assert pong["pong"] is True
        assert pong["role"] == "fleet"

    def test_health_aggregates_shards(self, fleet):
        with fleet_client(fleet) as client:
            health = client.call("health")
        assert health["status"] == "ok"
        assert health["shards_total"] == 4
        assert health["shards_healthy"] == 4
        assert len(health["shards"]) == 4
        for shard in health["shards"]:
            assert shard["healthy"] is True
            assert shard["draining"] is False
        # the aggregate latency plane mirrors the daemon health plane
        assert "latency_p50_s" in health and "latency_p99_s" in health
        assert "queue_depth" in health and "inflight" in health

    def test_metrics_counters_and_shard_attribution(self, fleet):
        with fleet_client(fleet) as client:
            client.analyze(source=SOURCES["clean"], filename="c.c")
            metrics = client.call("metrics")
        router = metrics["router"]
        assert router["requests"] >= 1
        assert router["responses"] >= 1
        assert len(metrics["shards"]) == 4
        assert sum(s["routed"] for s in metrics["shards"]) >= 1
        assert "latency" in metrics

    def test_rolling_reload_returns_every_shard_healthy(self, fleet):
        with fleet_client(fleet) as client:
            before = client.analyze(source=SOURCES["guarded"], filename="g.c")
            result = client.call("fleet_reload", timeout=120.0)
            after = client.analyze(source=SOURCES["guarded"], filename="g.c")
        assert result["reloaded"] == [0, 1, 2, 3]
        assert result["healthy"] == [0, 1, 2, 3]
        assert after["render"] == before["render"]


class TestWorkStealing:
    def test_hot_key_overflows_to_cold_shards(self, fleet):
        """One hot routing key saturates its home shard; with
        steal_threshold=1/margin=1 the overflow lands on cold shards
        and the books balance: every steal is attributed once as
        steals_out (home) and once as steals_in (thief)."""
        router, _host, _port = fleet
        with fleet_client(fleet) as probe:
            base = probe.call("metrics")["router"]["steals"]

        baseline = {}
        errors = []

        def hammer(wid, rounds=12):
            try:
                with fleet_client(fleet) as client:
                    for _ in range(rounds):
                        r = client.analyze(
                            source=SOURCES["unguarded"], filename="hot.c")
                        key = (r["passed"], r["render"])
                        baseline.setdefault("verdict", key)
                        if key != baseline["verdict"]:
                            errors.append((wid, key))
            except Exception as exc:  # pragma: no cover
                errors.append((wid, repr(exc)))

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        with fleet_client(fleet) as probe:
            metrics = probe.call("metrics")
        stolen = metrics["router"]["steals"] - base
        assert stolen >= 1, "expected the hot key to overflow"
        shards = metrics["shards"]
        assert (sum(s["steals_in"] for s in shards)
                == sum(s["steals_out"] for s in shards)
                == metrics["router"]["steals"])
        # stealing spread the hot key beyond its home shard
        assert sum(1 for s in shards if s["routed"] > 0) >= 2
