"""Chaos behavior with real ``safeflow serve`` subprocess shards:
SIGKILL of a shard mid-burst must lose zero requests (re-dispatch +
automatic restart), and a rolling reload under sustained load must
drain without erroring. These spawn subprocesses and take seconds,
not milliseconds — the fast-path router behavior lives in
test_router.py."""

import os
import signal
import threading
import time

import pytest

from repro.fleet import FleetConfig, FleetRouter
from repro.server import SafeFlowClient

SOURCES = [
    f"""
int source{i}(void);
void sink{i}(int x);
int main(void) {{
    int v = source{i}();
    if (v > {i}) sink{i}(v);
    return 0;
}}
""" for i in range(4)
]


@pytest.fixture(scope="module")
def process_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("chaos-fleet")
    router = FleetRouter(FleetConfig(
        shards=2, port=0, cache_root=str(root),
        backend="process", use_processes=False,
        health_interval=0.2,
    ))
    host, port = router.start()
    yield router, host, port
    router.stop()


def _wait_all_healthy(client, shards=2, timeout=30.0, min_restarts=0):
    """Block until the router reports every shard healthy (and, when
    ``min_restarts`` is set, until the supervisor has actually cycled
    a shard — health snapshots are read asynchronously from the
    monitor, so "ok" alone can predate the kill being noticed)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        health = client.call("health")
        restarts = sum(s["restarts"] for s in health["shards"])
        if (health["status"] == "ok"
                and health["shards_healthy"] == shards
                and restarts >= min_restarts):
            return health
        time.sleep(0.2)
    raise AssertionError(f"fleet never recovered: {health}")


def _burst(host, port, baseline, rounds, errors, done, start_evt):
    def worker(wid):
        try:
            with SafeFlowClient(host=host, port=port,
                                request_timeout=120.0) as client:
                start_evt.wait()
                for n in range(rounds):
                    i = (wid + n) % len(SOURCES)
                    r = client.analyze(source=SOURCES[i], filename=f"j{i}.c")
                    if (r["counts"], r["render"]) != baseline[i]:
                        errors.append((wid, n, "verdict drift"))
                    else:
                        done.append(1)
        except Exception as exc:
            errors.append((wid, repr(exc)))

    return [threading.Thread(target=worker, args=(w,)) for w in range(6)]


def _prime(host, port):
    baseline = {}
    with SafeFlowClient(host=host, port=port,
                        request_timeout=120.0) as client:
        for i, src in enumerate(SOURCES):
            r = client.analyze(source=src, filename=f"j{i}.c")
            baseline[i] = (r["counts"], r["render"])
    return baseline


def test_shard_sigkill_mid_burst_drops_nothing(process_fleet):
    router, host, port = process_fleet
    baseline = _prime(host, port)

    errors, done = [], []
    start_evt = threading.Event()
    threads = _burst(host, port, baseline, 40, errors, done, start_evt)
    for t in threads:
        t.start()
    start_evt.set()
    time.sleep(0.1)  # let requests be in flight on both shards
    victim = router._shard_list()[0].backend.pid
    os.kill(victim, signal.SIGKILL)
    for t in threads:
        t.join(timeout=180.0)
    assert not any(t.is_alive() for t in threads)

    assert errors == []
    assert len(done) == 6 * 40, "every request answered, none dropped"

    with SafeFlowClient(host=host, port=port) as client:
        health = _wait_all_healthy(client, min_restarts=1)
        metrics = client.call("metrics")
    assert sum(s["restarts"] for s in health["shards"]) >= 1
    assert metrics["router"]["shard_restarts"] >= 1
    # the dead shard's in-flight requests were re-dispatched, and the
    # loss is attributed to the shard that lost them
    assert (metrics["router"]["redispatches"]
            == sum(s["redispatches_out"] for s in metrics["shards"]))


def test_rolling_reload_under_load_is_lossless(process_fleet):
    router, host, port = process_fleet
    baseline = _prime(host, port)

    errors, done = [], []
    start_evt = threading.Event()
    threads = _burst(host, port, baseline, 15, errors, done, start_evt)
    for t in threads:
        t.start()
    start_evt.set()
    time.sleep(0.2)
    with SafeFlowClient(host=host, port=port) as client:
        result = client.call("fleet_reload", timeout=300.0)
    for t in threads:
        t.join(timeout=180.0)
    assert not any(t.is_alive() for t in threads)

    assert errors == []
    assert len(done) == 6 * 15
    assert result["reloaded"] == [0, 1]
    assert result["healthy"] == [0, 1]

    # verdicts survive the full fleet restart byte-identically
    assert _prime(host, port) == baseline
