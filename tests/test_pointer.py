"""Unification-based points-to analysis (DSA substitute)."""

import pytest

from repro.ir import Alloca, Call, Load, Store
from repro.pointer import Cell, PointsToAnalysis
from tests.conftest import front


def analyze(source: str):
    program = front(source)
    pta = PointsToAnalysis(program.module).run()
    return program.module, pta


def find_alloca(func, name):
    for inst in func.instructions():
        if isinstance(inst, Alloca) and inst.name == name:
            return inst
    raise AssertionError(f"no alloca {name}")


class TestCells:
    def test_union_find_reflexive(self):
        c = Cell("a")
        assert c.find() is c

    def test_unify_merges(self):
        a, b = Cell("a"), Cell("b")
        a.unify(b)
        assert a.find() is b.find()

    def test_unify_merges_pointees(self):
        a, b = Cell("a"), Cell("b")
        pa, pb = a.pointee(), b.pointee()
        a.unify(b)
        assert pa.find() is pb.find()

    def test_fields_merge_pairwise(self):
        a, b = Cell("a"), Cell("b")
        fa = a.field("x")
        fb = b.field("x")
        gb = b.field("y")
        a.unify(b)
        assert fa.find() is fb.find()
        assert a.field("y").find() is gb.find()

    def test_field_distinctness(self):
        a = Cell("a")
        assert a.field("x").find() is not a.field("y").find()

    def test_reachable_iterates_closure(self):
        a = Cell("a")
        a.field("x")
        a.pointee()
        assert len(list(a.reachable())) >= 3


class TestPointsTo:
    def test_distinct_locals_distinct_cells(self):
        module, pta = analyze("""
            void use(int *p);
            void f(void) { int a; int b; use(&a); use(&b); }
        """)
        f = module.get_function("f")
        ca = pta.target_of(find_alloca(f, "a"))
        cb = pta.target_of(find_alloca(f, "b"))
        # both flowed into use()'s parameter: conservatively unified
        assert ca is not None and cb is not None

    def test_struct_fields_separate(self):
        module, pta = analyze("""
            typedef struct { double x; double y; } P;
            void store(P *p) { p->x = 1.0; p->y = 2.0; }
        """)
        f = module.get_function("store")
        stores = [i for i in f.instructions() if isinstance(i, Store)]
        cells = [pta.target_of(s.pointer) for s in stores]
        assert cells[0] is not cells[1]

    def test_out_param_unifies_caller_cell(self):
        module, pta = analyze("""
            void fill(double *out) { *out = 1.0; }
            double f(void) { double v; fill(&v); return v; }
        """)
        f = module.get_function("f")
        fill = module.get_function("fill")
        caller_cell = pta.target_of(find_alloca(f, "v"))
        callee_cell = pta.target_of(fill.arguments[0])
        assert caller_cell is callee_cell

    def test_return_pointer_unified(self):
        module, pta = analyze("""
            int shared;
            int *get(void) { return &shared; }
            int f(void) { int *p; p = get(); return *p; }
        """)
        f = module.get_function("f")
        loads = [i for i in f.instructions() if isinstance(i, Load)
                 and i.type.is_integer]
        gv = module.globals["shared"]
        assert pta.target_of(loads[-1].pointer) is pta.target_of(gv)

    def test_malloc_gets_fresh_cell(self):
        module, pta = analyze("""
            void f(void) {
                double *a;
                double *b;
                a = (double *) malloc(8);
                b = (double *) malloc(8);
                *a = 1.0;
                *b = 2.0;
            }
        """)
        f = module.get_function("f")
        stores = [i for i in f.instructions() if isinstance(i, Store)
                  and i.value.type.is_float]
        cells = {id(pta.target_of(s.pointer)) for s in stores}
        assert len(cells) == 2

    def test_phi_merges_targets(self):
        module, pta = analyze("""
            int a;
            int b;
            int f(int c) {
                int *p;
                if (c) p = &a; else p = &b;
                return *p;
            }
        """)
        f = module.get_function("f")
        loads = [i for i in f.instructions() if isinstance(i, Load)
                 and i.type.is_integer]
        target = pta.target_of(loads[-1].pointer)
        # both globals unified into the phi target (Steensgaard)
        assert pta.target_of(module.globals["a"]) is target

    def test_array_elements_collapse(self):
        module, pta = analyze("""
            double f(double *v, int i, int j) { return v[i] + v[j]; }
        """)
        f = module.get_function("f")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        assert pta.target_of(loads[0].pointer) is pta.target_of(loads[1].pointer)

    def test_global_pointer_deref(self):
        module, pta = analyze("""
            double *chan;
            double f(void) { return *chan; }
        """)
        f = module.get_function("f")
        loads = [i for i in f.instructions() if isinstance(i, Load)]
        # loads: chan itself, then *chan — different cells
        cells = [pta.target_of(load.pointer) for load in loads]
        assert cells[0] is not cells[1]

    def test_cast_preserves_cell(self):
        module, pta = analyze("""
            typedef struct { int v; } R;
            int f(void *raw) {
                R *r;
                r = (R *) raw;
                return r->v;
            }
        """)
        f = module.get_function("f")
        raw_cell = pta.target_of(f.arguments[0])
        assert raw_cell is not None
