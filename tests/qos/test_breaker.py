"""Circuit-breaker state machine: trip, cooldown, half-open probe."""

import pytest

from repro.qos import CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock, **kwargs):
    defaults = dict(failure_threshold=0.5, min_volume=4, window=8,
                    cooldown_s=2.0, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestTrip:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.routable()

    def test_failures_below_min_volume_never_trip(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):  # min_volume is 4
            breaker.record_failure()
        assert breaker.state == "closed"

    def test_trips_at_threshold_with_volume(self):
        breaker = make_breaker(FakeClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/3 < 0.5
        breaker.record_failure()
        assert breaker.state == "open"    # 2/4 >= 0.5
        assert breaker.opens == 1
        assert not breaker.allow()
        assert not breaker.routable()

    def test_successes_dilute_the_failure_rate(self):
        breaker = make_breaker(FakeClock())
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        # 2 failures over a window of 8 is 25% — stays closed
        assert breaker.state == "closed"

    def test_old_outcomes_roll_out_of_the_window(self):
        breaker = make_breaker(FakeClock(), window=4, min_volume=4)
        breaker.record_failure()
        for _ in range(6):
            breaker.record_success()
        # the early failure was evicted: 0/4 failures
        assert breaker.snapshot()["failures"] == 0

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0.0}, {"failure_threshold": 1.5},
        {"min_volume": 0}, {"min_volume": 10, "window": 5},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            make_breaker(FakeClock(), **kwargs)


def tripped_breaker(clock):
    breaker = make_breaker(clock)
    for _ in range(4):
        breaker.record_failure()
    assert breaker.state == "open"
    return breaker


class TestHalfOpen:
    def test_cooldown_gates_the_probe(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(1.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state == "half_open"

    def test_single_probe_at_a_time(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(2.1)
        assert breaker.allow()
        # the probe is out: nobody else gets through
        assert not breaker.allow()
        assert not breaker.allow()

    def test_routable_does_not_consume_the_probe(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(2.1)
        # peek any number of times without spending the probe slot
        assert breaker.routable()
        assert breaker.routable()
        assert breaker.allow()
        # now the probe is out and the peek says so
        assert not breaker.routable()

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        # the window restarts clean: one new failure cannot re-trip
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = tripped_breaker(clock)
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert not breaker.allow()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
