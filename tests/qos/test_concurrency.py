"""Adaptive in-flight limiter: gating and AIMD behavior."""

import pytest

from repro.qos import AdaptiveLimiter


class P99:
    """A settable p99 source standing in for the rolling window."""

    def __init__(self, value=None):
        self.value = value

    def __call__(self):
        return self.value


def saturate(limiter):
    """Hit the cap so the limiter knows it is binding."""
    assert not limiter.acquire(timeout=0.0)


class TestFixedLimit:
    def test_gates_at_the_limit(self):
        limiter = AdaptiveLimiter(limit=2, adaptive=False)
        assert limiter.acquire(timeout=0.0)
        assert limiter.acquire(timeout=0.0)
        assert not limiter.acquire(timeout=0.0)
        limiter.release(0.01)
        assert limiter.acquire(timeout=0.0)
        assert limiter.inflight() == 2

    def test_non_adaptive_limit_never_moves(self):
        limiter = AdaptiveLimiter(limit=2, adaptive=False, adjust_every=1)
        for _ in range(20):
            assert limiter.acquire(timeout=0.0)
            assert limiter.acquire(timeout=0.0)
            saturate(limiter)
            limiter.release(0.001)
            limiter.release(0.001)
        assert limiter.limit == 2


class TestAdditiveIncrease:
    def make(self, p99, **kwargs):
        defaults = dict(limit=2, max_limit=8, adaptive=True, p99=p99,
                        adjust_every=1)
        defaults.update(kwargs)
        return AdaptiveLimiter(**defaults)

    def test_increase_requires_saturation(self):
        p99 = P99(0.01)
        limiter = self.make(p99)
        # fast p99 but the cap never binds: no reason to raise it
        for _ in range(5):
            assert limiter.acquire(timeout=0.0)
            limiter.release(0.01)
        assert limiter.limit == 2

    def test_saturated_and_fast_probes_upward(self):
        p99 = P99(0.01)
        limiter = self.make(p99)
        assert limiter.acquire(timeout=0.0)
        assert limiter.acquire(timeout=0.0)
        saturate(limiter)
        limiter.release(0.01)
        assert limiter.limit == 3
        assert limiter.snapshot()["increases"] == 1

    def test_limit_stops_at_max(self):
        p99 = P99(0.01)
        limiter = self.make(p99, limit=7, max_limit=8)
        for _ in range(5):
            assert limiter.acquire(timeout=0.0)
            saturate_needed = limiter.limit - limiter.inflight()
            for _ in range(saturate_needed):
                limiter.acquire(timeout=0.0)
            saturate(limiter)
            for _ in range(limiter.inflight()):
                limiter.release(0.01)
        assert limiter.limit == 8

    def test_empty_window_is_a_noop(self):
        limiter = self.make(P99(None))
        assert limiter.acquire(timeout=0.0)
        assert limiter.acquire(timeout=0.0)
        saturate(limiter)
        limiter.release(0.01)
        assert limiter.limit == 2


class TestMultiplicativeDecrease:
    def test_slow_p99_cuts_the_limit(self):
        p99 = P99(0.01)
        limiter = AdaptiveLimiter(limit=8, adaptive=True, p99=p99,
                                  adjust_every=1)
        # establish a fast floor first
        assert limiter.acquire(timeout=0.0)
        limiter.release(0.01)
        assert limiter.limit == 8
        # then the window goes 100x over the learned floor
        p99.value = 1.0
        assert limiter.acquire(timeout=0.0)
        limiter.release(1.0)
        assert limiter.limit == 6  # int(8 * 0.75)
        assert limiter.snapshot()["decreases"] == 1

    def test_decrease_respects_min_limit(self):
        p99 = P99(0.01)
        limiter = AdaptiveLimiter(limit=2, min_limit=2, adaptive=True,
                                  p99=p99, adjust_every=1)
        limiter.acquire(timeout=0.0)
        limiter.release(0.01)
        p99.value = 5.0
        for _ in range(10):
            limiter.acquire(timeout=0.0)
            limiter.release(5.0)
        assert limiter.limit == 2

    def test_explicit_target_overrides_learned_floor(self):
        p99 = P99(0.05)
        limiter = AdaptiveLimiter(limit=4, adaptive=True, p99=p99,
                                  target_p99_s=0.1, adjust_every=1)
        # 0.05 < 0.1 target and saturated: increase
        limiter.acquire(timeout=0.0)
        limiter.acquire(timeout=0.0)
        limiter.acquire(timeout=0.0)
        limiter.acquire(timeout=0.0)
        saturate(limiter)
        limiter.release(0.05)
        assert limiter.limit == 5
        # 0.2 > 0.1 target: decrease regardless of history
        p99.value = 0.2
        limiter.release(0.2)
        assert limiter.limit == 3  # int(5 * 0.75)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"limit": 0},
        {"limit": 4, "min_limit": 5},
        {"limit": 65, "max_limit": 64},
        {"decrease": 0.0},
        {"decrease": 1.0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveLimiter(**kwargs)
