"""Token-bucket semantics: lazy refill, retry hints, refunds."""

import pytest

from repro.qos import TokenBucket


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestUnlimited:
    def test_default_bucket_always_admits(self):
        bucket = TokenBucket()
        for _ in range(10_000):
            assert bucket.try_acquire() == 0.0
        assert bucket.available() == float("inf")

    def test_refund_on_unlimited_is_a_noop(self):
        bucket = TokenBucket()
        bucket.refund()
        assert bucket.try_acquire() == 0.0


class TestRateLimited:
    def test_burst_then_exact_retry_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        for _ in range(3):
            assert bucket.try_acquire() == 0.0
        # empty: one token exists in 1/rate seconds
        hint = bucket.try_acquire()
        assert hint == pytest.approx(0.5)

    def test_lazy_refill_from_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # earns one token
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_burst_defaults_to_one_second_of_rate(self):
        assert TokenBucket(rate=8.0).burst == 8.0
        assert TokenBucket(rate=0.25).burst == 1.0

    def test_refund_restores_a_charge(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        bucket.refund()
        assert bucket.try_acquire() == 0.0

    def test_refund_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        bucket.refund(5.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_deposit_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        bucket.try_acquire()
        bucket.deposit(10.0)
        assert bucket.available() == pytest.approx(3.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0}, {"rate": -1.0}, {"rate": 1.0, "burst": 0},
        {"rate": 1.0, "burst": -2.0},
    ])
    def test_rejects_nonpositive_parameters(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)
