"""DRR fair-queue properties: weight proportionality, no starvation,
per-lane shares, quota refund on cancel (including the race)."""

import threading

import pytest

from repro.qos import FairQueue, RateLimitedError, TenantSpec, TenantTable
from repro.server.queue import PendingJob, QueueFullError


def make_job(job_id, tenant=None):
    return PendingJob(str(job_id), {"name": str(job_id)}, tenant=tenant)


def frozen_clock():
    return 0.0


def drain(queue, limit=10_000):
    served = []
    for _ in range(limit):
        job = queue.get(timeout=0.0)
        if job is None:
            break
        served.append(job)
    return served


class TestLegacyFifo:
    """No declared tenants: byte-for-byte the old FIFO behavior."""

    def test_fifo_order_preserved(self):
        queue = FairQueue(capacity=16)
        jobs = [make_job(i) for i in range(10)]
        for job in jobs:
            queue.put_nowait(job)
        assert drain(queue) == jobs

    def test_single_lane_gets_full_capacity(self):
        queue = FairQueue(capacity=4)
        for i in range(4):
            queue.put_nowait(make_job(i))
        with pytest.raises(QueueFullError):
            queue.put_nowait(make_job("overflow"))


class TestWeightProportionality:
    def test_service_matches_weights_within_ten_percent(self):
        table = TenantTable([
            TenantSpec(name="heavy", weight=3.0),
            TenantSpec(name="light", weight=1.0),
        ])
        # lane shares are weight-proportional over heavy+light+default
        # (3+1+1): heavy may hold 48, light 16 — stay inside both
        queue = FairQueue(capacity=80, tenants=table)
        for i in range(45):
            queue.put_nowait(make_job(f"h{i}", tenant="heavy"))
        for i in range(14):
            queue.put_nowait(make_job(f"l{i}", tenant="light"))
        window = 40  # both lanes stay backlogged throughout
        served = [queue.get(timeout=0.0) for _ in range(window)]
        heavy = sum(1 for j in served if j.tenant == "heavy")
        expected = window * 3.0 / 4.0
        assert abs(heavy - expected) <= 0.10 * expected

    def test_equal_weights_interleave_evenly(self):
        table = TenantTable([
            TenantSpec(name="a"), TenantSpec(name="b"),
        ])
        queue = FairQueue(capacity=40, tenants=table)
        for i in range(10):
            queue.put_nowait(make_job(f"a{i}", tenant="a"))
            queue.put_nowait(make_job(f"b{i}", tenant="b"))
        served = [queue.get(timeout=0.0) for _ in range(20)]
        # every consecutive pair serves both tenants once
        for i in range(0, 20, 2):
            assert {served[i].tenant, served[i + 1].tenant} == {"a", "b"}


class TestNoStarvation:
    def test_flooded_lane_cannot_starve_a_light_tenant(self):
        table = TenantTable([
            TenantSpec(name="flood", weight=8.0),
            TenantSpec(name="tiny", weight=1.0),
        ])
        queue = FairQueue(capacity=200, tenants=table)
        for i in range(150):
            queue.put_nowait(make_job(f"f{i}", tenant="flood"))
        for i in range(5):
            queue.put_nowait(make_job(f"t{i}", tenant="tiny"))
        served = drain(queue)
        positions = [n for n, job in enumerate(served)
                     if job.tenant == "tiny"]
        assert len(positions) == 5
        # one tiny job per full DRR cycle (8 flood + 1 tiny), so the
        # k-th tiny job lands near position 9k — never pushed to the
        # tail by the flood
        cycle = 9
        for k, position in enumerate(positions):
            assert position <= (k + 2) * cycle

    def test_late_arrival_is_scheduled_into_the_rotation(self):
        table = TenantTable([
            TenantSpec(name="busy", weight=2.0),
            TenantSpec(name="late", weight=1.0),
        ])
        queue = FairQueue(capacity=64, tenants=table)
        for i in range(30):
            queue.put_nowait(make_job(f"b{i}", tenant="busy"))
        assert queue.get(timeout=0.0).tenant == "busy"
        queue.put_nowait(make_job("newcomer", tenant="late"))
        window = [queue.get(timeout=0.0) for _ in range(4)]
        assert any(job.tenant == "late" for job in window)


class TestLaneShares:
    def test_hot_tenant_cannot_fill_the_whole_queue(self):
        table = TenantTable([
            TenantSpec(name="hot", weight=1.0),
            TenantSpec(name="cold", weight=1.0),
        ])
        queue = FairQueue(capacity=12, tenants=table)
        admitted = 0
        with pytest.raises(QueueFullError):
            for i in range(13):
                queue.put_nowait(make_job(f"h{i}", tenant="hot"))
                admitted += 1
        assert admitted < 12
        # the other tenant still has admission headroom
        queue.put_nowait(make_job("c0", tenant="cold"))

    def test_global_capacity_still_binds(self):
        table = TenantTable([TenantSpec(name="a"), TenantSpec(name="b")])
        # three lanes (a, b, and the undeclared "c" inheriting the
        # default spec) of share 2 each exactly cover capacity 6
        queue = FairQueue(capacity=6, tenants=table)
        for tenant in ("a", "b", "c"):
            queue.put_nowait(make_job(f"{tenant}0", tenant=tenant))
            queue.put_nowait(make_job(f"{tenant}1", tenant=tenant))
        with pytest.raises(QueueFullError, match="queue full"):
            queue.put_nowait(make_job("x", tenant="a"))


class TestRateLimiting:
    def table(self):
        return TenantTable([
            TenantSpec(name="metered", rate=1.0, burst=2.0),
            TenantSpec(name="open"),
        ])

    def test_over_rate_is_rejected_with_retry_hint(self):
        queue = FairQueue(capacity=16, tenants=self.table(),
                          clock=frozen_clock)
        queue.put_nowait(make_job(0, tenant="metered"))
        queue.put_nowait(make_job(1, tenant="metered"))
        with pytest.raises(RateLimitedError) as excinfo:
            queue.put_nowait(make_job(2, tenant="metered"))
        assert excinfo.value.tenant == "metered"
        assert excinfo.value.retry_after_s == pytest.approx(1.0)

    def test_quota_is_per_tenant(self):
        queue = FairQueue(capacity=16, tenants=self.table(),
                          clock=frozen_clock)
        queue.put_nowait(make_job(0, tenant="metered"))
        queue.put_nowait(make_job(1, tenant="metered"))
        with pytest.raises(RateLimitedError):
            queue.put_nowait(make_job(2, tenant="metered"))
        # the unlimited tenant can still fill its whole lane share
        for i in range(5):
            queue.put_nowait(make_job(f"o{i}", tenant="open"))

    def test_rejected_request_consumes_nothing(self):
        queue = FairQueue(capacity=2, tenants=self.table(),
                          clock=frozen_clock)
        queue.put_nowait(make_job("x", tenant="open"))
        queue.put_nowait(make_job("y", tenant="other"))
        # the queue-full check runs before the bucket charge
        with pytest.raises(QueueFullError):
            queue.put_nowait(make_job("z", tenant="metered"))
        assert queue._lanes["metered"].bucket.available() == \
            pytest.approx(2.0)


class TestCancelRefund:
    def test_cancel_while_queued_refunds_exactly_once(self):
        table = TenantTable([TenantSpec(name="t", rate=10.0, burst=10.0)])
        queue = FairQueue(capacity=8, tenants=table, clock=frozen_clock)
        job = make_job("victim", tenant="t")
        queue.put_nowait(job)
        bucket = queue._lanes["t"].bucket
        assert bucket.available() == pytest.approx(9.0)
        assert job.cancel()
        assert bucket.available() == pytest.approx(10.0)
        # a second cancel is a no-op, not a second refund
        assert not job.cancel()
        assert bucket.available() == pytest.approx(10.0)
        # the dead job is dropped at dispatch, never handed out
        assert queue.get(timeout=0.0) is None

    def test_dispatched_job_keeps_its_charge(self):
        table = TenantTable([TenantSpec(name="t", rate=10.0, burst=10.0)])
        queue = FairQueue(capacity=8, tenants=table, clock=frozen_clock)
        job = make_job("runner", tenant="t")
        queue.put_nowait(job)
        got = queue.get(timeout=0.0)
        assert got is job and got.start()
        # cancelling a RUNNING job must not refund
        job.cancel()
        assert queue._lanes["t"].bucket.available() == pytest.approx(9.0)

    def test_cancellation_race_never_consumes_tokens(self):
        """Race a dispatcher (get + start) against cancel() over many
        jobs on a frozen clock: afterwards the bucket is short exactly
        one token per job that *ran* — a cancelled-while-queued job
        never consumes its tenant's quota, no matter who wins."""
        burst = 512.0
        table = TenantTable([
            TenantSpec(name="t", rate=1000.0, burst=burst)])
        queue = FairQueue(capacity=8, tenants=table, clock=frozen_clock)
        started = []

        for i in range(300):
            job = make_job(i, tenant="t")
            queue.put_nowait(job)
            barrier = threading.Barrier(2)

            def dispatcher():
                barrier.wait()
                # the job is already queued, so timeout=0 never misses
                # a live job — it only returns None when cancel won
                got = queue.get(timeout=0.0)
                if got is not None and got.start():
                    started.append(got)

            def canceller():
                barrier.wait()
                job.cancel()

            threads = [threading.Thread(target=dispatcher),
                       threading.Thread(target=canceller)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        bucket = queue._lanes["t"].bucket
        assert bucket.available() == pytest.approx(burst - len(started))


class TestLifecycle:
    def test_close_without_drain_fails_queued_jobs(self):
        from repro.server import protocol

        queue = FairQueue(capacity=8)
        jobs = [make_job(i) for i in range(3)]
        for job in jobs:
            queue.put_nowait(job)
        queue.close(drain=False)
        for job in jobs:
            assert job.error[0] == protocol.SHUTTING_DOWN
        assert queue.finished()
        assert queue.get(timeout=0.0) is None

    def test_depth_by_tenant_and_saturation(self):
        table = TenantTable([TenantSpec(name="a"), TenantSpec(name="b")])
        queue = FairQueue(capacity=10, tenants=table)
        queue.put_nowait(make_job("a0", tenant="a"))
        queue.put_nowait(make_job("a1", tenant="a"))
        queue.put_nowait(make_job("b0", tenant="b"))
        assert queue.depth() == 3
        assert queue.depth_by_tenant() == {"a": 2, "b": 1}
        assert queue.saturation() == pytest.approx(0.3)
