"""Brownout ladder: hysteresis, shed decisions, warm-set LRU."""

import pytest

from repro.qos import BrownoutController, TenantSpec, WarmSet


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWarmSet:
    def test_membership_tracks_adds(self):
        warm = WarmSet(capacity=8)
        warm.add("k1")
        assert "k1" in warm
        assert "k2" not in warm

    def test_evicts_least_recently_used(self):
        warm = WarmSet(capacity=2)
        warm.add("a")
        warm.add("b")
        warm.add("c")
        assert "a" not in warm
        assert "b" in warm and "c" in warm

    def test_lookup_refreshes_recency(self):
        warm = WarmSet(capacity=2)
        warm.add("a")
        warm.add("b")
        assert "a" in warm  # touch: a is now the most recent
        warm.add("c")
        assert "a" in warm
        assert "b" not in warm

    def test_readd_refreshes_recency(self):
        warm = WarmSet(capacity=2)
        warm.add("a")
        warm.add("b")
        warm.add("a")
        warm.add("c")
        assert "b" not in warm and "a" in warm

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            WarmSet(capacity=0)


def make_controller(clock, **kwargs):
    defaults = dict(enter_saturation=0.85, exit_saturation=0.5,
                    hold_s=1.0, clock=clock)
    defaults.update(kwargs)
    return BrownoutController(**defaults)


def escalate(controller, clock, target_level):
    """Drive the ladder up by sustained saturation."""
    controller.update(0.95)  # arm the timer
    while controller.level < target_level:
        clock.advance(1.0)
        controller.update(0.95)
    assert controller.level == target_level


class TestHysteresis:
    def test_spike_shorter_than_hold_does_not_escalate(self):
        clock = FakeClock()
        controller = make_controller(clock)
        assert controller.update(0.95) == 0
        clock.advance(0.5)
        assert controller.update(0.95) == 0  # held only 0.5s of 1.0s

    def test_sustained_pressure_climbs_one_rung_per_hold(self):
        clock = FakeClock()
        controller = make_controller(clock)
        controller.update(0.95)
        clock.advance(1.0)
        assert controller.update(0.95) == 1
        # the timer re-arms: the next rung needs its own full hold
        clock.advance(0.5)
        assert controller.update(0.95) == 1
        clock.advance(0.5)
        assert controller.update(0.95) == 2

    def test_ladder_tops_out_at_level_two(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 2)
        for _ in range(5):
            clock.advance(1.0)
            assert controller.update(0.95) == 2

    def test_recovery_needs_sustained_low_saturation(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 1)
        controller.update(0.1)  # arm the exit timer
        clock.advance(0.5)
        assert controller.update(0.1) == 1
        clock.advance(0.5)
        assert controller.update(0.1) == 0

    def test_dead_band_holds_level_and_resets_timers(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 1)
        # saturation between exit (0.5) and enter (0.85): no movement,
        # and the partial exit progress is discarded
        controller.update(0.1)
        clock.advance(0.9)
        assert controller.update(0.7) == 1
        controller.update(0.1)
        clock.advance(0.9)
        assert controller.update(0.1) == 1  # timer restarted at the dip
        clock.advance(0.2)
        assert controller.update(0.1) == 0

    def test_escalations_counter(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 2)
        assert controller.snapshot() == {"level": 2, "escalations": 2}

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            make_controller(FakeClock(), enter_saturation=0.4,
                            exit_saturation=0.5)


LOW = TenantSpec(name="free", priority="low")
NORMAL = TenantSpec(name="anon", priority="normal")
HIGH = TenantSpec(name="gold", priority="high")


class TestDecide:
    def test_level_zero_admits_everyone(self):
        controller = make_controller(FakeClock())
        for spec in (LOW, NORMAL, HIGH):
            for warm in (True, False):
                assert controller.decide(spec, warm=warm) is None

    def test_level_one_sheds_only_low_priority(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 1)
        assert controller.decide(LOW, warm=True) == "low_priority"
        assert controller.decide(LOW, warm=False) == "low_priority"
        assert controller.decide(NORMAL, warm=False) is None
        assert controller.decide(HIGH, warm=False) is None

    def test_level_two_serves_warm_and_high_only(self):
        clock = FakeClock()
        controller = make_controller(clock)
        escalate(controller, clock, 2)
        assert controller.decide(LOW, warm=True) == "low_priority"
        assert controller.decide(NORMAL, warm=True) is None
        assert controller.decide(NORMAL, warm=False) == "cold"
        # high-priority traffic survives the deepest brownout cold
        assert controller.decide(HIGH, warm=False) is None
