"""Retry-budget accounting: bounded retry amplification."""

import pytest

from repro.qos import RetryBudget


class TestSpend:
    def test_initial_balance_covers_early_retries(self):
        budget = RetryBudget(ratio=0.1, initial=3.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_denials_are_counted(self):
        budget = RetryBudget(ratio=0.1, initial=0.0)
        assert budget.denied == 0
        assert not budget.try_spend()
        assert not budget.try_spend()
        assert budget.denied == 2

    def test_partial_credit_cannot_buy_a_retry(self):
        budget = RetryBudget(ratio=0.1, initial=0.0)
        for _ in range(9):
            budget.record_request()
        assert budget.balance() == pytest.approx(0.9)
        assert not budget.try_spend()


class TestEarn:
    def test_requests_earn_ratio_credits(self):
        # 0.25 is exact in binary, so four deposits make exactly 1.0
        budget = RetryBudget(ratio=0.25, initial=0.0)
        for _ in range(4):
            budget.record_request()
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_steady_state_amplification_is_bounded_by_ratio(self):
        budget = RetryBudget(ratio=0.1, initial=0.0)
        retries = 0
        for _ in range(1000):
            budget.record_request()
            if budget.try_spend():
                retries += 1
        # at most ~10% of requests can be retried, ever
        assert retries <= 100

    def test_balance_caps_at_max(self):
        budget = RetryBudget(ratio=1.0, initial=0.0, max_balance=5.0)
        for _ in range(50):
            budget.record_request()
        assert budget.balance() == pytest.approx(5.0)

    def test_initial_is_clamped_to_max(self):
        budget = RetryBudget(initial=500.0, max_balance=20.0)
        assert budget.balance() == pytest.approx(20.0)


class TestValidation:
    def test_rejects_negative_ratio(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)

    def test_rejects_nonpositive_max_balance(self):
        with pytest.raises(ValueError):
            RetryBudget(max_balance=0.0)
