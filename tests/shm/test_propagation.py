"""Phase 1: shared-memory region declaration and pointer propagation."""

import pytest

from repro.core.config import AnalysisConfig
from repro.errors import AnnotationError
from repro.ir import Load
from repro.shm import ShmAnalysis
from tests.conftest import front


BASE = """
typedef struct { double v; int flag; } R;
R *alpha;
R *beta;
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(7, 2 * sizeof(R), 0666), 0, 0);
    alpha = (R *) cursor;
    beta = (R *) (cursor + sizeof(R));
    /***SafeFlow Annotation
        assume(shmvar(alpha, sizeof(R)));
        assume(shmvar(beta, sizeof(R)));
        assume(noncore(beta)) /***/
}
"""


def shm_of(source: str) -> ShmAnalysis:
    program = front(source)
    return ShmAnalysis(program, AnalysisConfig()).run()


class TestRegionDeclaration:
    def test_regions_created(self):
        shm = shm_of(BASE)
        assert set(shm.regions) == {"alpha", "beta"}

    def test_sizes_evaluated(self):
        shm = shm_of(BASE)
        assert shm.regions["alpha"].size == 16

    def test_noncore_flag(self):
        shm = shm_of(BASE)
        assert shm.regions["beta"].noncore
        assert shm.regions["alpha"].core

    def test_element_type_resolved(self):
        shm = shm_of(BASE)
        assert shm.regions["alpha"].element_type.sizeof() == 16
        assert shm.regions["alpha"].element_count == 1

    def test_init_function_recorded(self):
        shm = shm_of(BASE)
        assert shm.init_functions == {"initShm"}
        assert shm.regions["beta"].init_function == "initShm"

    def test_shmvar_outside_shminit_rejected(self):
        with pytest.raises(AnnotationError):
            shm_of("""
                typedef struct { int v; } R;
                R *p;
                void notinit(void)
                /***SafeFlow Annotation assume(shmvar(p, sizeof(R))) /***/
                { }
            """)

    def test_noncore_without_shmvar_rejected(self):
        with pytest.raises(AnnotationError):
            shm_of("""
                typedef struct { int v; } R;
                R *p;
                void initShm(void)
                /***SafeFlow Annotation
                    shminit;
                    assume(noncore(p)) /***/
                { }
            """)

    def test_array_region_element_count(self):
        shm = shm_of("""
            double *samples;
            void initShm(void)
            /***SafeFlow Annotation shminit /***/
            {
                samples = (double *) shmat(shmget(7, 64, 0666), 0, 0);
                /***SafeFlow Annotation
                    assume(shmvar(samples, 8 * sizeof(double))) /***/
            }
        """)
        assert shm.regions["samples"].element_count == 8


class TestPointerPropagation:
    def test_load_of_region_global_seeds(self):
        source = BASE + """
            double read_it(void) { return beta->v; }
        """
        shm = shm_of(source)
        func = shm.module.get_function("read_it")
        loads = [i for i in func.instructions() if isinstance(i, Load)]
        ptr_load = loads[0]          # load @beta
        assert shm.regions_of(func, ptr_load) == frozenset({"beta"})

    def test_propagates_through_arguments(self):
        source = BASE + """
            double helper(R *r) { return r->v; }
            double top(void) { return helper(beta); }
        """
        shm = shm_of(source)
        helper = shm.module.get_function("helper")
        assert shm.arg_regions[helper][0] == frozenset({"beta"})

    def test_propagates_through_returns(self):
        source = BASE + """
            R *select(int which) {
                if (which) return alpha;
                return beta;
            }
            double top(int w) { return select(w)->v; }
        """
        shm = shm_of(source)
        top = shm.module.get_function("top")
        loads = [i for i in top.instructions() if isinstance(i, Load)]
        field_load = [l for l in loads if l.type.is_float][0]
        regions = shm.regions_of(top, field_load.pointer)
        assert regions == frozenset({"alpha", "beta"})

    def test_phi_merges_regions(self):
        source = BASE + """
            double pick(int c) {
                R *p;
                if (c) p = alpha; else p = beta;
                return p->v;
            }
        """
        shm = shm_of(source)
        func = shm.module.get_function("pick")
        loads = [i for i in func.instructions()
                 if isinstance(i, Load) and i.type.is_float]
        assert shm.regions_of(func, loads[0].pointer) == frozenset(
            {"alpha", "beta"}
        )

    def test_cast_and_arithmetic_keep_regions(self):
        source = BASE + """
            int peek(void) {
                char *raw;
                raw = (char *) beta;
                return *(raw + 4);
            }
        """
        shm = shm_of(source)
        func = shm.module.get_function("peek")
        loads = [i for i in func.instructions()
                 if isinstance(i, Load) and i.type.is_integer]
        assert "beta" in shm.regions_of(func, loads[0].pointer)

    def test_local_pointers_not_shared(self):
        source = BASE + """
            double local(void) {
                double x;
                double *p;
                p = &x;
                return *p;
            }
        """
        shm = shm_of(source)
        func = shm.module.get_function("local")
        for inst in func.instructions():
            if isinstance(inst, Load):
                assert shm.regions_of(func, inst.pointer) == frozenset()

    def test_recursive_functions_stabilize(self):
        source = BASE + """
            double walk(R *r, int depth) {
                if (depth == 0) return r->v;
                return walk(r, depth - 1);
            }
            double top(void) { return walk(beta, 3); }
        """
        shm = shm_of(source)
        walk = shm.module.get_function("walk")
        assert shm.arg_regions[walk][0] == frozenset({"beta"})


class TestMonitorAssumes:
    def test_parameter_assume_resolved(self):
        source = BASE + """
            double mon(R *r)
            /***SafeFlow Annotation assume(core(r, 0, sizeof(R))) /***/
            { return r->v; }
            double top(void) { return mon(beta); }
        """
        shm = shm_of(source)
        assumes = shm.monitor_assumes["mon"]
        assert assumes[0].is_parameter
        assert assumes[0].parameter_index == 0
        assert assumes[0].size == 16

    def test_global_assume_resolved(self):
        source = BASE + """
            double mon(void)
            /***SafeFlow Annotation assume(core(beta, 0, sizeof(R))) /***/
            { return beta->v; }
        """
        shm = shm_of(source)
        assert not shm.monitor_assumes["mon"][0].is_parameter

    def test_non_spanning_global_assume_is_ineffective(self):
        source = BASE + """
            double mon(void)
            /***SafeFlow Annotation assume(core(beta, 0, 4)) /***/
            { return beta->v; }
        """
        shm = shm_of(source)
        assert "mon" not in shm.monitor_assumes
        assert any("ineffective" in issue.message for issue in shm.init_issues)

    def test_noncore_descriptor_collected(self):
        source = BASE + """
            int handle(int sock)
            /***SafeFlow Annotation assume(noncore(sock)) /***/
            { return sock; }
        """
        shm = shm_of(source)
        assert shm.noncore_descriptors["handle"] == {"sock"}
