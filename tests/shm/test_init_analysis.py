"""Static InitCheck: symbolic interpretation of shminit functions."""

import pytest

from repro.shm import InitInterpreter, SymbolicPointer, check_init_layout
from repro.shm.model import SharedRegion
from tests.conftest import front


INIT_TEMPLATE = """
typedef struct {{ double a; double b; int c; }} R;   /* 24 bytes (padded) */
R *first;
R *second;
void initShm(void)
{{
    void *base;
    int shmid;
    shmid = shmget(7, {total}, 0666);
    base = shmat(shmid, 0, 0);
    first = (R *) base;
    second = first + {offset_elems};
}}
"""


def interpret(total="2 * sizeof(R)", offset_elems=1):
    program = front(INIT_TEMPLATE.format(total=total,
                                         offset_elems=offset_elems))
    func = program.module.get_function("initShm")
    interp = InitInterpreter(func)
    interp.run()
    return interp


class TestInterpreter:
    def test_first_region_at_offset_zero(self):
        interp = interpret()
        ptr = interp.globals["first"]
        assert isinstance(ptr, SymbolicPointer)
        assert ptr.offset == 0

    def test_pointer_arithmetic_offsets(self):
        interp = interpret(offset_elems=1)
        assert interp.globals["second"].offset == 24

    def test_larger_stride(self):
        interp = interpret(offset_elems=3)
        assert interp.globals["second"].offset == 72

    def test_same_segment(self):
        interp = interpret()
        assert (interp.globals["first"].segment
                == interp.globals["second"].segment)

    def test_segment_size_from_shmget(self):
        interp = interpret()
        seg = interp.globals["first"].segment
        assert interp.segment_sizes[seg] == 48

    def test_char_cursor_arithmetic(self):
        program = front("""
            typedef struct { double a; double b; } R;  /* 16 bytes */
            R *x;
            R *y;
            void initShm(void)
            {
                char *cursor;
                cursor = (char *) shmat(shmget(7, 32, 0666), 0, 0);
                x = (R *) cursor;
                cursor = cursor + sizeof(R);
                y = (R *) cursor;
            }
        """)
        interp = InitInterpreter(program.module.get_function("initShm"))
        interp.run()
        assert interp.globals["x"].offset == 0
        assert interp.globals["y"].offset == 16


class TestLayoutCheck:
    def _check(self, offset_elems, sizes, total="2 * sizeof(R)"):
        program = front(INIT_TEMPLATE.format(total=total,
                                             offset_elems=offset_elems))
        func = program.module.get_function("initShm")
        regions = [
            SharedRegion("first", sizes[0], init_function="initShm"),
            SharedRegion("second", sizes[1], init_function="initShm"),
        ]
        issues, placements = check_init_layout(func, regions)
        return issues, placements

    def test_clean_layout(self):
        issues, placements = self._check(1, (24, 24))
        assert issues == []
        assert placements["second"].offset == 24

    def test_overlap_detected(self):
        # first declared too large: [0, 30) overlaps second [24, 48)
        issues, _ = self._check(1, (30, 24), total="72")
        assert any("overlap" in issue.message for issue in issues)

    def test_region_exceeding_segment_detected(self):
        issues, _ = self._check(1, (24, 48))
        assert any("exceeds" in issue.message for issue in issues)

    def test_zero_offset_overlap(self):
        issues, _ = self._check(0, (24, 24), total="48")
        assert any("overlap" in issue.message for issue in issues)

    def test_unresolvable_placement_degrades_gracefully(self):
        program = front("""
            typedef struct { int v; } R;
            R *p;
            int pick(void);
            void initShm(void)
            {
                char *cursor;
                cursor = (char *) shmat(shmget(7, 64, 0666), 0, 0);
                cursor = cursor + pick();   /* unknown offset */
                p = (R *) cursor;
            }
        """)
        func = program.module.get_function("initShm")
        issues, placements = check_init_layout(
            func, [SharedRegion("p", 4, init_function="initShm")]
        )
        assert issues == []
        assert placements["p"] is None
