"""The fast-kernel layer must be invisible in results.

Interned taints, the memoized bounds solver and the sparse outer
fixpoint are all pure performance work: every observable report must be
byte-identical to the reference (dense, uncached) computation. These
tests pin that down directly — algebraic laws for the taint lattice,
fresh-solve cross-checks for the solver cache on randomized systems,
and whole-report comparisons for the sparse engine.
"""

import pickle
import random
from fractions import Fraction

import pytest

from repro import SafeFlow
from repro.core.config import AnalysisConfig
from repro.corpus import generate_core
from repro.restrictions.solver import (
    Constraint,
    _can_violate_bounds_fresh,
    can_violate_bounds,
    solver_cache_stats,
)
from repro.valueflow.taint import SAFE, Taint, TaintSource, taint_cache_stats


def _src(region, line=1):
    return TaintSource(region=region, function="f", filename="t.c", line=line)


# ----------------------------------------------------------------------
# taint interning
# ----------------------------------------------------------------------

class TestTaintInterning:
    def test_equal_source_sets_are_the_same_object(self):
        a = Taint(frozenset({_src("r1")}), frozenset({_src("r2")}))
        b = Taint(frozenset({_src("r1")}), frozenset({_src("r2")}))
        assert a is b

    def test_safe_is_interned(self):
        assert Taint() is SAFE

    def test_join_identity_and_absorption(self):
        t = Taint(frozenset({_src("r1")}))
        assert t.join(t) is t
        assert t.join(SAFE) is t
        assert SAFE.join(t) is t

    def test_join_commutative_and_idempotent(self):
        a = Taint(frozenset({_src("r1")}), frozenset({_src("r2")}))
        b = Taint(frozenset({_src("r3")}))
        ab = a.join(b)
        assert ab is b.join(a)
        assert ab.join(a) is ab
        assert ab.data == a.data | b.data
        assert ab.control == a.control

    def test_join_associative(self):
        a = Taint(frozenset({_src("r1")}))
        b = Taint(frozenset({_src("r2")}))
        c = Taint(frozenset(), frozenset({_src("r3")}))
        assert a.join(b).join(c) is a.join(b.join(c))

    def test_join_memo_hit_counted(self):
        a = Taint(frozenset({_src("rh1")}))
        b = Taint(frozenset({_src("rh2")}))
        a.join(b)  # prime (miss or hit, depending on history)
        before = taint_cache_stats()["taint_join_hits"]
        a.join(b)
        assert taint_cache_stats()["taint_join_hits"] == before + 1

    def test_pickle_round_trip_preserves_identity(self):
        t = Taint(frozenset({_src("r1")}), frozenset({_src("r2")}))
        clone = pickle.loads(pickle.dumps(t))
        assert clone is t

    def test_pickle_inside_containers_preserves_identity(self):
        # the summary store pickles whole record structures holding
        # taints; every unpickled taint must re-enter the intern table
        t1 = Taint(frozenset({_src("r1")}))
        t2 = t1.join(Taint(frozenset(), frozenset({_src("r2")})))
        payload = {"cells": [("c1", t1), ("c2", t2)], "ret": t2}
        clone = pickle.loads(pickle.dumps(payload))
        assert clone["cells"][0][1] is t1
        assert clone["cells"][1][1] is t2
        assert clone["ret"] is t2

    def test_as_control_demotes_and_caches(self):
        t = Taint(frozenset({_src("r1")}), frozenset({_src("r2")}))
        demoted = t.as_control()
        assert demoted.data == frozenset()
        assert demoted.control == t.data | t.control
        assert t.as_control() is demoted
        assert SAFE.as_control() is SAFE

    def test_summary_store_round_trip_is_byte_identical(self, tmp_path):
        program = generate_core(chain_depth=3, monitored_regions=2)
        config = AnalysisConfig(
            summary_mode=True, cache_dir=str(tmp_path)
        )
        cold = SafeFlow(config).analyze_source(program.source, name="g")
        warm = SafeFlow(config).analyze_source(program.source, name="g")
        assert warm.stats.summary_cache_hits > 0
        assert warm.render(verbose=True) == cold.render(verbose=True)
        assert warm.witness_graphs == cold.witness_graphs


# ----------------------------------------------------------------------
# solver verdict cache
# ----------------------------------------------------------------------

def _random_system(rng):
    """A small random affine bounds query over named variables."""
    variables = [f"v{i}" for i in range(rng.randint(1, 3))]
    index_coeffs = {
        v: Fraction(rng.randint(-3, 3)) for v in variables
    }
    index_const = rng.randint(-4, 4)
    bound = rng.randint(1, 16)
    context = []
    for _ in range(rng.randint(0, 4)):
        coeffs = {v: Fraction(rng.randint(-2, 2)) for v in variables}
        context.append(Constraint.ge_zero(coeffs, rng.randint(-8, 8)))
    return index_coeffs, index_const, bound, context


class TestSolverCache:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cached_verdict_matches_fresh_solve(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            coeffs, const, bound, context = _random_system(rng)
            fresh = _can_violate_bounds_fresh(coeffs, const, bound, context)
            assert can_violate_bounds(coeffs, const, bound, context) == fresh
            # second call must come from the cache and agree
            before = solver_cache_stats()["solver_cache_hits"]
            assert can_violate_bounds(coeffs, const, bound, context) == fresh
            assert solver_cache_stats()["solver_cache_hits"] == before + 1

    def test_renamed_variables_share_a_verdict(self):
        # feasibility is invariant under renaming: distinct variable
        # objects with the same structure must hit the same cache entry
        c1 = {"a": Fraction(1)}
        c2 = {"b": Fraction(1)}
        ctx1 = [Constraint.ge_zero({"a": Fraction(1)}, -2)]
        ctx2 = [Constraint.ge_zero({"b": Fraction(1)}, -2)]
        v1 = can_violate_bounds(c1, 0, 8, ctx1)
        before = solver_cache_stats()["solver_cache_hits"]
        v2 = can_violate_bounds(c2, 0, 8, ctx2)
        assert v1 == v2
        assert solver_cache_stats()["solver_cache_hits"] == before + 1


# ----------------------------------------------------------------------
# sparse fixpoint vs dense reference
# ----------------------------------------------------------------------

_WORKLOADS = [
    dict(),
    dict(chain_depth=6, monitored_regions=2),
    dict(pipeline_stages=8),
    dict(pipeline_stages=10, filler_functions=6, chain_depth=4,
         call_fanout=3),
]


class TestSparseFixpoint:
    @pytest.mark.parametrize("kwargs", _WORKLOADS)
    def test_reports_byte_identical_to_dense(self, kwargs):
        program = generate_core(**kwargs)
        reports = {}
        for sparse in (True, False):
            config = AnalysisConfig(sparse_fixpoint=sparse)
            reports[sparse] = SafeFlow(config).analyze_source(
                program.source, name="g"
            )
        sparse_r, dense_r = reports[True], reports[False]
        assert sparse_r.render(verbose=True) == dense_r.render(verbose=True)
        assert sparse_r.witness_graphs == dense_r.witness_graphs
        assert (sparse_r.stats.contexts_analyzed
                == dense_r.stats.contexts_analyzed)

    def test_pipeline_depth_drives_outer_iterations(self):
        program = generate_core(pipeline_stages=8)
        report = SafeFlow().analyze_source(program.source)
        assert report.stats.kernel_counters["outer_iterations"] >= 8

    def test_sparse_reanalyzes_fewer_bodies(self):
        program = generate_core(pipeline_stages=10, filler_functions=8)
        counts = {}
        for sparse in (True, False):
            config = AnalysisConfig(sparse_fixpoint=sparse)
            report = SafeFlow(config).analyze_source(program.source)
            counts[sparse] = report.stats.kernel_counters["bodies_analyzed"]
        assert counts[True] < counts[False]


# ----------------------------------------------------------------------
# profiling surface
# ----------------------------------------------------------------------

class TestProfiling:
    def test_profile_collects_hotspots_without_changing_report(self):
        program = generate_core(chain_depth=3)
        plain = SafeFlow().analyze_source(program.source, name="g")
        profiled = SafeFlow(AnalysisConfig(profile=True)).analyze_source(
            program.source, name="g"
        )
        assert profiled.render(verbose=True) == plain.render(verbose=True)
        assert profiled.stats.hotspots
        record = next(iter(profiled.stats.hotspots.values()))
        assert {"calls", "seconds", "self_seconds"} <= set(record)
        assert plain.stats.hotspots == {}

    def test_kernel_counters_always_collected(self):
        program = generate_core()
        report = SafeFlow().analyze_source(program.source)
        counters = report.stats.kernel_counters
        assert counters["bodies_analyzed"] > 0
        assert counters["outer_iterations"] >= 1
        assert "taint_join_hits" in counters
        assert "solver_cache_misses" in counters
        payload = report.to_json()
        assert payload["stats"]["kernel_counters"] == counters

    def test_stats_instructions_lazy_but_stable(self):
        program = generate_core(filler_functions=3)
        report = SafeFlow().analyze_source(program.source)
        first = report.stats.instructions
        assert first > 0
        assert report.stats.instructions == first
        # pickling (batch workers ship reports) forces the count
        clone = pickle.loads(pickle.dumps(report.stats))
        assert clone.instructions == first
