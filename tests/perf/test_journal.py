"""Durable batch checkpoint/resume: the write-ahead result journal.

Covers the WAL frame format round-trip, torn/corrupt-tail truncation,
fingerprint-gated reuse on resume, fail-fast abort results, and the
in-process kill-resume byte-identity guarantee (the subprocess SIGKILL
variant lives in the chaos harness).
"""

import os
import pickle

import pytest

from repro.core.config import AnalysisConfig
from repro.errors import JournalError
from repro.perf.batch import BatchJob, BatchResult, run_batch
from repro.perf.journal import (
    FRAME_MAGIC,
    BatchJournal,
    job_fingerprint,
    run_journaled,
)

from tests.perf.test_cache_correctness import SIMPLE

BROKEN = "int main(void) { return 0;"  # unbalanced brace: parse error


def _write_jobs(tmp_path, count=3):
    jobs = []
    for i in range(count):
        path = tmp_path / f"prog{i}.c"
        path.write_text(SIMPLE.replace("a * 2.0", f"a * {i + 2}.0"))
        jobs.append(BatchJob(name=f"prog{i}", files=(str(path),)))
    return jobs


def _config():
    return AnalysisConfig(cache_dir=None)


def _renders(outcome):
    return {r.name: r.report.render(verbose=True)
            for r in outcome.results if r.ok}


class TestJournalFormat:
    def test_round_trip(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        outcome = run_journaled(jobs, config, journal_path, max_workers=1)
        assert outcome.ok
        assert outcome.resumed_jobs == 0

        replay = BatchJournal(journal_path).replay()
        assert replay.truncated_records == 0
        assert sorted(replay.results) == [j.name for j in jobs]
        assert replay.header is not None and replay.header["version"] == 1
        for job in jobs:
            fingerprint, result = replay.results[job.name]
            assert fingerprint == job_fingerprint(job, config)
            assert result.ok and result.report is not None

    def test_missing_journal_replays_empty(self, tmp_path):
        replay = BatchJournal(str(tmp_path / "absent.journal")).replay()
        assert replay.results == {}
        assert replay.truncated_records == 0

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, _config(), journal_path, max_workers=1)
        intact = os.path.getsize(journal_path)
        with open(journal_path, "ab") as f:
            f.write(FRAME_MAGIC + b"\x00\x00\x01\x00" + b"torn")  # short
        replay = BatchJournal(journal_path).replay()
        assert replay.truncated_records == 1
        assert len(replay.results) == len(jobs)
        # the damaged tail is physically gone
        assert os.path.getsize(journal_path) == intact

    def test_corrupt_payload_stops_replay_at_frame_boundary(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, _config(), journal_path, max_workers=1)
        # flip bytes inside the last frame's sealed payload
        size = os.path.getsize(journal_path)
        with open(journal_path, "r+b") as f:
            f.seek(size - 32)
            f.write(b"\xff" * 16)
        replay = BatchJournal(journal_path).replay()
        assert replay.truncated_records == 1
        # everything before the damaged frame is preserved
        assert len(replay.results) == len(jobs) - 1

    def test_garbage_file_recovers_to_empty(self, tmp_path):
        journal_path = str(tmp_path / "garbage.journal")
        with open(journal_path, "wb") as f:
            f.write(b"this is not a journal at all")
        replay = BatchJournal(journal_path).replay()
        assert replay.results == {}
        assert replay.truncated_records == 1
        assert os.path.getsize(journal_path) == 0

    def test_append_requires_open(self, tmp_path):
        journal = BatchJournal(str(tmp_path / "j"))
        with pytest.raises(JournalError):
            journal.append_result("x", "fp", BatchResult(name="x"))


class TestResume:
    def test_resume_skips_matching_fingerprints(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        first = run_journaled(jobs, config, journal_path, max_workers=1)
        second = run_journaled(jobs, config, journal_path, resume=True,
                               max_workers=1)
        assert second.resumed_jobs == len(jobs)
        assert _renders(second) == _renders(first)

    def test_resume_reruns_changed_inputs(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, config, journal_path, max_workers=1)
        # edit one job's source: its fingerprint no longer matches
        path = jobs[1].files[0]
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text.replace("a * 3.0", "a * 9.0"))
        outcome = run_journaled(jobs, config, journal_path, resume=True,
                                max_workers=1)
        assert outcome.resumed_jobs == len(jobs) - 1
        # the re-run result superseded the stale record
        replay = BatchJournal(journal_path).replay()
        fingerprint, result = replay.results[jobs[1].name]
        assert fingerprint == job_fingerprint(jobs[1], config)
        assert "a * 9.0" not in SIMPLE  # sanity: the edit was real

    def test_resume_reruns_failed_jobs(self, tmp_path):
        jobs = _write_jobs(tmp_path, count=2)
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        jobs.append(BatchJob(name="bad", files=(str(bad),)))
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        first = run_journaled(jobs, config, journal_path, max_workers=1)
        assert not first.ok
        # failed results are never journaled, so resume re-runs them
        bad.write_text(SIMPLE)
        second = run_journaled(jobs, config, journal_path, resume=True,
                               max_workers=1)
        assert second.resumed_jobs == 2
        assert second.ok

    def test_kill_resume_byte_identity_in_process(self, tmp_path):
        """Simulated crash: journal the first two jobs, then resume
        over the full job list — the merged output must be
        byte-identical to an uninterrupted run."""
        jobs = _write_jobs(tmp_path, count=4)
        config = _config()
        uninterrupted = run_journaled(
            jobs, config, str(tmp_path / "ref.journal"), max_workers=1)

        journal_path = str(tmp_path / "crashed.journal")
        partial = run_journaled(jobs[:2], config, journal_path,
                                max_workers=1)
        assert partial.ok  # "the machine died" right after job 2
        resumed = run_journaled(jobs, config, journal_path, resume=True,
                                max_workers=1)
        assert resumed.resumed_jobs == 2
        assert [r.name for r in resumed.results] == [j.name for j in jobs]
        assert _renders(resumed) == _renders(uninterrupted)

    def test_truncation_is_counted_in_stats(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, config, journal_path, max_workers=1)
        # damage the last frame, forcing one job to be recomputed
        size = os.path.getsize(journal_path)
        with open(journal_path, "r+b") as f:
            f.truncate(size - 10)
        outcome = run_journaled(jobs, config, journal_path, resume=True,
                                max_workers=1)
        assert outcome.journal_truncated_records == 1
        assert outcome.resumed_jobs == len(jobs) - 1
        recovered = [r.report.stats.journal_recovered_records
                     for r in outcome.results if r.ok]
        assert sum(recovered) == 1

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        jobs = _write_jobs(tmp_path)
        config = _config()
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, config, journal_path, max_workers=1)
        # without resume, the journal is rewritten from scratch
        outcome = run_journaled(jobs[:1], config, journal_path,
                                max_workers=1)
        assert outcome.resumed_jobs == 0
        replay = BatchJournal(journal_path).replay()
        assert sorted(replay.results) == [jobs[0].name]


class TestFailFast:
    def test_fail_fast_aborts_remaining_jobs(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        jobs = [BatchJob(name="bad", files=(str(bad),))]
        jobs += _write_jobs(tmp_path, count=2)
        outcome = run_batch(jobs, _config(), max_workers=1,
                            fail_fast=True)
        assert not outcome.results[0].ok
        aborted = [r for r in outcome.results if r.code == "aborted"]
        assert len(aborted) == 2
        assert all("--fail-fast" in r.error for r in aborted)

    def test_keep_going_default_runs_everything(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        jobs = [BatchJob(name="bad", files=(str(bad),))]
        jobs += _write_jobs(tmp_path, count=2)
        outcome = run_batch(jobs, _config(), max_workers=1)
        assert sum(1 for r in outcome.results if r.ok) == 2

    def test_aborted_jobs_are_not_journaled(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        jobs = [BatchJob(name="bad", files=(str(bad),))]
        jobs += _write_jobs(tmp_path, count=2)
        journal_path = str(tmp_path / "batch.journal")
        run_journaled(jobs, _config(), journal_path, fail_fast=True,
                      max_workers=1)
        replay = BatchJournal(journal_path).replay()
        assert replay.results == {}
