"""Cache correctness: cached paths must change *nothing* but speed.

Warm runs must render byte-identical reports to cold runs on every
corpus system, and both caches must invalidate when any key ingredient
changes: the source bytes (including ``#include`` dependencies), the
preprocessor ``defines``, or the analysis flags of the
:class:`AnalysisConfig` (the config hash is part of the cache key).
"""

import dataclasses

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import SYSTEM_KEYS, load_system


SIMPLE = r"""
typedef struct { double v; int flag; } R;
R *nc;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(noncore(nc)) /***/
}

double scale(double a) { return a * 2.0; }

int main(void)
{
    double x;
    double y;
    initShm();
    x = nc->v;
    y = scale(x);
    /***SafeFlow Annotation assert(safe(y)); /***/
    emit(y);
    return 0;
}
"""


def _strip_stats(payload):
    payload = dict(payload)
    payload.pop("stats", None)
    return payload


@pytest.mark.parametrize("key", SYSTEM_KEYS)
def test_warm_equals_cold_on_corpus(tmp_path, key):
    """Baseline (no cache), cold (empty cache) and warm (populated
    cache) runs must render byte-identically on every Table-1 system."""
    system = load_system(key)
    baseline = system.analyze(AnalysisConfig(summary_mode=True))
    cached_config = AnalysisConfig(
        summary_mode=True, cache_dir=str(tmp_path / "cache")
    )
    cold = system.analyze(cached_config)
    warm = system.analyze(cached_config)

    assert cold.render(verbose=True) == baseline.render(verbose=True)
    assert warm.render(verbose=True) == baseline.render(verbose=True)
    assert _strip_stats(warm.to_json()) == _strip_stats(cold.to_json())

    assert cold.stats.frontend_cache_hits == 0
    assert cold.stats.frontend_cache_misses > 0
    assert warm.stats.frontend_cache_hits > 0
    assert warm.stats.frontend_cache_misses == 0
    assert warm.stats.summary_cache_hits > 0


def test_frontend_cache_hits_and_source_invalidation(tmp_path):
    src = tmp_path / "prog.c"
    src.write_text(SIMPLE)
    flow = SafeFlow(AnalysisConfig(cache_dir=str(tmp_path / "cache")))

    cold = flow.analyze_files([str(src)])
    assert cold.stats.frontend_cache_misses == 1
    assert cold.stats.frontend_cache_hits == 0

    warm = flow.analyze_files([str(src)])
    assert warm.stats.frontend_cache_hits == 1
    assert warm.stats.frontend_cache_misses == 0
    assert warm.render(verbose=True) == cold.render(verbose=True)

    # editing the source busts the entry
    src.write_text(SIMPLE.replace("a * 2.0", "a * 3.0"))
    edited = flow.analyze_files([str(src)])
    assert edited.stats.frontend_cache_misses == 1
    assert edited.stats.frontend_cache_hits == 0


def test_frontend_cache_include_dependency_invalidation(tmp_path):
    """The cache key hashes the listed files; ``#include`` dependencies
    are caught by digest re-validation of everything the preprocessor
    actually read."""
    header = tmp_path / "scale.h"
    header.write_text("double scale(double a) { return a * 2.0; }\n")
    src = tmp_path / "prog.c"
    src.write_text('#include "scale.h"\n' + SIMPLE.replace(
        "double scale(double a) { return a * 2.0; }", ""
    ))
    flow = SafeFlow(AnalysisConfig(
        cache_dir=str(tmp_path / "cache"),
        include_dirs=(str(tmp_path),),
    ))

    flow.analyze_files([str(src)])
    warm = flow.analyze_files([str(src)])
    assert warm.stats.frontend_cache_hits == 1

    header.write_text("double scale(double a) { return a * 4.0; }\n")
    edited = flow.analyze_files([str(src)])
    assert edited.stats.frontend_cache_hits == 0
    assert edited.stats.frontend_cache_misses == 1


def test_frontend_cache_defines_invalidation(tmp_path):
    src = tmp_path / "prog.c"
    src.write_text(SIMPLE)
    cache = str(tmp_path / "cache")

    flow = SafeFlow(AnalysisConfig(cache_dir=cache))
    flow.analyze_files([str(src)])
    assert flow.analyze_files([str(src)]).stats.frontend_cache_hits == 1

    defined = SafeFlow(AnalysisConfig(cache_dir=cache,
                                      defines={"EXTRA": "1"}))
    report = defined.analyze_files([str(src)])
    assert report.stats.frontend_cache_hits == 0
    assert report.stats.frontend_cache_misses == 1


def test_summary_cache_config_flag_invalidation(tmp_path):
    """Analysis flags are part of the summary key: flipping one must
    miss; flipping it back must hit the original entries again."""
    config = AnalysisConfig(summary_mode=True,
                            cache_dir=str(tmp_path / "cache"))
    flow = SafeFlow(config)

    cold = flow.analyze_source(SIMPLE, name="prog")
    assert cold.stats.summary_cache_hits == 0
    assert cold.stats.summary_cache_misses > 0
    warm = flow.analyze_source(SIMPLE, name="prog")
    assert warm.stats.summary_cache_hits > 0
    assert warm.stats.summary_cache_misses == 0

    flipped = SafeFlow(dataclasses.replace(
        config, track_control_dependence=False
    )).analyze_source(SIMPLE, name="prog")
    assert flipped.stats.summary_cache_hits == 0
    assert flipped.stats.summary_cache_misses > 0

    back = flow.analyze_source(SIMPLE, name="prog")
    assert back.stats.summary_cache_hits > 0
    assert back.stats.summary_cache_misses == 0


def test_corrupt_cache_files_fail_open(tmp_path):
    """Garbage in any cache file must read as a miss, never a crash.

    The in-memory program memo is disabled here: this test corrupts
    the *disk* tier and asserts its fail-open behavior, which a memory
    hit would mask (the memo has its own suite in test_progmemo.py).
    """
    cache = tmp_path / "cache"
    config = AnalysisConfig(summary_mode=True, cache_dir=str(cache),
                            frontend_memo=False)
    flow = SafeFlow(config)
    good = flow.analyze_source(SIMPLE, name="prog")

    for victim in list(cache.rglob("*.pkl")):
        victim.write_text("GARBAGE\n")
    corrupted = flow.analyze_source(SIMPLE, name="prog")
    assert corrupted.render(verbose=True) == good.render(verbose=True)
    assert corrupted.stats.frontend_cache_hits == 0
    assert corrupted.stats.summary_cache_hits == 0

    # the rewrite heals the cache: next run hits again
    healed = flow.analyze_source(SIMPLE, name="prog")
    assert healed.stats.frontend_cache_hits == 1
    assert healed.stats.summary_cache_hits > 0


def test_cache_control_fields_do_not_change_results(tmp_path):
    """cache_dir / frontend_cache / summary_cache are excluded from all
    fingerprints, so toggling them never alters the report."""
    plain = SafeFlow(AnalysisConfig(summary_mode=True))
    cached = SafeFlow(AnalysisConfig(
        summary_mode=True,
        cache_dir=str(tmp_path / "cache"),
        frontend_cache=False,
        summary_cache=False,
    ))
    a = plain.analyze_source(SIMPLE, name="prog")
    b = cached.analyze_source(SIMPLE, name="prog")
    assert a.render(verbose=True) == b.render(verbose=True)
    assert b.stats.frontend_cache_misses == 0
    assert b.stats.summary_cache_misses == 0
