"""The in-memory Program memo (the tier above the disk IR cache):
exclusive leases, staleness against edited file dependencies,
LRU bounds, cache-dir scoping, and report byte-identity through the
driver. The disk tier's own correctness suite is
tests/perf/test_cache_correctness.py."""

from types import SimpleNamespace

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.perf.progmemo import ProgramMemo, program_memo

SIMPLE = """
int source(void);
void sink(int x);
int main(void) {
    int v = source();
    if (v > 0) sink(v);
    return 0;
}
"""


def fake_program(paths=()):
    """Just enough object graph for dependency extraction."""
    unit = SimpleNamespace(source=SimpleNamespace(files=list(paths)))
    return SimpleNamespace(units=[unit])


@pytest.fixture(autouse=True)
def clean_global_memo():
    program_memo().clear()
    yield
    program_memo().clear()


class TestLease:
    def test_acquire_empty_is_miss(self):
        memo = ProgramMemo()
        assert memo.acquire("k") is None
        assert memo.counters()["misses"] == 1

    def test_release_then_acquire_returns_same_object(self):
        memo = ProgramMemo()
        prog = fake_program()
        assert memo.release("k", prog) is True
        assert memo.acquire("k") is prog
        assert memo.counters() == {
            "hits": 1, "misses": 0, "stale_evictions": 0, "pooled": 0}

    def test_lease_is_exclusive(self):
        # a pooled program is handed to exactly one acquirer
        memo = ProgramMemo()
        memo.release("k", fake_program())
        assert memo.acquire("k") is not None
        assert memo.acquire("k") is None

    def test_none_key_is_never_memoized(self):
        memo = ProgramMemo()
        assert memo.release(None, fake_program()) is False
        assert memo.acquire(None) is None

    def test_zero_capacity_disables(self):
        memo = ProgramMemo(capacity=0)
        assert memo.release("k", fake_program()) is False
        assert memo.acquire("k") is None


class TestStaleness:
    def test_edited_dependency_is_evicted(self, tmp_path):
        dep = tmp_path / "dep.h"
        dep.write_text("#define LIMIT 10\n")
        memo = ProgramMemo()
        memo.release("k", fake_program([str(dep)]))
        dep.write_text("#define LIMIT 99\n")
        assert memo.acquire("k") is None
        assert memo.counters()["stale_evictions"] == 1

    def test_unchanged_dependency_is_served(self, tmp_path):
        dep = tmp_path / "dep.h"
        dep.write_text("#define LIMIT 10\n")
        memo = ProgramMemo()
        prog = fake_program([str(dep)])
        memo.release("k", prog)
        assert memo.acquire("k") is prog

    def test_unreadable_dependency_is_not_memoizable(self, tmp_path):
        memo = ProgramMemo()
        prog = fake_program([str(tmp_path / "gone.h")])
        (tmp_path / "gone.h").write_text("int x;")
        (tmp_path / "gone.h").unlink()
        # missing files are skipped (inline-source temp paths), so the
        # program pools with no deps; a file that exists but cannot be
        # hashed would return None — exercised via digest failure
        assert memo.release("k", prog) is True


class TestBounds:
    def test_capacity_evicts_least_recently_used_key(self):
        memo = ProgramMemo(capacity=2)
        a, b, c = fake_program(), fake_program(), fake_program()
        memo.release("a", a)
        memo.release("b", b)
        memo.release("c", c)  # evicts the oldest key's entry ("a")
        assert memo.counters()["pooled"] == 2
        assert memo.acquire("a") is None
        assert memo.acquire("b") is b
        assert memo.acquire("c") is c

    def test_clear_empties_pools(self):
        memo = ProgramMemo()
        memo.release("k", fake_program())
        memo.clear()
        assert memo.counters()["pooled"] == 0
        assert memo.acquire("k") is None


class TestDriverIntegration:
    def test_warm_repeat_is_a_frontend_hit(self, tmp_path):
        hits_before = program_memo().counters()["hits"]
        flow = SafeFlow(AnalysisConfig(cache_dir=str(tmp_path / "c")))
        cold = flow.analyze_source(SIMPLE, filename="m.c")
        warm = flow.analyze_source(SIMPLE, filename="m.c")
        assert warm.render() == cold.render()
        assert program_memo().counters()["hits"] > hits_before

    def test_memo_is_report_preserving(self, tmp_path):
        memo_on = SafeFlow(AnalysisConfig(cache_dir=str(tmp_path / "on")))
        first = memo_on.analyze_source(SIMPLE, filename="m.c")
        second = memo_on.analyze_source(SIMPLE, filename="m.c")
        memo_off = SafeFlow(AnalysisConfig(
            cache_dir=str(tmp_path / "off"), frontend_memo=False))
        reference = memo_off.analyze_source(SIMPLE, filename="m.c")
        assert first.render() == second.render() == reference.render()

    def test_disjoint_cache_dirs_do_not_share_programs(self, tmp_path):
        SafeFlow(AnalysisConfig(
            cache_dir=str(tmp_path / "one"))).analyze_source(
                SIMPLE, filename="m.c")
        hits_before = program_memo().counters()["hits"]
        SafeFlow(AnalysisConfig(
            cache_dir=str(tmp_path / "two"))).analyze_source(
                SIMPLE, filename="m.c")
        assert program_memo().counters()["hits"] == hits_before

    def test_edited_file_misses_through_the_driver(self, tmp_path):
        unit = tmp_path / "unit.c"
        unit.write_text(SIMPLE)
        flow = SafeFlow(AnalysisConfig(cache_dir=str(tmp_path / "c")))
        before = flow.analyze_files([str(unit)], name="unit")
        assert before.stats.functions == 1
        unit.write_text("int helper(void) { return 1; }\n" + SIMPLE)
        edited = flow.analyze_files([str(unit)], name="unit")
        assert edited.stats.functions == 2, \
            "memo must not serve the stale program"

    def test_disabled_by_config(self, tmp_path):
        hits_before = program_memo().counters()["hits"]
        flow = SafeFlow(AnalysisConfig(
            cache_dir=str(tmp_path / "c"), frontend_memo=False))
        flow.analyze_source(SIMPLE, filename="m.c")
        flow.analyze_source(SIMPLE, filename="m.c")
        counters = program_memo().counters()
        assert counters["hits"] == hits_before and counters["pooled"] == 0
