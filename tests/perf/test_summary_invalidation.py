"""Exact summary invalidation: one edit busts exactly the edited
function and its transitive callers, nothing else.

Uses the engine directly so ``ValueFlowAnalysis.summary_events`` (the
ordered (function, kind, hit|miss) trace) is observable.
"""

from repro.core.config import AnalysisConfig
from repro.frontend import load_source
from repro.perf.summary_store import SummaryStore
from repro.shm.propagation import ShmAnalysis
from repro.valueflow.engine import ValueFlowAnalysis


PROGRAM = r"""
typedef struct { double v; int flag; } R;
R *nc;
void emit(double v);
void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    nc = (R *) shmat(shmget(7, sizeof(R), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(nc, sizeof(R)));
        assume(noncore(nc)) /***/
}

double leaf(double a) { return a * 2.0; }
double helper(double a) { return leaf(a) + 1.0; }
double other(double a) { return a - 3.0; }

int main(void)
{
    double x;
    double y;
    double z;
    initShm();
    x = nc->v;
    y = helper(x);
    z = other(x);
    /***SafeFlow Annotation assert(safe(y)); /***/
    emit(y + z);
    return 0;
}
"""

EDITED = PROGRAM.replace("return a * 2.0;", "return a * 2.5;")


def _run(source: str, store_path: str) -> ValueFlowAnalysis:
    config = AnalysisConfig(summary_mode=True)
    program = load_source(source, filename="prog.c")
    shm = ShmAnalysis(program, config).run()
    store = SummaryStore(store_path)
    return ValueFlowAnalysis(program, shm, config,
                             summary_store=store).run()


def _missed(vf: ValueFlowAnalysis):
    return {func for func, _, outcome in vf.summary_events
            if outcome == "miss"}


def _hit(vf: ValueFlowAnalysis):
    return {func for func, _, outcome in vf.summary_events
            if outcome == "hit"}


def test_warm_run_replays_everything(tmp_path):
    store_path = str(tmp_path / "summaries.pkl")
    cold = _run(PROGRAM, store_path)
    assert _hit(cold) == set()
    assert {"main", "helper", "leaf", "other"} <= _missed(cold)

    warm = _run(PROGRAM, store_path)
    assert _missed(warm) == set()
    assert _hit(warm) == _missed(cold)


def test_one_line_edit_busts_exactly_the_affected_closure(tmp_path):
    """Editing ``leaf`` must re-analyze leaf + its transitive callers
    (helper, main) and *only* those; ``other`` keeps replaying."""
    store_path = str(tmp_path / "summaries.pkl")
    _run(PROGRAM, store_path)

    edited = _run(EDITED, store_path)
    assert _missed(edited) == {"leaf", "helper", "main"}
    assert "other" in _hit(edited)

    # and the edited entries were persisted: a repeat run is all-hit
    warm = _run(EDITED, store_path)
    assert _missed(warm) == set()


def test_reports_identical_across_cold_and_warm(tmp_path):
    store_path = str(tmp_path / "summaries.pkl")
    cold = _run(PROGRAM, store_path)
    warm = _run(PROGRAM, store_path)
    assert warm.warnings == cold.warnings
    assert {k: v for k, v in warm._failures.items()} \
        == {k: v for k, v in cold._failures.items()}
