"""The shared latency helpers (percentiles, rolling quantiles) and the
amortized gc-pause exit policy behind the serving warm path."""

import gc
import threading

import pytest

from repro.perf import gcpause
from repro.perf.gcpause import gc_paused
from repro.perf.latency import LatencyRecorder, RollingLatency, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 90) == 9.0
        assert percentile(values, 99) == 10.0
        assert percentile(values, 100) == 10.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_empty(self):
        assert percentile([], 50) is None


class TestLatencyRecorder:
    def test_summary_shape_and_ordering(self):
        rec = LatencyRecorder()
        for ms in range(1, 101):
            rec.record(ms / 1000.0)
        summary = rec.summary()
        assert summary["count"] == 100
        assert summary["min_s"] == pytest.approx(0.001)
        assert summary["max_s"] == pytest.approx(0.100)
        assert (summary["min_s"] <= summary["p50_s"] <= summary["p90_s"]
                <= summary["p99_s"] <= summary["max_s"])

    def test_empty_summary(self):
        assert LatencyRecorder().summary()["count"] == 0


class TestRollingLatency:
    def test_window_bounds_memory(self):
        rolling = RollingLatency(window=16)
        for i in range(1000):
            rolling.observe(float(i))
        quantiles = rolling.quantiles()
        assert quantiles["window"] == 16   # occupancy, bounded
        assert quantiles["count"] == 1000  # all-time observations
        # only the newest window survives
        assert quantiles["p50_s"] >= 984.0

    def test_thread_safety_smoke(self):
        rolling = RollingLatency(window=64)
        threads = [
            threading.Thread(
                target=lambda: [rolling.observe(0.001) for _ in range(500)])
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        quantiles = rolling.quantiles()
        assert quantiles["count"] == 2000
        assert quantiles["window"] == 64


class TestAmortizedGcPause:
    @pytest.fixture(autouse=True)
    def reset_full_collect_stamp(self):
        before = gcpause._LAST_FULL
        yield
        gcpause._LAST_FULL = before

    def test_gc_disabled_inside_and_restored(self):
        assert gc.isenabled()
        with gc_paused():
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_first_exit_collects_fully(self, monkeypatch):
        gcpause._LAST_FULL = 0.0
        collected = []
        real_collect = gc.collect
        monkeypatch.setattr(
            gc, "collect",
            lambda gen=2: collected.append(gen) or real_collect(gen))
        with gc_paused():
            pass
        assert collected == [2]

    def test_rapid_exits_amortize_to_gen0(self, monkeypatch):
        collected = []
        real_collect = gc.collect
        monkeypatch.setattr(
            gc, "collect",
            lambda gen=2: collected.append(gen) or real_collect(gen))
        with gc_paused():
            pass
        # within FULL_COLLECT_INTERVAL, further exits collect only the
        # young generation — the serving warm path's 60%-of-latency fix
        with gc_paused():
            pass
        with gc_paused():
            pass
        assert collected[1:] == [0, 0]

    def test_interval_elapse_triggers_full_collect(self, monkeypatch):
        collected = []
        real_collect = gc.collect
        monkeypatch.setattr(
            gc, "collect",
            lambda gen=2: collected.append(gen) or real_collect(gen))
        with gc_paused():
            pass
        gcpause._LAST_FULL -= gcpause.FULL_COLLECT_INTERVAL + 1
        with gc_paused():
            pass
        assert collected[-1] == 2

    def test_reentrant_nesting_collects_once(self, monkeypatch):
        collected = []
        monkeypatch.setattr(gc, "collect",
                            lambda gen=2: collected.append(gen) or 0)
        with gc_paused():
            with gc_paused():
                assert not gc.isenabled()
            # inner exit must not collect; the outer one does
            assert collected == []
        assert len(collected) == 1

    def test_inactive_is_a_no_op(self):
        with gc_paused(active=False):
            assert gc.isenabled()
