"""Batch driver semantics: ordering, equality with the sequential
path, single-job failure isolation, and timeouts."""

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.perf.batch import BatchJob

from tests.perf.test_cache_correctness import SIMPLE

BROKEN = "int main(void) { return 0;"  # unbalanced brace: parse error


def _write_jobs(tmp_path, count=3):
    jobs = []
    for i in range(count):
        path = tmp_path / f"prog{i}.c"
        # vary a constant so each job is a distinct program
        path.write_text(SIMPLE.replace("a * 2.0", f"a * {i + 2}.0"))
        jobs.append(BatchJob(name=f"prog{i}", files=(str(path),)))
    return jobs


@pytest.mark.parametrize("workers", [1, 3])
def test_batch_matches_sequential_reports(tmp_path, workers):
    jobs = _write_jobs(tmp_path)
    flow = SafeFlow(AnalysisConfig(summary_mode=True))
    sequential = [
        flow.analyze_files(list(job.files), name=job.name) for job in jobs
    ]

    outcome = flow.analyze_batch(jobs, max_workers=workers)
    assert outcome.ok
    assert [r.name for r in outcome.results] == [j.name for j in jobs]
    for result, expected in zip(outcome.results, sequential):
        assert result.report.render(verbose=True) \
            == expected.render(verbose=True)


def test_batch_accepts_name_files_pairs(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SIMPLE)
    outcome = SafeFlow().analyze_batch([("pair", [str(path)])],
                                       max_workers=1)
    assert outcome.ok
    assert outcome.results[0].name == "pair"
    assert outcome.results[0].report is not None


@pytest.mark.parametrize("workers", [1, 2])
def test_single_job_failure_does_not_disturb_siblings(tmp_path, workers):
    good = tmp_path / "good.c"
    good.write_text(SIMPLE)
    bad = tmp_path / "bad.c"
    bad.write_text(BROKEN)
    jobs = [
        BatchJob(name="good", files=(str(good),)),
        BatchJob(name="bad", files=(str(bad),)),
        BatchJob(name="missing", files=(str(tmp_path / "absent.c"),)),
    ]
    outcome = SafeFlow().analyze_batch(jobs, max_workers=workers)

    assert not outcome.ok
    by_name = {r.name: r for r in outcome.results}
    assert by_name["good"].ok
    assert by_name["good"].report.render()
    assert not by_name["bad"].ok
    assert by_name["bad"].report is None
    assert by_name["bad"].error
    assert not by_name["missing"].ok


def test_batch_timeout_turns_stragglers_into_errors(tmp_path):
    jobs = _write_jobs(tmp_path, count=2)
    outcome = SafeFlow().analyze_batch(jobs, max_workers=2,
                                       timeout=0.000001)
    assert not outcome.ok
    assert all("timed out" in r.error for r in outcome.results)


def test_batch_job_level_overrides(tmp_path):
    """Per-job include_dirs/defines override the shared config."""
    header = tmp_path / "scale.h"
    header.write_text("double scale(double a) { return a * 2.0; }\n")
    src = tmp_path / "prog.c"
    src.write_text('#include "scale.h"\n' + SIMPLE.replace(
        "double scale(double a) { return a * 2.0; }", ""
    ))
    job = BatchJob(name="inc", files=(str(src),),
                   include_dirs=(str(tmp_path),))
    outcome = SafeFlow().analyze_batch([job], max_workers=1)
    assert outcome.ok, outcome.results[0].error


class TestPlatformFallback:
    """Platforms without fork (or without process creation at all)
    still get correct batch results through spawn or the in-process
    sequential path."""

    def test_resolve_mp_context_prefers_fork(self):
        from repro.perf.batch import resolve_mp_context
        context = resolve_mp_context()
        assert context is not None
        assert context.get_start_method() in ("fork", "spawn")

    def test_resolve_mp_context_falls_back_to_spawn(self, monkeypatch):
        import multiprocessing
        from repro.perf import batch as batch_mod

        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return real_get_context(method)

        monkeypatch.setattr(batch_mod.multiprocessing, "get_context",
                            no_fork)
        context = batch_mod.resolve_mp_context()
        assert context.get_start_method() == "spawn"

    def test_run_batch_sequential_when_no_context(self, tmp_path,
                                                  monkeypatch):
        from repro.perf import batch as batch_mod

        monkeypatch.setattr(batch_mod, "resolve_mp_context", lambda *a: None)
        jobs = _write_jobs(tmp_path)
        flow = SafeFlow(AnalysisConfig(summary_mode=True))
        sequential = [
            flow.analyze_files(list(job.files), name=job.name)
            for job in jobs
        ]
        outcome = flow.analyze_batch(jobs, max_workers=3)
        assert outcome.ok
        for result, expected in zip(outcome.results, sequential):
            assert result.report.render(verbose=True) \
                == expected.render(verbose=True)

    def test_run_batch_sequential_when_pool_creation_fails(
            self, tmp_path, monkeypatch):
        from repro.perf import batch as batch_mod

        def no_processes(*args, **kwargs):
            raise OSError("process creation forbidden")

        monkeypatch.setattr(batch_mod.concurrent.futures,
                            "ProcessPoolExecutor", no_processes)
        jobs = _write_jobs(tmp_path, count=2)
        outcome = SafeFlow().analyze_batch(jobs, max_workers=2)
        assert outcome.ok
        assert [r.name for r in outcome.results] == ["prog0", "prog1"]

    def test_failure_detail_carries_traceback_error_stays_concise(
            self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text(BROKEN)
        outcome = SafeFlow().analyze_batch(
            [BatchJob(name="bad", files=(str(bad),))], max_workers=1)
        result = outcome.results[0]
        assert not result.ok
        assert "Traceback" not in result.error
        assert "\n" not in result.error
        assert result.detail and "Traceback" in result.detail
