#!/usr/bin/env python3
"""Re-measure everything EXPERIMENTS.md reports and print the tables.

Run after changing the analysis or the corpus:

    python scripts/regen_experiments.py
"""

import difflib
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnalysisConfig, SafeFlow  # noqa: E402
from repro.corpus import generate_core, load_all, load_system  # noqa: E402
from repro.corpus.running_example import RUNNING_EXAMPLE  # noqa: E402
from repro.reporting.render import render_table, table1_comparison  # noqa: E402
from repro.runtime import RuntimeFlowTracker  # noqa: E402


def section(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> int:
    section("Table 1")
    systems = load_all()
    results = []
    for system in systems:
        start = time.perf_counter()
        report = system.analyze()
        elapsed = time.perf_counter() - start
        results.append((system, report))
        print(f"{system.key:18s} analyzed in {1e3 * elapsed:6.1f} ms  "
              f"({report.stats.contexts_analyzed} contexts)")
    print()
    print(table1_comparison(results))

    section("Running example (Figures 2/3)")
    report = SafeFlow().analyze_source(RUNNING_EXAMPLE, name="fig2")
    print(report.render(verbose=True))

    section("Porting effort")
    for key in ("ip", "double_ip"):
        system = load_system(key)
        original = system.original_files[0].read_text().splitlines()
        ported = next(
            p for p in system.core_files
            if p.name == system.original_files[0].name
        ).read_text().splitlines()
        diff = list(difflib.unified_diff(original, ported, n=0))
        added = sum(1 for l in diff if l.startswith("+")
                    and not l.startswith("+++"))
        removed = sum(1 for l in diff if l.startswith("-")
                      and not l.startswith("---"))
        paper = system.paper
        print(f"{key:10s} +{added}/-{removed} "
              f"(paper: {paper.source_changes_lines} lines, "
              f"{paper.source_changes_diff}-line diff, "
              f"{paper.source_changes_functions} function)")

    section("Scaling")
    rows = []
    for filler in (0, 20, 40, 80):
        program = generate_core(filler_functions=filler)
        start = time.perf_counter()
        SafeFlow().analyze_source(program.source)
        rows.append([program.loc, f"{1e3 * (time.perf_counter() - start):.1f} ms"])
    print(render_table(["LoC", "analysis time"], rows))

    section("Run-time overhead")
    steps = 100_000

    def plain(n):
        total = 0.0
        for i in range(n):
            total = 0.9 * (0.37 * (0.001 * (i % 97)) + 0.5 * total)
        return total

    def tracked(tracker, n):
        total = tracker.read_core(0.0)
        gain = tracker.read_core(0.37)
        for i in range(n):
            reading = tracker.monitorized(
                tracker.read_noncore("s", 0.001 * (i % 97))
            )
            total = tracker.combine(
                lambda g, r, t: 0.9 * (g * r + 0.5 * t), gain, reading, total
            )
            tracker.assert_safe(total)
        return total.value

    start = time.perf_counter()
    plain(steps)
    base = time.perf_counter() - start
    start = time.perf_counter()
    tracked(RuntimeFlowTracker(), steps)
    instrumented = time.perf_counter() - start
    print(f"uninstrumented : {1e6 * base / steps:7.3f} us/iter")
    print(f"tracked        : {1e6 * instrumented / steps:7.3f} us/iter "
          f"({instrumented / base:.1f}x)")

    section("Ablations")
    for key in ("ip", "generic_simplex", "double_ip"):
        system = load_system(key)
        full = system.analyze()
        nocd = system.analyze(AnalysisConfig(track_control_dependence=False))
        summ = system.analyze(AnalysisConfig(summary_mode=True))
        para = system.analyze(AnalysisConfig(unannotated_shm_is_core=False))
        print(
            f"{key:18s} full={len(full.errors):2d} deps | "
            f"no-ctl={len(nocd.errors):2d} | "
            f"summaries identical={full.counts() == summ.counts()} | "
            f"paranoid warnings={len(para.warnings)}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
