#!/usr/bin/env python3
"""CI ``recovery-gate``: the frontend recovery ladder must keep earning
its keep on the vendored real-world corpus (``examples/wild``).

Three assertions, each a regression the ladder has actually prevented:

1. **Salvage gap** — running the corpus through ``safeflow batch
   --keep-going`` (strict front end, fail-closed skips only) loses
   most units; the same corpus under ``--recover`` must lose strictly
   fewer, and no more than ``MAX_LADDER_LOST`` (today: only the
   deliberately unsalvageable ``vendor_blob.c``).
2. **Fail-closed floor** — the ladder never upgrades a verdict: every
   job that is not byte-for-byte strict-clean stays ``degraded``; only
   the strict-clean unit may ``pass``; and the batch exits 1 (mixed),
   never 0.
3. **Chaos drill** — with ``SAFEFLOW_FAULTS`` scheduling a
   ``crash_tier`` fault against each tier in turn, a crashing tier
   counts as that tier *failing*: units fall through to later tiers or
   are lost, jobs still complete (no driver error, no ``ok=False``),
   and killing a tier never *increases* the pass count.

Run from the repository root::

    python scripts/recovery_gate.py
"""

import glob
import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
WILD = sorted(glob.glob(os.path.join(ROOT, "examples", "wild", "*.c")))

#: lost units the full ladder is allowed (vendor_blob.c is unsalvageable
#: by design); raising this number means the ladder regressed
MAX_LADDER_LOST = 1

failures = []


def check(cond, message):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {message}")
    if not cond:
        failures.append(message)


def run_batch(extra_args, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    env.pop("SAFEFLOW_FAULTS", None)
    if faults is not None:
        env["SAFEFLOW_FAULTS"] = json.dumps(faults)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "batch", *WILD,
         "--json", *extra_args],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    try:
        payload = json.loads(proc.stdout)
    except ValueError:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"batch produced no JSON (exit {proc.returncode})")
    return proc.returncode, payload


def lost_units(payload):
    """Units no front end produced: fail-closed KIND_UNIT records."""
    n = 0
    for job in payload["jobs"]:
        report = job["report"] or {}
        n += sum(1 for u in report.get("degraded", ())
                 if u.get("kind") == "unit")
    return n


def verdicts(payload):
    return {job["name"]: (job["report"] or {}).get("verdict")
            for job in payload["jobs"]}


def main():
    if not WILD:
        raise SystemExit("examples/wild is empty — nothing to gate on")

    print(f"recovery-gate over {len(WILD)} wild units")

    print("strict-only (--keep-going):")
    strict_code, strict = run_batch(["--keep-going"])
    strict_lost = lost_units(strict)
    check(all(job["ok"] for job in strict["jobs"]),
          "every strict job completes (fail-closed, not tool failure)")
    check(strict_lost >= len(WILD) - 2,
          f"strict front end loses most of the corpus "
          f"({strict_lost}/{len(WILD)} units lost)")

    print("full ladder (--recover):")
    ladder_code, ladder = run_batch(["--recover"])
    ladder_lost = lost_units(ladder)
    ladder_verdicts = verdicts(ladder)
    check(all(job["ok"] for job in ladder["jobs"]),
          "every ladder job completes")
    check(ladder_lost < strict_lost,
          f"ladder loses strictly fewer units "
          f"({ladder_lost} < {strict_lost})")
    check(ladder_lost <= MAX_LADDER_LOST,
          f"ladder lost-unit count {ladder_lost} within budget "
          f"{MAX_LADDER_LOST}")
    passes = [n for n, v in ladder_verdicts.items() if v == "pass"]
    check(passes == ["pwm_duty.c"],
          f"only the strict-clean unit passes (got {passes})")
    check(all(v in ("pass", "degraded") for v in ladder_verdicts.values()),
          "no wild unit produces a hard failure verdict")
    check(ladder_code == 1 and strict_code == 1,
          f"mixed batches exit 1 (strict={strict_code}, "
          f"ladder={ladder_code})")

    print("chaos drill (crash_tier per tier):")
    for tier in ("gnu", "prelude", "cleanup", "salvage"):
        code, chaos = run_batch(["--recover"],
                                faults={"crash_tier": tier})
        chaos_verdicts = verdicts(chaos)
        chaos_passes = [n for n, v in chaos_verdicts.items()
                        if v == "pass"]
        check(all(job["ok"] for job in chaos["jobs"]),
              f"crash_tier={tier}: jobs complete, never a driver error")
        check(set(chaos_passes) <= set(passes),
              f"crash_tier={tier}: a crashing tier never certifies "
              f"more units")
        check(lost_units(chaos) >= ladder_lost,
              f"crash_tier={tier}: a crashing tier never salvages "
              f"more units ({lost_units(chaos)} lost)")

    if failures:
        print(f"\nrecovery-gate: {len(failures)} assertion(s) failed")
        return 1
    print("\nrecovery-gate: all assertions held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
