#!/usr/bin/env python3
"""End-to-end smoke test of ``safeflow serve`` as a real subprocess.

Starts the daemon via ``python -m repro.cli serve`` (ephemeral port,
metrics snapshot on exit), round-trips every corpus system through
``SafeFlowClient``, checks each response is byte-identical to the
in-process cold analysis, scrapes the metrics plane, asks the daemon
to shut down over RPC, and verifies a clean exit plus a well-formed
``--metrics-json`` file. Exits nonzero on the first discrepancy.

Run via ``make serve-smoke``.
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core.config import AnalysisConfig          # noqa: E402
from repro.core.driver import SafeFlow                # noqa: E402
from repro.corpus import SYSTEM_KEYS, load_system     # noqa: E402
from repro.server import SafeFlowClient               # noqa: E402

LISTEN_RE = re.compile(r"listening on .*?:(\d+)")


def fail(message):
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    tmp = Path(tempfile.mkdtemp(prefix="safeflow-smoke-"))
    metrics_path = tmp / "metrics.json"
    env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "2", "--summaries",
         "--cache-dir", str(tmp / "cache"),
         "--metrics-json", str(metrics_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO_ROOT),
    )
    try:
        line = proc.stdout.readline()
        match = LISTEN_RE.search(line)
        if not match:
            proc.kill()
            fail(f"no listening banner, got: {line!r}")
        port = int(match.group(1))
        print(f"serve-smoke: daemon up on port {port} (pid {proc.pid})")

        with SafeFlowClient(port=port, request_timeout=120.0) as client:
            if not client.ping():
                fail("ping did not answer")
            for key in SYSTEM_KEYS:
                system = load_system(key)
                files = [str(p) for p in system.core_files]
                cold = SafeFlow(AnalysisConfig(summary_mode=True)) \
                    .analyze_files(files, name=key)
                result = client.analyze(files=files, name=key)
                if result["render"] != cold.render():
                    fail(f"{key}: served report differs from cold analysis")
                print(f"serve-smoke: {key}: byte-identical "
                      f"({'PASS' if result['passed'] else 'FAIL'} as expected)")
            # warm repeat must show up in the metrics plane
            client.analyze(
                files=[str(p) for p in load_system("ip").core_files],
                name="ip")
            metrics = client.metrics()
            if metrics["cache"]["frontend_hits"] < 1:
                fail("no cache hits after a warm repeat")
            if metrics["analyses"]["completed"] != len(SYSTEM_KEYS) + 1:
                fail(f"unexpected completion count: {metrics['analyses']}")
            print(f"serve-smoke: metrics ok "
                  f"(completed={metrics['analyses']['completed']}, "
                  f"frontend_hits={metrics['cache']['frontend_hits']})")
            client.shutdown(drain=True)

        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not exit after shutdown RPC")
        if rc != 0:
            fail(f"daemon exited with {rc}:\n{proc.stdout.read()}")
        snapshot = json.loads(metrics_path.read_text())
        if snapshot["analyses"]["completed"] != len(SYSTEM_KEYS) + 1:
            fail("metrics snapshot file disagrees with scraped metrics")
        print("serve-smoke: clean shutdown, metrics snapshot written — OK")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
