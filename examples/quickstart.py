#!/usr/bin/env python3
"""Quickstart: annotate a core controller, analyze it, fix the bug.

This walks the SafeFlow workflow end to end on a miniature Simplex
core controller:

1. declare the shared-memory regions in an ``shminit`` function;
2. mark the monitoring function with ``assume(core(...))``;
3. assert the critical actuator output with ``assert(safe(...))``;
4. run the analysis, read the warning/error and its value-flow witness;
5. apply the paper's suggested fix and watch the report come back clean.

Run:  python examples/quickstart.py
"""

from repro import SafeFlow

BUGGY = r"""
typedef struct { double control; unsigned int seq; int valid; } Cmd;
typedef struct { double angle; double velocity; } Fb;

Cmd *ncCmd;    /* written by the non-core complex controller */
Fb  *fbBox;    /* feedback published by this core controller */

unsigned int lastSeq;

extern double readAngle(void);
extern double readVelocity(void);
extern void actuate(double u);

void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    char *cursor;
    cursor = (char *) shmat(shmget(0x42, sizeof(Cmd) + sizeof(Fb), 0666),
                            0, 0);
    ncCmd = (Cmd *) cursor;
    fbBox = (Fb *) (cursor + sizeof(Cmd));
    /***SafeFlow Annotation
        assume(shmvar(ncCmd, sizeof(Cmd)));
        assume(shmvar(fbBox, sizeof(Fb)));
        assume(noncore(ncCmd));
        assume(noncore(fbBox)) /***/
}

double safeControl(double angle, double velocity)
{
    return -(8.0 * angle + 1.5 * velocity);
}

double decision(Cmd *cmd, double fallback)
/***SafeFlow Annotation assume(core(cmd, 0, sizeof(Cmd))) /***/
{
    double v;
    unsigned int s;
    if (cmd->valid == 0) return fallback;
    s = cmd->seq;
    if (s == lastSeq) return fallback;
    lastSeq = s;
    v = cmd->control;
    if (v > 5.0 || v < -5.0) return fallback;
    /* BUG: recoverability is checked against the *shared* copy of the
     * feedback, which any non-core component could have overwritten */
    if (fbBox->angle * v > 0.0) return fallback;
    return v;
}

int main(void)
{
    double angle;
    double velocity;
    double fallback;
    double output;
    initShm();
    while (1) {
        angle = readAngle();
        velocity = readVelocity();
        fbBox->angle = angle;            /* publish for non-core */
        fbBox->velocity = velocity;
        fallback = safeControl(angle, velocity);
        output = decision(ncCmd, fallback);
        /***SafeFlow Annotation assert(safe(output)); /***/
        actuate(output);
    }
    return 0;
}
"""

# The paper's fix (§3.3): pass a local copy instead of the shared pointer.
FIXED = BUGGY.replace(
    "double decision(Cmd *cmd, double fallback)",
    "double decision(Cmd *cmd, double fallback, double localAngle)",
).replace(
    "if (fbBox->angle * v > 0.0) return fallback;",
    "if (localAngle * v > 0.0) return fallback;",
).replace(
    "output = decision(ncCmd, fallback);",
    "output = decision(ncCmd, fallback, angle);",
).replace(
    "/* BUG: recoverability is checked against the *shared* copy of the\n"
    "     * feedback, which any non-core component could have overwritten */",
    "/* FIXED: the check uses the locally sampled angle */",
)


def main() -> int:
    analyzer = SafeFlow()

    print("=" * 72)
    print("Analyzing the buggy core controller")
    print("=" * 72)
    report = analyzer.analyze_source(BUGGY, filename="quickstart.c",
                                     name="quickstart-buggy")
    print(report.render(verbose=True))
    assert not report.passed, "the bug should have been found"

    print()
    print("=" * 72)
    print("Analyzing the fixed controller (local feedback copy)")
    print("=" * 72)
    fixed_report = analyzer.analyze_source(FIXED, filename="quickstart.c",
                                           name="quickstart-fixed")
    print(fixed_report.render())
    assert fixed_report.passed, "the fix should satisfy safe value flow"
    print("\nSafe value flow holds: every non-core value is monitored "
          "before it can reach the actuator.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
