/*
 * gpio_attr.c -- GPIO bank driver in the GCC dialect: section/aligned
 * attributes on globals, __inline__ helpers, an __extension__ marker.
 * The strict parser rejects every one of them; the GNU tier normalizes
 * the dialect away (recovery tier: gnu).
 */

#define GPIO_BANKS 4

__attribute__((aligned(16))) unsigned int gpioShadow[GPIO_BANKS];

__attribute__((section(".fastdata"))) unsigned int gpioFaults;

static __inline__ unsigned int gpioMask(int pin)
{
    return 1u << (pin & 31);
}

__extension__ typedef unsigned long long gpio_stamp_t;

gpio_stamp_t lastEdgeStamp;

void __attribute__((noinline)) gpioSet(int bank, int pin)
{
    if (bank >= 0 && bank < GPIO_BANKS) {
        gpioShadow[bank] = gpioShadow[bank] | gpioMask(pin);
    } else {
        gpioFaults = gpioFaults + 1u;
    }
}

void gpioClear(int bank, int pin)
{
    if (bank >= 0 && bank < GPIO_BANKS) {
        gpioShadow[bank] = gpioShadow[bank] & ~gpioMask(pin);
    } else {
        gpioFaults = gpioFaults + 1u;
    }
}
