/*
 * legacy_warn.c -- hoisted from a 90s-era vendor BSP: CRLF line
 * endings, #warning build notes, #region editor folding directives
 * and a stray non-breaking space. The mini preprocessor refuses the
 * unknown directives; the cleanup tier blanks them, normalizes the
 * line endings and spaces out the non-ASCII byte
 * (recovery tier: cleanup).
 */

#warning "legacy board support: verify clock tree before flight"

#region fan control

#define FAN_STEPS 5

int fanStep;
int fanFault;

int fanAdvance(void)
{
    if (fanFault) {
        return fanStep;
    }
    if (fanStep < FAN_STEPS) {
        fanStep = fanStep + 1;
    }
    return fanStep;
}

void fanTrip(void)
{
    fanFault = 1;
    fanStep = 0;
}

#endregion
