/*
 * isr_vector.c -- timer interrupt handler with inline asm barriers,
 * as shipped by most silicon-vendor SDKs. The strict parser has no
 * asm production; the GNU tier blanks the asm statements (each one is
 * recorded in the unit's provenance) and keeps the surrounding control
 * flow (recovery tier: gnu).
 */

unsigned int isrCount;
unsigned int isrOverruns;
int isrBusy;

void timerIsr(void)
{
    if (isrBusy) {
        isrOverruns = isrOverruns + 1u;
        return;
    }
    isrBusy = 1;
    __asm__ __volatile__("dmb" ::: "memory");
    isrCount = isrCount + 1u;
    asm volatile("dsb");
    isrBusy = 0;
}

unsigned int isrSnapshot(void)
{
    unsigned int n;

    asm("cpsid i");
    n = isrCount;
    asm("cpsie i");
    return n;
}
