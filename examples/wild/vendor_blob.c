/*
 * vendor_blob.c -- truncated mid-download: the top level never closes
 * its brace and the tail is line noise. Nothing in the ladder can
 * reconstruct a translation unit from this; it stays a lost unit
 * (fail-closed KIND_UNIT record) even with every tier enabled.
 */

int blobState;

void blobInit(void)
{
    blobState = 1;

int blobPoll(void) {{
    return blobState ]]
%%%% 0x__ "unterminated
