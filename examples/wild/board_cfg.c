/*
 * board_cfg.c -- board configuration shim that includes a vendor
 * header this corpus does not ship (the usual state of vendored
 * firmware drops). Strict mode fails on the missing include; the
 * prelude tier skips it, records the skip in the unit's provenance,
 * and the remaining plain C parses (recovery tier: prelude).
 */

#include "board_hw_defs.h"

#define CFG_SLOTS 4

int cfgSlotUsed[CFG_SLOTS];
int cfgChecksum;

int cfgReserve(void)
{
    int i;

    for (i = 0; i < CFG_SLOTS; i = i + 1) {
        if (cfgSlotUsed[i] == 0) {
            cfgSlotUsed[i] = 1;
            return i;
        }
    }
    return -1;
}

void cfgRelease(int slot)
{
    if (slot >= 0 && slot < CFG_SLOTS) {
        cfgSlotUsed[slot] = 0;
    }
}

void cfgStamp(int value)
{
    cfgChecksum = cfgChecksum ^ value;
}
