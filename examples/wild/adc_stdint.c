/*
 * adc_stdint.c -- ADC sample conditioning written against <stdint.h>,
 * the single most common reason real firmware fails the strict front
 * end: uint16_t/uint32_t are unknown type names without the system
 * headers. The prelude tier resolves the includes against the bundled
 * fake declarations (recovery tier: prelude).
 */

#include <stdint.h>
#include <stddef.h>

#define ADC_CHANNELS 8

uint16_t adcRaw[ADC_CHANNELS];
uint32_t adcAccum[ADC_CHANNELS];
uint8_t adcReady;

uint16_t adcClamp(uint32_t sample)
{
    if (sample > (uint32_t) UINT16_MAX) {
        return UINT16_MAX;
    }
    return (uint16_t) sample;
}

void adcIngest(size_t channel, uint32_t sample)
{
    if (channel >= ADC_CHANNELS) {
        return;
    }
    adcAccum[channel] = adcAccum[channel] - (adcAccum[channel] >> 4);
    adcAccum[channel] = adcAccum[channel] + sample;
    adcRaw[channel] = adcClamp(adcAccum[channel] >> 4);
    adcReady = 1;
}
