/*
 * motor_mix.c -- thrust mixer with merge damage in one definition
 * (the classic half-resolved-conflict commit). No tier can make the
 * damaged function parse; the salvage tier drops exactly that
 * definition to a declaration (degraded, fail-closed) and the rest of
 * the unit analyzes normally (recovery tier: salvage).
 */

#define MOTORS 4

int mixOutput[MOTORS];
int mixSaturated;

int mixClamp(int v)
{
    if (v > 1000) {
        mixSaturated = 1;
        return 1000;
    }
    if (v < 0) {
        mixSaturated = 1;
        return 0;
    }
    return v;
}

int mixBlend(int throttle, int yaw)
{
    int out;
    out = throttle @@ yaw;
    return mixClamp(out;
}

void mixApply(int throttle, int yaw)
{
    int base;

    base = mixClamp(throttle);
    mixOutput[0] = mixClamp(base + yaw);
    mixOutput[1] = mixClamp(base - yaw);
    mixOutput[2] = mixClamp(base + yaw);
    mixOutput[3] = mixClamp(base - yaw);
}
