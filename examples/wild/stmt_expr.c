/*
 * stmt_expr.c -- rate limiter written against a Linux-kernel-style
 * macro header: statement expressions and typeof in the min/max/clamp
 * macros. The GNU tier rewrites both constructs into plain C
 * (recovery tier: gnu).
 */

#define rl_min(a, b) ({ typeof(a) _a = (a); typeof(b) _b = (b); \
                        _a < _b ? _a : _b; })
#define rl_max(a, b) ({ typeof(a) _a = (a); typeof(b) _b = (b); \
                        _a > _b ? _a : _b; })

int rateBudget;
int rateSpent;

int rateAllow(int cost)
{
    int room;

    room = rl_max(rateBudget - rateSpent, 0);
    if (cost > room) {
        return 0;
    }
    rateSpent = rateSpent + cost;
    return 1;
}

void rateReplenish(int amount)
{
    rateSpent = rl_min(rateSpent, rateBudget);
    rateSpent = rl_max(rateSpent - amount, 0);
}
