/*
 * pwm_duty.c -- PWM duty-cycle governor for the actuator bridge.
 * Plain ANSI C: the one unit in this corpus the strict front end
 * accepts unchanged (recovery tier: strict).
 */

#define PWM_PERIOD_TICKS 1000
#define DUTY_MAX         950
#define DUTY_MIN         50

int dutyNow;
int dutySetpoint;

int clampDuty(int d)
{
    if (d > DUTY_MAX) {
        return DUTY_MAX;
    }
    if (d < DUTY_MIN) {
        return DUTY_MIN;
    }
    return d;
}

int slewDuty(int current, int target)
{
    int step;

    step = target - current;
    if (step > 20) {
        step = 20;
    }
    if (step < -20) {
        step = -20;
    }
    return clampDuty(current + step);
}

void pwmTick(void)
{
    dutyNow = slewDuty(dutyNow, dutySetpoint);
}
