#!/usr/bin/env python3
"""Audit the three Table-1 control systems and compare with the paper.

Reproduces the paper's evaluation (§4): runs SafeFlow on the bundled
IP, Generic Simplex, and Double IP core components, prints the Table 1
comparison, and then walks through each of the five erroneous value
dependencies with its value-flow witness — the manual-triage workflow
the paper describes.

Run:  python examples/audit_corpus.py
"""

from repro.corpus import load_all
from repro.reporting.render import table1_comparison


def main() -> int:
    results = [(system, system.analyze()) for system in load_all()]

    print(table1_comparison(results))
    print()

    for system, report in results:
        print("=" * 72)
        print(f"{system.title} — error dependencies")
        print("=" * 72)
        for error in report.confirmed_errors:
            print(f"\n[ERROR] {error.message}")
            print(f"        at {error.location} in {error.function}")
            print("        value flow witness:")
            for step in error.witness:
                print(f"          {step}")
        if report.candidate_false_positives:
            print("\ncontrol-dependence reports for manual inspection "
                  "(§3.4.1):")
            for fp in report.candidate_false_positives:
                print(f"  [candidate FP] {fp.message}")
        print()

    mismatches = 0
    for system, report in results:
        counts = report.counts()
        paper = system.paper
        ok = (
            counts["errors"] == paper.error_dependencies
            and counts["warnings"] == paper.warnings
            and counts["false_positives"] == paper.false_positives
            and counts["annotation_lines"] == paper.annotation_lines
        )
        status = "MATCH" if ok else "MISMATCH"
        mismatches += 0 if ok else 1
        print(f"{system.key:16s} reproduction: {status}")
    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
