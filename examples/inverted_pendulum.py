#!/usr/bin/env python3
"""The Simplex inverted pendulum, dynamically: monitors at work.

Four scenarios around the system of Figure 1:

1. healthy complex controller — high performance, pendulum upright;
2. complex controller turns adversarial at t=1s — the Lyapunov
   envelope monitor rejects its outputs and the safety controller
   keeps the pendulum recoverable;
3. the same fault *plus* the feedback-rigging attack against a core
   that (incorrectly) trusts the shared feedback copy — the exact
   dependency SafeFlow flags statically in the Generic Simplex system —
   and the pendulum falls;
4. the fix: the core checks recoverability against its locally
   sampled state, and survives the same attack.

Run:  python examples/inverted_pendulum.py
"""

from repro.simplex import FeedbackOverwrite, pendulum_simplex


def sparkline(values, width=60):
    """Tiny ASCII plot of |angle| over time."""
    blocks = " .:-=+*#%@"
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(max(sampled), 1e-9)
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in sampled
    )


def run_scenario(label, **kwargs):
    system = pendulum_simplex(dt=0.01, **kwargs)
    trace = system.run(6.0)
    angles = [abs(float(s[2])) for s in trace.states]
    print(f"\n--- {label}")
    print(f"    |angle| over 6s:  [{sparkline(angles)}]")
    print(f"    complex in control: {100 * trace.complex_ratio:5.1f}%   "
          f"monitor rejections: {len(trace.rejections)}")
    print(f"    max envelope value: {trace.max_envelope_value:8.3f}   "
          f"(recoverable level {system.envelope.level:.3f})")
    verdict = "FELL" if system.plant.fallen else "upright"
    print(f"    outcome: pendulum {verdict}")
    return system, trace


def main() -> int:
    print("Simplex inverted pendulum — run-time monitoring demonstration")

    run_scenario("1. healthy complex controller")

    run_scenario(
        "2. adversarial complex controller at t=1s, monitor protecting",
        fault_time=1.0, fault_mode="reverse",
    )

    attack = [FeedbackOverwrite(start=1.0, region="feedback",
                                writer="complex")]
    rigged, _ = run_scenario(
        "3. + feedback rigging, core TRUSTS the shared copy (the bug)",
        fault_time=1.0, fault_mode="reverse", trusting_feedback=True,
        injections=attack,
    )

    fixed, _ = run_scenario(
        "4. + feedback rigging, core uses its LOCAL state (the fix)",
        fault_time=1.0, fault_mode="reverse", trusting_feedback=False,
        injections=[FeedbackOverwrite(start=1.0, region="feedback",
                                      writer="complex")],
    )

    print("\nAudit trail of scenario 3 (who wrote the feedback region):")
    for writer in rigged.shm.writers_of("feedback"):
        print(f"    writer: {writer}")
    print(
        "\nThe static analysis finds this dependency at development time\n"
        "(see examples/audit_corpus.py, Generic Simplex error #1) — no\n"
        "crash required."
    )
    return 0 if (fixed.plant.fallen is False and rigged.plant.fallen) else 1


if __name__ == "__main__":
    raise SystemExit(main())
