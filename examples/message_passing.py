#!/usr/bin/env python3
"""The §3.4.3 extension: safe value flow over message passing.

Shared memory is the paper's main channel, but §3.4.3 sketches the
socket story: ``assume(noncore(sock))`` marks a descriptor as talking
to non-core components, ``recv`` into a buffer yields unsafe data, and
an ``assume(core(buf, ...))`` on the receiving function marks the data
as monitored.

Run:  python examples/message_passing.py
"""

from repro import AnalysisConfig, SafeFlow

UNMONITORED = r"""
int telemetrySock;
extern void setThrottle(double v);
extern double clampThrottle(double v);

int main(void)
/***SafeFlow Annotation assume(noncore(telemetrySock)) /***/
{
    char buf[32];
    double throttle;
    recv(telemetrySock, buf, 32, 0);
    throttle = atof(buf);
    /***SafeFlow Annotation assert(safe(throttle)); /***/
    setThrottle(throttle);
    return 0;
}
"""

MONITORED = r"""
int telemetrySock;
extern void setThrottle(double v);

double readThrottle(void)
/***SafeFlow Annotation
    assume(noncore(telemetrySock));
    assume(core(buf, 0, 32)) /***/
{
    char buf[32];
    double v;
    recv(telemetrySock, buf, 32, 0);
    v = atof(buf);
    if (v < 0.0) return 0.0;      /* the monitor: range-check */
    if (v > 1.0) return 1.0;
    return v;
}

int main(void)
{
    double throttle;
    throttle = readThrottle();
    /***SafeFlow Annotation assert(safe(throttle)); /***/
    setThrottle(throttle);
    return 0;
}
"""


def main() -> int:
    analyzer = SafeFlow(AnalysisConfig(message_passing_extension=True))

    print("Unmonitored receive from a non-core socket:")
    print("-" * 60)
    report = analyzer.analyze_source(UNMONITORED, name="telemetry-bad")
    print(report.render())
    assert report.errors, "the unmonitored receive must be flagged"

    print()
    print("Monitored receive (assume(core(buf, ...)) + range check):")
    print("-" * 60)
    fixed = analyzer.analyze_source(MONITORED, name="telemetry-good")
    print(fixed.render())
    assert fixed.passed
    print("\nThe received value is checked before it escapes the "
          "monitoring function: safe value flow holds.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
