#!/usr/bin/env python3
"""Double inverted pendulum under Simplex, plus its static audit.

The Double IP system is the paper's newest, least-mature testbed (two
of the five Table-1 errors live in it). This example shows both sides:

1. dynamically: the 6-state double pendulum balanced by the Simplex
   loop, with the swing-damping controller going adversarial and the
   envelope monitor containing it;
2. the trim-bias bug: controller B's operator trim is *supposed* to be
   display-only; folding it into the actuator output (exactly what the
   corpus C code does in mode 2) visibly biases the plant;
3. statically: SafeFlow's audit of the corpus Double IP core, where
   the same trim flow is error #2.

Run:  python examples/double_pendulum.py
"""

from repro.corpus import load_system
from repro.simplex import (
    DoubleInvertedPendulum,
    FaultyController,
    MPCController,
    SimplexSystem,
)

WEIGHTS = [0.5, 0.1, 8.0, 0.9, 6.0, 0.7]


def build(fault_mode=None, fault_time=1.0):
    plant = DoubleInvertedPendulum()
    controller = MPCController(plant, dt=0.005, state_weights=WEIGHTS)
    if fault_mode is not None:
        controller = FaultyController(controller, fault_time,
                                      mode=fault_mode, magnitude=2.0)
    return SimplexSystem(plant, complex_controller=controller, dt=0.005)


def report(label, system, trace):
    print(f"\n--- {label}")
    print(f"    complex in control: {100 * trace.complex_ratio:5.1f}%   "
          f"rejections: {len(trace.rejections)}")
    print(f"    max |angle1| = {trace.max_abs_state(2):.4f} rad, "
          f"max |angle2| = {trace.max_abs_state(4):.4f} rad")
    print(f"    envelope: max {trace.max_envelope_value:.4f} "
          f"(level {system.envelope.level:.4f})  ->  "
          f"{'recoverable' if trace.stayed_recoverable(system.envelope) else 'VIOLATED'}")


def main() -> int:
    print("Double inverted pendulum — Simplex simulation")

    system = build()
    report("1. healthy swing-damping controller", system, system.run(4.0))

    system = build(fault_mode="reverse")
    report("2. adversarial controller at t=1s, monitor containing it",
           system, system.run(4.0))

    system = build(fault_mode="bias")
    report("3. trim-bias fault (the Double IP error class)",
           system, system.run(4.0))

    print("\nStatic audit of the corpus Double IP core:")
    print("-" * 64)
    corpus_report = load_system("double_ip").analyze()
    for error in corpus_report.confirmed_errors:
        print(f"  [ERROR] {error.message}")
    for fp in corpus_report.candidate_false_positives:
        print(f"  [candidate FP] {fp.message}")
    trim_errors = [e for e in corpus_report.confirmed_errors
                   if "dipCmd2" in e.message]
    print()
    print("The trim-bias flow the simulation perturbs in scenario 3 is")
    print("exactly the dependency reported statically:")
    for step in trim_errors[0].witness:
        print(f"    {step}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
