#!/usr/bin/env python3
"""Static analysis vs run-time value-flow tracking.

The paper motivates SafeFlow with two properties of static checking
(§1): early detection and zero run-time overhead. This example makes
both concrete:

- the *same* unsafe dependency is caught (a) statically by SafeFlow at
  "development time" and (b) dynamically by a run-time taint tracker —
  but the tracker only fires when the buggy path actually executes;
- the run-time tracker costs real time in the control loop, measured
  here side by side (see benchmarks/bench_runtime_overhead.py for the
  pytest-benchmark version).

Run:  python examples/runtime_vs_static.py
"""

import time

from repro import SafeFlow
from repro.runtime import RuntimeFlowTracker

CORE = r"""
typedef struct { double v; int flag; } Status;
Status *ncStatus;
extern void record(double v);

void initShm(void)
/***SafeFlow Annotation shminit /***/
{
    ncStatus = (Status *) shmat(shmget(3, sizeof(Status), 0666), 0, 0);
    /***SafeFlow Annotation
        assume(shmvar(ncStatus, sizeof(Status)));
        assume(noncore(ncStatus)) /***/
}

int main(void)
{
    double gain;
    double output;
    initShm();
    while (1) {
        gain = ncStatus->v;          /* unmonitored non-core read */
        output = gain * 0.5;
        /***SafeFlow Annotation assert(safe(output)); /***/
        record(output);
    }
    return 0;
}
"""


def control_loop(tracker: RuntimeFlowTracker, steps: int) -> int:
    """A loop shaped like the C one, instrumented with the tracker."""
    violations = 0
    for i in range(steps):
        gain = tracker.read_noncore("ncStatus", 0.001 * i)
        output = tracker.combine(lambda g: g * 0.5, gain)
        before = len(tracker.violations)
        tracker.assert_safe(output)
        violations += len(tracker.violations) - before
    return violations


def plain_loop(steps: int) -> float:
    """The uninstrumented loop a statically-verified system can run."""
    total = 0.0
    for i in range(steps):
        gain = 0.001 * i
        output = gain * 0.5
        total += output
    return total


def main() -> int:
    print("1. Static detection (before the system ever runs)")
    print("-" * 64)
    report = SafeFlow().analyze_source(CORE, name="watchdog")
    for diag in report.errors:
        print(f"   {diag}")
    assert report.errors, "static analysis should flag the dependency"

    print()
    print("2. Run-time detection (only when the path executes)")
    print("-" * 64)
    tracker = RuntimeFlowTracker()
    violations = control_loop(tracker, steps=1000)
    print(f"   run-time tracker flagged {violations} uses "
          f"(one per loop iteration)")

    print()
    print("3. The overhead the paper's approach avoids")
    print("-" * 64)
    steps = 200_000
    start = time.perf_counter()
    plain_loop(steps)
    plain = time.perf_counter() - start

    tracker = RuntimeFlowTracker()
    start = time.perf_counter()
    control_loop(tracker, steps)
    tracked = time.perf_counter() - start

    print(f"   uninstrumented loop : {plain * 1e6 / steps:8.3f} us/iter")
    print(f"   run-time tracking   : {tracked * 1e6 / steps:8.3f} us/iter")
    print(f"   overhead            : {tracked / plain:8.1f}x")
    print()
    print("   SafeFlow's static check costs this at *build* time instead:")
    start = time.perf_counter()
    SafeFlow().analyze_source(CORE, name="watchdog")
    print(f"   one-off analysis    : {1e3 * (time.perf_counter() - start):8.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
