"""Table 1 — Applying SafeFlow to Control Systems (paper §4).

Regenerates every row of the paper's only results table: for each of
the three systems, run the full analysis and compare error
dependencies, warnings, false positives, and annotation lines against
the published numbers. Timing is reported per system (the paper gives
no analysis times; these document the Python prototype's cost).

Expected shape (measured == paper):

    system           errors  warnings  false-positives  annot-lines
    IP                  1        7           2              11
    Generic Simplex     2        7           6              22
    Double IP           2        8           2              23
"""

import pytest

from repro.corpus import SYSTEM_KEYS, load_all, load_system
from repro.reporting import DependencyKind
from repro.reporting.render import table1_comparison


@pytest.mark.parametrize("key", SYSTEM_KEYS)
def test_table1_row(benchmark, key):
    system = load_system(key)
    report = benchmark.pedantic(system.analyze, rounds=3, iterations=1,
                                warmup_rounds=1)
    counts = report.counts()
    paper = system.paper

    assert counts["errors"] == paper.error_dependencies
    assert counts["warnings"] == paper.warnings
    assert counts["false_positives"] == paper.false_positives
    assert counts["annotation_lines"] == paper.annotation_lines
    assert counts["violations"] == 0

    benchmark.extra_info.update({
        "errors (paper)": f"{counts['errors']} ({paper.error_dependencies})",
        "warnings (paper)": f"{counts['warnings']} ({paper.warnings})",
        "false_pos (paper)":
            f"{counts['false_positives']} ({paper.false_positives})",
        "annot (paper)":
            f"{counts['annotation_lines']} ({paper.annotation_lines})",
        "loc_core": system.loc_core(),
    })


def test_table1_error_classes(benchmark):
    """§4 prose: the five dependencies fall in the documented classes."""

    def classify():
        out = {}
        for key in SYSTEM_KEYS:
            report = load_system(key).analyze()
            out[key] = report
        return out

    reports = benchmark.pedantic(classify, rounds=1, iterations=1)

    for key in SYSTEM_KEYS:
        kill = [e for e in reports[key].confirmed_errors
                if "kill" in e.variable]
        assert len(kill) == 1 and kill[0].kind is DependencyKind.DATA

    gs = reports["generic_simplex"].confirmed_errors
    assert any("gsFeedback" in e.message and e.variable == "output"
               for e in gs), "feedback read-back dependency"

    dip = reports["double_ip"].confirmed_errors
    assert any("dipCmd2" in e.message and e.variable == "output"
               for e in dip), "invalid no-propagation assumption"

    for key in SYSTEM_KEYS:
        for fp in reports[key].candidate_false_positives:
            assert fp.kind is DependencyKind.CONTROL


def test_print_table1(capsys):
    """Emit the side-by-side table into the benchmark log."""
    results = [(system, system.analyze()) for system in load_all()]
    with capsys.disabled():
        print()
        print(table1_comparison(results))
