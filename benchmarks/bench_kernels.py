#!/usr/bin/env python
"""Analysis-kernel benchmark: object vs compiled value-flow kernels.

Times the whole pipeline (front end + phases 1-3) on a ladder of
:func:`repro.corpus.generate_core` configurations, the largest of
which combine every scaling knob (filler code size, chain depth, call
fan-out, and a deep store/load pipeline that forces one outer fixpoint
iteration per stage). Per configuration it measures, each in a fresh
subprocess with best-of-N timing:

- ``object`` / ``compiled``  — cold end-to-end, sparse fixpoint (the
  stock configuration; cold runs are front-end dominated, so these
  two stay close);
- ``object-dense`` / ``compiled-dense`` — the dense reference loop,
  which re-executes every (function, context) body once per outer
  iteration: the body-execution-heavy regime the compiled kernel
  targets. The value-flow phase time is recorded separately to
  isolate kernel work from the (identical) front end;
- ``compiled-warm`` — re-analysis with a primed IR cache: the
  steady state of the daemon / batch / editor loop, and the headline
  ``reanalysis_speedup`` against a cold object-kernel run.

Before timing anything the script asserts the four (kernel x fixpoint)
reports are byte-identical and match the generator's expected
diagnosis. Every ratio recorded is measured within one script run on
one machine, so the committed numbers are machine-independent gates.

Usage::

    python benchmarks/bench_kernels.py                  # full ladder
    python benchmarks/bench_kernels.py --prepr-src DIR  # + pre-PR tree
    python benchmarks/bench_kernels.py --smoke          # quick sanity
    python benchmarks/bench_kernels.py --check BENCH_kernels.json

``--prepr-src`` points at the ``src/`` of a checkout predating the
fast-kernel work; its default analyzer is timed on the same programs.
``--check`` re-measures the ``xlarge`` configuration and fails (exit
1) when either machine-independent ratio — ``speedup_vs_dense`` or
``kernel_dense_speedup`` — regressed more than ``--max-regression``
relative to the committed baseline JSON: that is the CI gate.

Results land in ``BENCH_kernels.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import SafeFlow  # noqa: E402
from repro.core.config import AnalysisConfig  # noqa: E402
from repro.corpus import generate_core  # noqa: E402

#: ladder of generator configurations, largest last. The CI regression
#: gate watches ``xlarge``; ``xxlarge`` exists to show the asymptotic
#: trend (and is the one that makes kernel-phase costs dominate the
#: dense loop).
CONFIGS = [
    dict(name="medium", filler_functions=120, chain_depth=8,
         call_fanout=2, pipeline_stages=10, monitored_regions=2),
    dict(name="large", filler_functions=320, chain_depth=12,
         call_fanout=3, pipeline_stages=16, monitored_regions=2),
    dict(name="xlarge", filler_functions=600, chain_depth=16,
         call_fanout=4, pipeline_stages=22, monitored_regions=2),
    dict(name="xxlarge", filler_functions=1200, chain_depth=20,
         call_fanout=4, pipeline_stages=28, monitored_regions=2),
]

#: the configuration the CI gate re-measures (bounded runtime)
GATE_CONFIG = "xlarge"

SMOKE_CONFIGS = [
    dict(name="smoke", filler_functions=20, chain_depth=4,
         call_fanout=2, pipeline_stages=6, monitored_regions=1),
]

#: child process body: time one analysis and print a JSON line.
#: ``mode`` is "default" (a tree's stock configuration — the only mode
#: a pre-fast-kernel tree understands) or "<kernel>[-dense|-warm]".
#: "-warm" primes an IR cache with one untimed analysis first, then
#: times a re-analysis against the primed cache.
_TIMER = r"""
import json, sys, tempfile, time
sys.path.insert(0, sys.argv[1])
from repro import SafeFlow
mode = sys.argv[3]
text = open(sys.argv[2]).read()

def run(analyzer):
    t0 = time.perf_counter()
    report = analyzer.analyze_source(text, name="bench")
    elapsed = time.perf_counter() - t0
    return elapsed, report

if mode == "default":
    elapsed, report = run(SafeFlow())
else:
    from repro.core.config import AnalysisConfig
    kernel, _, variant = mode.partition("-")
    opts = dict(kernel=kernel, sparse_fixpoint=(variant != "dense"))
    if variant == "warm":
        cache = tempfile.TemporaryDirectory()
        opts["cache_dir"] = cache.name
        SafeFlow(AnalysisConfig(**opts)).analyze_source(text, name="prime")
    elapsed, report = run(SafeFlow(AnalysisConfig(**opts)))
counters = report.stats.kernel_counters or {}
print(json.dumps({
    "seconds": elapsed,
    "valueflow_seconds": report.stats.phase_timings.get("valueflow", 0.0),
    "kernel_compile_seconds": counters.get("kernel_compile_us", 0) / 1e6,
    "warnings": len(report.warnings),
    "errors": len(report.confirmed_errors),
}))
"""


def _time_cold(src_dir: Path, program_path: Path, mode: str,
               runs: int) -> dict:
    """Best-of-``runs`` wall time, each in a fresh subprocess."""
    best = None
    for _ in range(runs):
        proc = subprocess.run(
            [sys.executable, "-c", _TIMER, str(src_dir),
             str(program_path), mode],
            capture_output=True, text=True, check=True,
        )
        result = json.loads(proc.stdout)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    return best


def _assert_byte_identical(source: str) -> None:
    """All four (kernel x fixpoint) reports must agree byte-for-byte."""
    signatures = set()
    for kernel in ("object", "compiled"):
        for sparse in (True, False):
            config = AnalysisConfig(kernel=kernel, sparse_fixpoint=sparse)
            report = SafeFlow(config).analyze_source(source, name="eq")
            signatures.add((
                report.render(verbose=True),
                json.dumps(report.witness_graphs, sort_keys=True,
                           default=str),
                report.stats.contexts_analyzed,
            ))
    if len(signatures) != 1:
        raise SystemExit(
            "kernel/fixpoint reports differ; refusing to bench")


def _bench_config(spec: dict, runs: int, prepr_src: Path | None) -> dict:
    params = {k: v for k, v in spec.items() if k != "name"}
    program = generate_core(**params)
    _assert_byte_identical(program.source)
    with tempfile.NamedTemporaryFile(
            "w", suffix=".c", delete=False) as handle:
        handle.write(program.source)
        path = Path(handle.name)
    try:
        measured = {
            mode: _time_cold(SRC, path, mode, runs)
            for mode in ("object", "compiled", "object-dense",
                         "compiled-dense", "compiled-warm")
        }
        for label, result in measured.items():
            if (result["warnings"] != program.expected_warnings
                    or result["errors"] != program.expected_errors):
                raise SystemExit(
                    f"{spec['name']}/{label}: diagnosis drifted "
                    f"({result['warnings']}w/{result['errors']}e)"
                )
        entry = {
            "name": spec["name"],
            "params": params,
            "loc": program.loc,
            "object_seconds": round(measured["object"]["seconds"], 4),
            "compiled_seconds": round(
                measured["compiled"]["seconds"], 4),
            "object_dense_seconds": round(
                measured["object-dense"]["seconds"], 4),
            "compiled_dense_seconds": round(
                measured["compiled-dense"]["seconds"], 4),
            "object_dense_valueflow": round(
                measured["object-dense"]["valueflow_seconds"], 4),
            "compiled_dense_valueflow": round(
                measured["compiled-dense"]["valueflow_seconds"], 4),
            "compiled_warm_seconds": round(
                measured["compiled-warm"]["seconds"], 4),
            # stock sparse vs stock dense (continuity with the
            # pre-compiled-kernel baseline's headline ratio)
            "speedup_vs_dense": round(
                measured["compiled-dense"]["seconds"]
                / measured["compiled"]["seconds"], 3),
            # kernel-phase ratio in the body-re-execution regime:
            # the compiled kernel's own contribution, front end netted
            # out (both dense runs share it)
            "kernel_dense_speedup": round(
                measured["object-dense"]["valueflow_seconds"]
                / max(measured["compiled-dense"]["valueflow_seconds"],
                      1e-9), 3),
            # the same ratio with one-time opcode compilation excluded:
            # compilation happens once per (function, context) and is
            # amortized over every subsequent pass / warm re-analysis,
            # so this is the steady-state per-pass kernel speedup
            "kernel_exec_speedup": round(
                measured["object-dense"]["valueflow_seconds"]
                / max(measured["compiled-dense"]["valueflow_seconds"]
                      - measured["compiled-dense"]
                      ["kernel_compile_seconds"], 1e-9), 3),
            # steady-state re-analysis (primed IR cache, compiled
            # kernels) vs a cold object-kernel run: the deployment
            # loop the kernels + cache layers exist for
            "reanalysis_speedup": round(
                measured["object"]["seconds"]
                / max(measured["compiled-warm"]["seconds"], 1e-9), 3),
        }
        if prepr_src is not None:
            prepr = _time_cold(prepr_src, path, "default", runs)
            entry["prepr_seconds"] = round(prepr["seconds"], 4)
            entry["speedup_vs_prepr"] = round(
                prepr["seconds"]
                / measured["compiled"]["seconds"], 3)
        return entry
    finally:
        path.unlink(missing_ok=True)


#: the machine-independent ratios the CI gate enforces
GATED_RATIOS = ("speedup_vs_dense", "kernel_dense_speedup")


def _check_regression(baseline_path: Path, runs: int,
                      max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    by_name = {e["name"]: e for e in baseline["results"]}
    spec = next(c for c in CONFIGS if c["name"] == GATE_CONFIG)
    if spec["name"] not in by_name:
        raise SystemExit(f"baseline has no entry named {spec['name']!r}")
    reference = by_name[spec["name"]]
    entry = _bench_config(spec, runs, None)
    failed = False
    for ratio in GATED_RATIOS:
        measured = entry[ratio]
        floor = reference[ratio] * (1.0 - max_regression)
        ok = measured >= floor
        failed = failed or not ok
        print(f"{spec['name']}: {ratio} {measured:.3f} "
              f"(baseline {reference[ratio]:.3f}, floor {floor:.3f}) "
              f"{'OK' if ok else 'REGRESSION'}")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=3,
                        help="timing runs per mode (best is kept)")
    parser.add_argument("--output", default=str(ROOT / "BENCH_kernels.json"))
    parser.add_argument("--prepr-src", default=None,
                        help="src/ of a pre-fast-kernel checkout to "
                             "compare against")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration, no file written")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="re-measure the gate configuration and "
                             "fail on regression vs this JSON")
    parser.add_argument("--max-regression", type=float, default=0.2)
    args = parser.parse_args()

    if args.check:
        return _check_regression(
            Path(args.check), args.runs, args.max_regression)

    configs = SMOKE_CONFIGS if args.smoke else CONFIGS
    prepr = Path(args.prepr_src) if args.prepr_src else None
    results = []
    for spec in configs:
        entry = _bench_config(spec, args.runs, prepr)
        results.append(entry)
        line = (f"{entry['name']:<8} loc={entry['loc']:<6} "
                f"cold obj={entry['object_seconds']:.3f}s "
                f"cmp={entry['compiled_seconds']:.3f}s | "
                f"dense vf obj={entry['object_dense_valueflow']:.3f}s "
                f"cmp={entry['compiled_dense_valueflow']:.3f}s "
                f"x{entry['kernel_dense_speedup']:.2f} "
                f"(exec x{entry['kernel_exec_speedup']:.2f}) | "
                f"warm={entry['compiled_warm_seconds']:.3f}s "
                f"x{entry['reanalysis_speedup']:.2f}")
        if "speedup_vs_prepr" in entry:
            line += (f" | prepr={entry['prepr_seconds']:.3f}s "
                     f"x{entry['speedup_vs_prepr']:.2f}")
        print(line)

    if not args.smoke:
        payload = {
            "benchmark": "kernels",
            "runs": args.runs,
            "results": results,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
