#!/usr/bin/env python
"""Fast-kernel benchmark: cold-analysis wall time on generated cores.

Measures the whole-pipeline cost (front end + phases 1-3) of the
sparse fixpoint engine against the dense reference loop on a ladder of
:func:`repro.corpus.generate_core` configurations, the largest of
which combines every scaling knob (filler code size, chain depth,
call fan-out, and a deep store/load pipeline that forces one outer
fixpoint iteration per stage). Every timing run is a fresh subprocess,
so process-global caches (taint interning, solver verdicts) start
cold, and before timing anything the script asserts the sparse and
dense reports are byte-identical.

Usage::

    python benchmarks/bench_kernels.py                  # full ladder
    python benchmarks/bench_kernels.py --prepr-src DIR  # + pre-PR tree
    python benchmarks/bench_kernels.py --smoke          # quick sanity
    python benchmarks/bench_kernels.py --check BENCH_kernels.json

``--prepr-src`` points at the ``src/`` of a checkout predating the
fast-kernel work; its default analyzer is timed on the same programs
to report the end-to-end speedup. ``--check`` re-measures only the
largest configuration and fails (exit 1) when its machine-independent
``speedup_vs_dense`` ratio regressed more than ``--max-regression``
relative to the committed baseline JSON — that is the CI gate.

Results land in ``BENCH_kernels.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import SafeFlow  # noqa: E402
from repro.core.config import AnalysisConfig  # noqa: E402
from repro.corpus import generate_core  # noqa: E402

#: ladder of generator configurations, largest last. The large case is
#: what the CI regression gate watches.
CONFIGS = [
    dict(name="medium", filler_functions=120, chain_depth=8,
         call_fanout=2, pipeline_stages=10, monitored_regions=2),
    dict(name="large", filler_functions=320, chain_depth=12,
         call_fanout=3, pipeline_stages=16, monitored_regions=2),
    dict(name="xlarge", filler_functions=600, chain_depth=16,
         call_fanout=4, pipeline_stages=22, monitored_regions=2),
]

SMOKE_CONFIGS = [
    dict(name="smoke", filler_functions=20, chain_depth=4,
         call_fanout=2, pipeline_stages=6, monitored_regions=1),
]

#: child process body: time one cold analysis and print a JSON line.
#: ``mode`` "default" uses the tree's stock configuration (the only
#: mode a pre-fast-kernel tree understands).
_TIMER = r"""
import json, sys, time
sys.path.insert(0, sys.argv[1])
from repro import SafeFlow
mode = sys.argv[3]
analyzer = SafeFlow()
if mode != "default":
    from repro.core.config import AnalysisConfig
    analyzer = SafeFlow(AnalysisConfig(sparse_fixpoint=(mode == "sparse")))
text = open(sys.argv[2]).read()
t0 = time.perf_counter()
report = analyzer.analyze_source(text, name="bench")
elapsed = time.perf_counter() - t0
print(json.dumps({
    "seconds": elapsed,
    "warnings": len(report.warnings),
    "errors": len(report.confirmed_errors),
}))
"""


def _time_cold(src_dir: Path, program_path: Path, mode: str,
               runs: int) -> dict:
    """Best-of-``runs`` cold wall time in fresh subprocesses."""
    best = None
    for _ in range(runs):
        proc = subprocess.run(
            [sys.executable, "-c", _TIMER, str(src_dir),
             str(program_path), mode],
            capture_output=True, text=True, check=True,
        )
        result = json.loads(proc.stdout)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    return best


def _assert_byte_identical(source: str) -> None:
    reports = {}
    for sparse in (True, False):
        config = AnalysisConfig(sparse_fixpoint=sparse)
        reports[sparse] = SafeFlow(config).analyze_source(source, name="eq")
    sparse_r, dense_r = reports[True], reports[False]
    if (sparse_r.render(verbose=True) != dense_r.render(verbose=True)
            or sparse_r.witness_graphs != dense_r.witness_graphs
            or sparse_r.stats.contexts_analyzed
            != dense_r.stats.contexts_analyzed):
        raise SystemExit("sparse and dense reports differ; refusing to bench")


def _bench_config(spec: dict, runs: int, prepr_src: Path | None) -> dict:
    params = {k: v for k, v in spec.items() if k != "name"}
    program = generate_core(**params)
    _assert_byte_identical(program.source)
    with tempfile.NamedTemporaryFile(
            "w", suffix=".c", delete=False) as handle:
        handle.write(program.source)
        path = Path(handle.name)
    try:
        sparse = _time_cold(SRC, path, "sparse", runs)
        dense = _time_cold(SRC, path, "dense", runs)
        for label, result in (("sparse", sparse), ("dense", dense)):
            if (result["warnings"] != program.expected_warnings
                    or result["errors"] != program.expected_errors):
                raise SystemExit(
                    f"{spec['name']}/{label}: diagnosis drifted "
                    f"({result['warnings']}w/{result['errors']}e)"
                )
        entry = {
            "name": spec["name"],
            "params": params,
            "loc": program.loc,
            "sparse_seconds": round(sparse["seconds"], 4),
            "dense_seconds": round(dense["seconds"], 4),
            "speedup_vs_dense": round(
                dense["seconds"] / sparse["seconds"], 3),
        }
        if prepr_src is not None:
            prepr = _time_cold(prepr_src, path, "default", runs)
            entry["prepr_seconds"] = round(prepr["seconds"], 4)
            entry["speedup_vs_prepr"] = round(
                prepr["seconds"] / sparse["seconds"], 3)
        return entry
    finally:
        path.unlink(missing_ok=True)


def _check_regression(baseline_path: Path, runs: int,
                      max_regression: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    by_name = {e["name"]: e for e in baseline["results"]}
    spec = CONFIGS[-1]
    if spec["name"] not in by_name:
        raise SystemExit(f"baseline has no entry named {spec['name']!r}")
    reference = by_name[spec["name"]]["speedup_vs_dense"]
    entry = _bench_config(spec, runs, None)
    measured = entry["speedup_vs_dense"]
    floor = reference * (1.0 - max_regression)
    status = "OK" if measured >= floor else "REGRESSION"
    print(f"{spec['name']}: speedup_vs_dense {measured:.3f} "
          f"(baseline {reference:.3f}, floor {floor:.3f}) {status}")
    return 0 if measured >= floor else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=3,
                        help="timing runs per mode (best is kept)")
    parser.add_argument("--output", default=str(ROOT / "BENCH_kernels.json"))
    parser.add_argument("--prepr-src", default=None,
                        help="src/ of a pre-fast-kernel checkout to "
                             "compare against")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration, no file written")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="re-measure the largest configuration and "
                             "fail on regression vs this JSON")
    parser.add_argument("--max-regression", type=float, default=0.25)
    args = parser.parse_args()

    if args.check:
        return _check_regression(
            Path(args.check), args.runs, args.max_regression)

    configs = SMOKE_CONFIGS if args.smoke else CONFIGS
    prepr = Path(args.prepr_src) if args.prepr_src else None
    results = []
    for spec in configs:
        entry = _bench_config(spec, args.runs, prepr)
        results.append(entry)
        line = (f"{entry['name']:<8} loc={entry['loc']:<6} "
                f"sparse={entry['sparse_seconds']:.3f}s "
                f"dense={entry['dense_seconds']:.3f}s "
                f"x{entry['speedup_vs_dense']:.2f}")
        if "speedup_vs_prepr" in entry:
            line += (f"  prepr={entry['prepr_seconds']:.3f}s "
                     f"x{entry['speedup_vs_prepr']:.2f}")
        print(line)

    if not args.smoke:
        payload = {
            "benchmark": "kernels",
            "runs": args.runs,
            "results": results,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
