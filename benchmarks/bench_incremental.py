#!/usr/bin/env python
"""Incremental-analysis benchmark: cold run vs one-function-edit.

Measures the latency structure ``safeflow watch`` exists for, on a
ladder of multi-translation-unit :func:`repro.corpus.
generate_core_files` workloads (the largest is ~10k LoC). Per rung,
against one long-lived :class:`repro.incremental.IncrementalSession`
and its on-disk segment store:

- ``cold``  — first verdict: full front end, every body analyzed, the
  store populated (best of N fresh sessions);
- ``noop``  — a verdict with nothing changed: every segment replays,
  zero functions re-analyzed;
- ``edit``  — one filler-function body edit: the surgical unit swap
  re-lowers a single unit and the value-flow phase re-analyzes only
  the dirty cone (recorded, and asserted == the edited functions).

Before timing, the edited-tree re-verdict is asserted byte-identical
to a cold session over the same sources — the differential guarantee
the incremental layer is built on.

The headline machine-independent ratio is ``edit_ratio`` (edit /
cold). The CI gate re-measures the ``large`` rung and fails when an
edit re-verdict costs more than ``--gate`` (default 10%) of a cold
run, or when the re-analyzed set exceeds the expected dirty cone.

Usage::

    python benchmarks/bench_incremental.py            # full ladder
    python benchmarks/bench_incremental.py --smoke    # quick sanity
    python benchmarks/bench_incremental.py --check BENCH_incremental.json

Results land in ``BENCH_incremental.json`` (see ``--output``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.config import AnalysisConfig  # noqa: E402
from repro.corpus import generate_core_files  # noqa: E402
from repro.incremental.watcher import IncrementalSession  # noqa: E402
from repro.perf.gcpause import gc_paused  # noqa: E402

#: rungs, largest last; every knob compounds (core fillers + chains +
#: pipeline stages inside core.c, plus standalone filler units that
#: serve as surgical-swap targets)
CONFIGS = [
    dict(name="large", filler_functions=160, chain_depth=10,
         call_fanout=3, pipeline_stages=12, monitored_regions=2,
         filler_units=4, fillers_per_unit=30),
    dict(name="xxlarge", filler_functions=600, chain_depth=16,
         call_fanout=4, pipeline_stages=22, monitored_regions=2,
         filler_units=8, fillers_per_unit=60),
]

#: the rung the CI gate re-measures (bounded runtime)
GATE_CONFIG = "large"

SMOKE_CONFIGS = [
    dict(name="smoke", filler_functions=10, chain_depth=3,
         call_fanout=2, pipeline_stages=4, monitored_regions=1,
         filler_units=2, fillers_per_unit=3),
]

#: the filler-body constant toggled to produce a one-function edit
EDIT_OLD, EDIT_NEW = "* 0.99", "* 0.98"


def _config() -> AnalysisConfig:
    return AnalysisConfig(cache_dir=None, summary_mode=True)


def _toggle(path: str, position: int) -> None:
    """Flip the edit constant of one filler body (read-modify-write)."""
    with open(path) as f:
        text = f.read()
    old, new = (EDIT_OLD, EDIT_NEW) if position % 2 == 0 \
        else (EDIT_NEW, EDIT_OLD)
    assert old in text, f"{old!r} not found in {path}"
    with open(path, "w") as f:
        f.write(text.replace(old, new, 1))


def _session(paths, store_root) -> IncrementalSession:
    return IncrementalSession(list(paths), config=_config(),
                              store_root=str(store_root))


def _bench_config(spec: dict, runs: int, scratch: Path) -> dict:
    params = {k: v for k, v in spec.items() if k != "name"}
    generated = generate_core_files(**params)
    src_dir = scratch / spec["name"]
    paths = generated.write_to(str(src_dir))
    edit_target = paths[1]  # the first standalone filler unit

    # cold: best of N fresh sessions, each against a fresh store
    cold_best = None
    for i in range(runs):
        t0 = time.perf_counter()
        session = _session(paths, scratch / f"{spec['name']}-cold-{i}")
        report = session.verdict()
        elapsed = time.perf_counter() - t0
        cold_best = elapsed if cold_best is None else min(cold_best, elapsed)
    if (len(report.warnings) != generated.expected_warnings
            or len(report.confirmed_errors) != generated.expected_errors):
        raise SystemExit(
            f"{spec['name']}: diagnosis drifted "
            f"({len(report.warnings)}w/{len(report.confirmed_errors)}e, "
            f"expected {generated.expected_warnings}w/"
            f"{generated.expected_errors}e)")

    # the long-lived session the warm measurements run against; the
    # outer gc_paused mirrors the watch loop, which holds one pause
    # across every re-verdict burst
    session = _session(paths, scratch / f"{spec['name']}-store")
    session.verdict()

    with gc_paused(True):
        noop_best = None
        for _ in range(runs):
            t0 = time.perf_counter()
            noop_report = session.verdict()
            elapsed = time.perf_counter() - t0
            noop_best = elapsed if noop_best is None \
                else min(noop_best, elapsed)
        if noop_report.stats.functions_reanalyzed != 0:
            raise SystemExit(f"{spec['name']}: noop verdict re-analyzed "
                             f"{noop_report.stats.functions_reanalyzed} "
                             f"function(s)")

        # one-function edit: toggle the same constant back and forth so
        # every timed verdict sees exactly one changed unit
        edit_best = None
        edit_report = None
        for i in range(max(2, runs)):
            _toggle(edit_target, i)
            t0 = time.perf_counter()
            edit_report = session.verdict()
            elapsed = time.perf_counter() - t0
            edit_best = elapsed if edit_best is None \
                else min(edit_best, elapsed)
    if edit_report.stats.segment_fallbacks:
        raise SystemExit(f"{spec['name']}: edit re-verdict fell back to "
                         f"a validating rerun")
    cone = edit_report.stats.dirty_cone_size
    if cone != 1 or edit_report.stats.functions_reanalyzed != 1:
        raise SystemExit(
            f"{spec['name']}: one-function edit re-analyzed "
            f"{edit_report.stats.functions_reanalyzed} function(s) "
            f"(cone {cone}), expected exactly 1")

    # differential guarantee: the warm re-verdict must be
    # byte-identical to a cold session over the edited tree
    cold_session = _session(paths, scratch / f"{spec['name']}-diff")
    if (edit_report.render(verbose=True)
            != cold_session.verdict().render(verbose=True)):
        raise SystemExit(f"{spec['name']}: warm re-verdict differs from "
                         f"a cold run; refusing to bench")

    return {
        "name": spec["name"],
        "params": params,
        "loc": generated.loc,
        "files": len(paths),
        "cold_seconds": round(cold_best, 4),
        "noop_seconds": round(noop_best, 4),
        "edit_seconds": round(edit_best, 4),
        "edit_ratio": round(edit_best / cold_best, 4),
        "noop_ratio": round(noop_best / cold_best, 4),
        "dirty_cone": cone,
        "functions_reanalyzed": edit_report.stats.functions_reanalyzed,
        "unit_swaps": session.swaps,
        "merged_seeds_applied": edit_report.stats.kernel_counters.get(
            "merged_seeds_applied", 0),
    }


def _check_regression(baseline_path: Path, runs: int, gate: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    by_name = {e["name"]: e for e in baseline["results"]}
    spec = next(c for c in CONFIGS if c["name"] == GATE_CONFIG)
    if spec["name"] not in by_name:
        raise SystemExit(f"baseline has no entry named {spec['name']!r}")
    with tempfile.TemporaryDirectory(
            prefix="safeflow-bench-inc-") as scratch:
        entry = _bench_config(spec, runs, Path(scratch))
    ratio = entry["edit_ratio"]
    reference = by_name[spec["name"]]["edit_ratio"]
    ok = ratio <= gate
    print(f"{spec['name']}: edit_ratio {ratio:.4f} "
          f"(baseline {reference:.4f}, gate {gate:.2f}) "
          f"{'OK' if ok else 'REGRESSION'}")
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=3,
                        help="timing runs per mode (best is kept)")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_incremental.json"))
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration, no file written")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="re-measure the gate rung and fail when an "
                             "edit re-verdict costs more than --gate of "
                             "a cold run")
    parser.add_argument("--gate", type=float, default=0.10,
                        help="maximum edit/cold ratio (default: 0.10)")
    args = parser.parse_args()

    if args.check:
        return _check_regression(Path(args.check), args.runs, args.gate)

    configs = SMOKE_CONFIGS if args.smoke else CONFIGS
    results = []
    with tempfile.TemporaryDirectory(
            prefix="safeflow-bench-inc-") as scratch:
        for spec in configs:
            entry = _bench_config(spec, args.runs, Path(scratch))
            results.append(entry)
            print(f"{entry['name']:<8} loc={entry['loc']:<6} "
                  f"files={entry['files']:<3} "
                  f"cold={entry['cold_seconds'] * 1000:7.1f}ms "
                  f"noop={entry['noop_seconds'] * 1000:6.1f}ms "
                  f"edit={entry['edit_seconds'] * 1000:6.1f}ms "
                  f"(x{entry['edit_ratio']:.3f} of cold) "
                  f"cone={entry['dirty_cone']} "
                  f"swaps={entry['unit_swaps']}")

    if not args.smoke:
        payload = {
            "benchmark": "incremental",
            "runs": args.runs,
            "results": results,
        }
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
