"""Analysis-service benchmark: warm daemon requests vs the cold CLI path.

The point of running ``safeflow serve`` at all is that a long-lived
daemon amortizes front-end and summary work across requests through
the shared on-disk caches. This benchmark measures that directly:

- *cold CLI*: a fresh ``SafeFlow`` with no cache directory, the same
  work ``safeflow analyze`` does on every invocation;
- *warm server*: a round-trip through ``SafeFlowClient`` against a
  daemon whose caches were primed by one prior request — including
  all protocol, queue, and worker-pool overhead.

The warm request must still be measurably faster despite the added
serving machinery. Results autosave to ``BENCH_server.json`` at the
repo root. Run via ``make bench-server`` (or plain pytest).
"""

import json
import time
from pathlib import Path

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import load_system
from repro.perf.latency import LatencyRecorder
from repro.server import SafeFlowClient, SafeFlowServer

REPO_ROOT = Path(__file__).resolve().parent.parent
ROUNDS = 5
WARM_ROUNDS = 30
SYSTEM = "generic_simplex"
MIN_SPEEDUP = 1.2


def _best_of(fn, rounds=ROUNDS):
    return _record(fn, rounds).percentile(0)


def _record(fn, rounds) -> LatencyRecorder:
    """Time ``rounds`` calls into the shared latency recorder
    (:mod:`repro.perf.latency` — same helper ``bench_fleet`` uses)."""
    recorder = LatencyRecorder()
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        recorder.record(time.perf_counter() - start)
    return recorder


def test_warm_server_request_beats_cold_cli(tmp_path):
    system = load_system(SYSTEM)
    files = [str(p) for p in system.core_files]

    def cold():
        flow = SafeFlow(AnalysisConfig(summary_mode=True))
        report = flow.analyze_files(files, name=SYSTEM)
        assert report.render()

    cold_s = _best_of(cold)

    server = SafeFlowServer(
        config=AnalysisConfig(summary_mode=True,
                              cache_dir=str(tmp_path / "cache")),
        port=0, workers=2,
    )
    server.start()
    try:
        with SafeFlowClient(port=server.address[1]) as client:
            prime = client.analyze(files=files, name=SYSTEM)

            def warm():
                result = client.analyze(files=files, name=SYSTEM)
                assert result["render"] == prime["render"]

            warm_lat = _record(warm, WARM_ROUNDS)
            warm_s = warm_lat.percentile(0)
            metrics = client.metrics()
            client_stats = dict(client.stats)
    finally:
        server.stop()

    speedup = cold_s / warm_s
    payload = {
        "system": SYSTEM,
        "rounds": ROUNDS,
        "warm_rounds": WARM_ROUNDS,
        "cold_cli_s": cold_s,
        "warm_server_s": warm_s,
        "warm_latency": warm_lat.summary(),
        "speedup": speedup,
        "pool_mode": server.pool.mode,
        "cache": metrics["cache"],
        "client": client_stats,
    }
    (REPO_ROOT / "BENCH_server.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    assert metrics["cache"]["frontend_hits"] > 0
    assert warm_lat.summary()["p99_s"] >= warm_lat.summary()["p50_s"]
    # the persistent connection did persist: N requests, one connect
    assert client_stats["reconnects"] == 0
    assert speedup >= MIN_SPEEDUP, (
        f"warm server request ({warm_s:.3f}s) not measurably faster "
        f"than cold CLI path ({cold_s:.3f}s): {speedup:.2f}x"
    )
