"""Overload drill for multi-tenant admission control.

Measures a two-shard tenant-aware fleet (``--tenants`` table, DRR
fair queue, token buckets, adaptive ``--max-inflight auto``, brownout)
in two phases:

- *saturation*: closed-loop clients (unlimited ``gold`` tenant) issue
  requests back-to-back — the sustainable throughput the admission
  layer must protect;
- *overload*: open-loop Poisson arrivals at ``OVERLOAD_FACTOR`` (10x)
  that throughput, spread over three tenants — ``gold`` (weight 4,
  high priority), ``free`` (weight 1, token-bucket rate limit) and
  ``batch`` (weight 1, low priority, shed first under brownout).

Every *accepted* request must complete byte-identical to the direct
(in-process) verdict — overload may refuse work, never corrupt or
drop it. Refusals must be structured admission codes
(``rate_limited``/``shed``/``queue_full``), each carrying enough for
the caller to act (``retry_after_s`` on ``rate_limited``).

The CI gate (``--check``) enforces the machine-independent contract:
goodput under 10x overload stays at or above
``MIN_GOODPUT_FRACTION`` (70%) of the measured saturation
throughput, no positive-weight tenant is fully starved, zero
accepted-then-dropped, zero verdict drift — and, when run with
``--chaos`` (SIGKILL one shard mid-overload), the dead shard's
circuit breaker visibly opens and the fleet recovers.

Usage::

    python benchmarks/bench_overload.py            # full run
    python benchmarks/bench_overload.py --smoke    # CI-sized
    python benchmarks/bench_overload.py --chaos    # SIGKILL drill
    python benchmarks/bench_overload.py --check    # gate the JSON
"""

import argparse
import json
import os
import platform
import queue
import random
import signal
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import AnalysisConfig          # noqa: E402
from repro.core.driver import SafeFlow                # noqa: E402
from repro.fleet import FleetConfig, FleetRouter      # noqa: E402
from repro.perf.latency import LatencyRecorder        # noqa: E402
from repro.server import SafeFlowClient               # noqa: E402
from repro.server.client import ServerError           # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_overload.json"

#: distinct job shapes so the ring spreads load across both shards
N_SOURCES = 32
SOURCES = [
    (
        f"unit{i}.c",
        "int reg%d; int step%d(int x) { if (x > %d) reg%d = x; return x; }\n"
        "int main(void) { return step%d(%d); }\n" % (i, i, i, i, i, i),
    )
    for i in range(N_SOURCES)
]

TENANTS = ("gold", "free", "batch")
#: per-request tenant assignment during overload (weighted mix)
TENANT_MIX = ("gold", "free", "batch", "gold", "free")
ADMISSION = {"queue_full", "rate_limited", "shed"}

OVERLOAD_FACTOR = 10.0
MIN_GOODPUT_FRACTION = 0.70

SAT_CONCURRENCY = 8
OVER_CONCURRENCY = 32

FULL_SAT = 20_000
FULL_OVER = 40_000
SMOKE_SAT = 1_500
SMOKE_OVER = 3_000
CHAOS_OVER = 2_000


def expected_renders():
    """Direct-path verdicts — the byte-identity reference."""
    flow = SafeFlow(AnalysisConfig())
    return [
        flow.analyze_source(src, filename=name).render()
        for name, src in SOURCES
    ]


def write_tenants(path):
    with open(path, "w") as f:
        json.dump({
            "tenants": {
                "gold": {"weight": 4, "priority": "high"},
                "free": {"weight": 1, "rate": 50, "burst": 25,
                         "priority": "normal"},
                "batch": {"weight": 1, "priority": "low"},
            },
        }, f, indent=2)
    return path


def start_fleet(cache_root, tenants_path):
    router = FleetRouter(FleetConfig(
        shards=2, port=0, cache_root=str(cache_root),
        backend="process", use_processes=False,
        health_interval=0.2,
        # a small per-shard queue keeps the backlog where the fair
        # queue and brownout ladder act on it, instead of hiding
        # overload in a deep FIFO
        queue_size=16,
        tenants_path=str(tenants_path), max_inflight="auto",
        # short breaker window so a shard SIGKILL's burst of
        # connection failures dominates the storm's successes
        breaker_min_volume=2, breaker_window=4, breaker_cooldown_s=0.5,
    ))
    host, port = router.start()
    return router, host, port


def prime(host, port, expected):
    """One warm pass per source; also the byte-identity preflight."""
    with SafeFlowClient(host=host, port=port,
                        request_timeout=120.0) as client:
        for i, (name, src) in enumerate(SOURCES):
            r = client.analyze(source=src, filename=name, tenant="gold")
            if r["render"] != expected[i]:
                raise AssertionError(
                    f"preflight: fleet verdict for {name} differs "
                    f"from direct analysis")


def saturation_loop(host, port, total, expected):
    """Closed loop, unlimited tenant: the protected throughput."""
    recorder = LatencyRecorder()
    errors = [0]
    per = total // SAT_CONCURRENCY

    def worker(wid):
        try:
            with SafeFlowClient(host=host, port=port,
                                request_timeout=300.0) as client:
                for n in range(per):
                    i = (wid + n) % N_SOURCES
                    t0 = time.perf_counter()
                    r = client.analyze(source=SOURCES[i][1],
                                       filename=SOURCES[i][0],
                                       tenant="gold")
                    recorder.record(time.perf_counter() - t0)
                    if r["render"] != expected[i]:
                        errors[0] += 1
        except Exception:
            errors[0] += per

    threads = [threading.Thread(target=worker, args=(w,))
               for w in range(SAT_CONCURRENCY)]
    wall0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    done = per * SAT_CONCURRENCY
    summary = recorder.summary()
    summary.update({
        "requests": done,
        "concurrency": SAT_CONCURRENCY,
        "wall_s": wall,
        "throughput_rps": done / wall if wall else 0.0,
        "errors": errors[0],
    })
    return summary


def overload_loop(host, port, total, rate_rps, expected, on_progress=None,
                  seed=97):
    """Poisson arrivals at ``rate_rps`` across the tenant mix.

    Clients run with ``retries=0``: the drill counts every admission
    decision exactly once (retry behavior has its own unit tests).
    Returns per-tenant outcome counts and latency quantiles plus the
    aggregate goodput.
    """
    rng = random.Random(seed)
    work: "queue.Queue" = queue.Queue()
    t = 0.0
    for n in range(total):
        t += rng.expovariate(rate_rps)
        work.put((t, n % N_SOURCES, TENANT_MIX[n % len(TENANT_MIX)]))
    for _ in range(OVER_CONCURRENCY):
        work.put(None)

    lock = threading.Lock()
    tenants = {
        name: {"offered": 0, "completed": 0, "rate_limited": 0,
               "shed": 0, "queue_full": 0, "lost": 0, "drift": 0}
        for name in TENANTS
    }
    recorders = {name: LatencyRecorder() for name in TENANTS}
    fired = [0]
    epoch = time.perf_counter()

    def worker():
        try:
            with SafeFlowClient(host=host, port=port, retries=0,
                                request_timeout=300.0) as client:
                while True:
                    item = work.get()
                    if item is None:
                        return
                    offset, i, tenant = item
                    delay = (epoch + offset) - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    with lock:
                        tenants[tenant]["offered"] += 1
                        fired[0] += 1
                        n_fired = fired[0]
                    if on_progress is not None:
                        on_progress(n_fired)
                    try:
                        r = client.analyze(source=SOURCES[i][1],
                                           filename=SOURCES[i][0],
                                           tenant=tenant)
                    except ServerError as exc:
                        with lock:
                            if exc.name in ADMISSION:
                                tenants[tenant][exc.name] += 1
                            else:
                                tenants[tenant]["lost"] += 1
                        continue
                    except Exception:
                        with lock:
                            tenants[tenant]["lost"] += 1
                        continue
                    latency = time.perf_counter() - (epoch + offset)
                    with lock:
                        if r["render"] == expected[i]:
                            tenants[tenant]["completed"] += 1
                        else:
                            tenants[tenant]["drift"] += 1
                    recorders[tenant].record(latency)
        except Exception:
            pass

    threads = [threading.Thread(target=worker)
               for _ in range(OVER_CONCURRENCY)]
    wall0 = time.perf_counter()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    wall = time.perf_counter() - wall0

    completed = sum(c["completed"] for c in tenants.values())
    refused = sum(c["rate_limited"] + c["shed"] + c["queue_full"]
                  for c in tenants.values())
    for name, rec in recorders.items():
        if tenants[name]["completed"]:
            tenants[name]["latency"] = rec.summary()
    return {
        "requests": total,
        "target_rate_rps": rate_rps,
        "concurrency": OVER_CONCURRENCY,
        "wall_s": wall,
        "completed": completed,
        "refused": refused,
        "lost": sum(c["lost"] for c in tenants.values()),
        "drift": sum(c["drift"] for c in tenants.values()),
        "goodput_rps": completed / wall if wall else 0.0,
        "tenants": tenants,
    }


def fleet_qos(router):
    snapshot = router.metrics_snapshot()
    return {
        "qos": snapshot.get("qos", {}),
        "router": snapshot.get("router", {}),
    }


def run_bench(out_path, smoke):
    sat_n = SMOKE_SAT if smoke else FULL_SAT
    over_n = SMOKE_OVER if smoke else FULL_OVER
    print(f"bench_overload: {'smoke' if smoke else 'full'} mode, "
          f"saturation={sat_n}, overload={over_n} at "
          f"{OVERLOAD_FACTOR:.0f}x", flush=True)
    expected = expected_renders()

    import tempfile
    workdir = Path(tempfile.mkdtemp(prefix="bench-overload-"))
    tenants_path = write_tenants(workdir / "tenants.json")
    router, host, port = start_fleet(workdir / "fleet", tenants_path)
    try:
        prime(host, port, expected)
        saturation = saturation_loop(host, port, sat_n, expected)
        if saturation["errors"]:
            raise AssertionError("saturation phase saw verdict errors")
        print(f"  saturation: {saturation['throughput_rps']:.0f} req/s "
              f"p50 {saturation['p50_s'] * 1e3:.2f} ms "
              f"p99 {saturation['p99_s'] * 1e3:.2f} ms", flush=True)
        rate = max(1.0, saturation["throughput_rps"] * OVERLOAD_FACTOR)
        overload = overload_loop(host, port, over_n, rate, expected)
        qos = fleet_qos(router)
    finally:
        router.stop()

    goodput_fraction = (overload["goodput_rps"]
                        / saturation["throughput_rps"]
                        if saturation["throughput_rps"] else 0.0)
    payload = {
        "mode": "smoke" if smoke else "full",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "params": {
            "sources": N_SOURCES,
            "overload_factor": OVERLOAD_FACTOR,
            "tenant_mix": list(TENANT_MIX),
            "sat_concurrency": SAT_CONCURRENCY,
            "over_concurrency": OVER_CONCURRENCY,
        },
        "saturation": saturation,
        "overload": overload,
        "fleet": qos,
        "ratios": {
            "goodput_fraction": goodput_fraction,
        },
    }
    merged = _merge_out(out_path, payload)
    shed = sum(c["shed"] for c in overload["tenants"].values())
    limited = sum(c["rate_limited"]
                  for c in overload["tenants"].values())
    print(f"bench_overload: goodput {overload['goodput_rps']:.0f} req/s "
          f"({goodput_fraction * 100:.0f}% of saturation) under "
          f"{OVERLOAD_FACTOR:.0f}x load; {overload['completed']} served, "
          f"{limited} rate-limited, {shed} shed, "
          f"{overload['lost']} lost -> {out_path}", flush=True)
    return merged


def run_chaos(out_path):
    """SIGKILL one shard mid-overload: breaker opens, goodput
    recovers, zero accepted-then-dropped."""
    import tempfile
    expected = expected_renders()
    workdir = Path(tempfile.mkdtemp(prefix="bench-overload-chaos-"))
    tenants_path = write_tenants(workdir / "tenants.json")
    router, host, port = start_fleet(workdir / "fleet", tenants_path)
    try:
        prime(host, port, expected)
        sat = saturation_loop(host, port, SMOKE_SAT, expected)
        rate = max(1.0, sat["throughput_rps"] * OVERLOAD_FACTOR)

        killed = [False]

        def kill_mid_storm(n_fired):
            if killed[0] or n_fired < CHAOS_OVER // 4:
                return
            killed[0] = True
            victim = router._shard_list()[0].backend.pid
            if victim is not None:
                os.kill(victim, signal.SIGKILL)

        storm = overload_loop(host, port, CHAOS_OVER, rate, expected,
                              on_progress=kill_mid_storm)

        # recovery: once the shard is back, a clean wave must complete
        deadline = time.monotonic() + 60
        health = None
        with SafeFlowClient(host=host, port=port,
                            request_timeout=30.0) as client:
            while time.monotonic() < deadline:
                health = client.call("health")
                restarts = sum(s.get("restarts", 0)
                               for s in health.get("shards", []))
                if health["status"] == "ok" and restarts >= 1:
                    break
                time.sleep(0.5)
            recovery_errors = 0
            for i, (name, src) in enumerate(SOURCES):
                r = client.analyze(source=src, filename=name,
                                   tenant="gold")
                if r["render"] != expected[i]:
                    recovery_errors += 1
        qos = fleet_qos(router)
    finally:
        router.stop()

    restarts = sum(s.get("restarts", 0)
                   for s in (health or {}).get("shards", []))
    chaos = {
        "requests": storm["requests"],
        "completed": storm["completed"],
        "refused": storm["refused"],
        "lost": storm["lost"],
        "drift": storm["drift"],
        "breaker_opens": qos["qos"].get("breaker_opens", 0),
        "shard_restarts": restarts,
        "recovered": (health is not None and health["status"] == "ok"
                      and recovery_errors == 0),
        "recovery_errors": recovery_errors,
    }
    _merge_out(out_path, {"chaos": chaos})
    ok = (chaos["lost"] == 0 and chaos["drift"] == 0
          and chaos["breaker_opens"] >= 1
          and chaos["recovered"] and chaos["shard_restarts"] >= 1)
    print(f"bench_overload chaos: {chaos['completed']} served, "
          f"{chaos['refused']} refused, {chaos['lost']} lost, "
          f"breaker opens={chaos['breaker_opens']}, "
          f"restarts={chaos['shard_restarts']} -> "
          f"{'PASS' if ok else 'FAIL'}", flush=True)
    return ok


def _merge_out(out_path, payload):
    """Update ``out_path`` in place so --chaos can annotate a run."""
    data = {}
    if Path(out_path).exists():
        try:
            data = json.loads(Path(out_path).read_text())
        except ValueError:
            data = {}
    data.update(payload)
    Path(out_path).write_text(json.dumps(data, indent=2) + "\n")
    return data


def run_check(out_path):
    """Gate the machine-independent contract of a recorded run."""
    data = json.loads(Path(out_path).read_text())
    failures = []

    def gate(ok, message):
        print(f"  [{'ok' if ok else 'FAIL'}] {message}")
        if not ok:
            failures.append(message)

    overload = data["overload"]
    fraction = data["ratios"]["goodput_fraction"]
    gate(fraction >= MIN_GOODPUT_FRACTION,
         f"goodput under {data['params']['overload_factor']:.0f}x load "
         f"{fraction * 100:.0f}% >= {MIN_GOODPUT_FRACTION * 100:.0f}% "
         f"of saturation throughput")
    gate(overload["lost"] == 0,
         "zero accepted-then-dropped (every request served or refused "
         "with a structured admission code)")
    gate(overload["drift"] == 0,
         "accepted results byte-identical to the unloaded run")
    for name, counts in sorted(overload["tenants"].items()):
        gate(counts["completed"] >= 1,
             f"tenant {name!r} not starved "
             f"({counts['completed']}/{counts['offered']} served)")
        latency = counts.get("latency")
        if latency:
            gate(latency["p99_s"] >= latency["p50_s"],
                 f"tenant {name!r}: p99 >= p50")
    limited = sum(c["rate_limited"]
                  for c in overload["tenants"].values())
    shed = sum(c["shed"] for c in overload["tenants"].values())
    print(f"  [info] {limited} rate-limited, {shed} shed, "
          f"{overload['refused']} total refusals under overload")
    if "chaos" in data:
        chaos = data["chaos"]
        gate(chaos["lost"] == 0 and chaos["drift"] == 0,
             "chaos: zero accepted-then-dropped under shard SIGKILL")
        gate(chaos["breaker_opens"] >= 1,
             f"chaos: circuit breaker opened "
             f"({chaos['breaker_opens']} time(s))")
        gate(chaos["recovered"] and chaos["shard_restarts"] >= 1,
             "chaos: dead shard restarted and goodput recovered")
    if failures:
        print(f"bench_overload check: {len(failures)} gate(s) FAILED")
        return False
    print("bench_overload check: all gates passed")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="results JSON path "
                             "(default: BENCH_overload.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run")
    parser.add_argument("--chaos", action="store_true",
                        help="SIGKILL-one-shard drill; merges a 'chaos' "
                             "block into --out")
    parser.add_argument("--check", action="store_true",
                        help="gate the contract recorded in --out")
    args = parser.parse_args(argv)

    if args.check:
        return 0 if run_check(args.out) else 1
    if args.chaos:
        return 0 if run_chaos(args.out) else 1
    run_bench(args.out, smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
