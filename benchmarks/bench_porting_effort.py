"""§4 — porting effort: 'a very small number of source changes'.

The paper reports that adhering to the language restrictions required
zero source changes, and applying the annotations required only
separating the monitoring function out of a larger function in two
systems (7 changed lines / 86-line diff / 1 function for IP, the same
shape for Double IP, nothing for Generic Simplex).

We diff each bundled ``original/`` (pre-port) core against the ported
version and check the same *shape*: Generic Simplex untouched; IP and
Double IP each gained exactly one monitoring function and a diff that
is small relative to the file.
"""

import difflib

import pytest

from repro.corpus import load_system

PAPER = {
    "ip": {"functions": 1, "paper_lines": 7, "paper_diff": 86},
    "double_ip": {"functions": 1, "paper_lines": 7, "paper_diff": 88},
}

NEW_MONITOR = {"ip": "monitorCommand", "double_ip": "monitorCmdB"}


def diff_stats(original: str, ported: str):
    original_lines = original.splitlines()
    ported_lines = ported.splitlines()
    diff = list(difflib.unified_diff(original_lines, ported_lines, n=0))
    added = sum(1 for l in diff if l.startswith("+") and not
                l.startswith("+++"))
    removed = sum(1 for l in diff if l.startswith("-") and not
                  l.startswith("---"))
    return added, removed, len(diff)


@pytest.mark.parametrize("key", ["ip", "double_ip"])
def test_ported_systems_diff_shape(benchmark, key):
    system = load_system(key)
    original = system.original_files[0].read_text()
    ported = next(p for p in system.core_files
                  if p.name == system.original_files[0].name).read_text()

    added, removed, diff_len = benchmark.pedantic(
        lambda: diff_stats(original, ported), rounds=3, iterations=1
    )

    # exactly one monitoring function was separated out
    monitor = NEW_MONITOR[key]
    assert f"double {monitor}(" in ported
    assert f"double {monitor}(" not in original

    # the change is local: small relative to the whole file
    total = len(ported.splitlines())
    assert diff_len < total, "diff must be a strict subset of the file"
    assert added + removed < 0.45 * total

    benchmark.extra_info.update({
        "added+removed (paper diff)":
            f"{added + removed} ({PAPER[key]['paper_diff']})",
        "functions separated (paper)": f"1 ({PAPER[key]['functions']})",
    })


def test_generic_simplex_needed_no_changes():
    """Paper: 0 source changes for Generic Simplex."""
    system = load_system("generic_simplex")
    assert system.original_files == []
    assert system.paper.source_changes_lines == 0


@pytest.mark.parametrize("key", ["ip", "double_ip"])
def test_original_differs_only_in_monitor_extraction(key):
    """Outside the decision logic, original and ported are identical
    module structure: same globals, same helper functions."""
    system = load_system(key)
    original = system.original_files[0].read_text()
    ported = next(p for p in system.core_files
                  if p.suffix == ".c").read_text()
    for symbol in ("initShm", "checkWatchdog", "superviseNoncore",
                   "readSensors"):
        assert symbol in original and symbol in ported
