"""Figures 2/3 — the running example and its §3.3 analysis walkthrough.

The paper's only worked 'figure experiment': analyzing the simplified
core controller of Figure 2 (with Figure 3's annotated initializing
function) must report

- the dereference of ``feedback`` in the decision chain as an
  unmonitored non-core access (one warning, zero false positives among
  warnings), and
- the critical ``output`` as dependent on the unmonitored feedback,

and the dependency must disappear under the paper's suggested fix
(pass a local copy instead of the shared pointer).
"""

import pytest

from repro import SafeFlow
from repro.corpus.running_example import RUNNING_EXAMPLE


@pytest.fixture(scope="module")
def analyzer():
    return SafeFlow()


def test_running_example_analysis(benchmark, analyzer):
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(RUNNING_EXAMPLE,
                                        filename="figure2.c",
                                        name="running-example"),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    # exactly one unmonitored access: feedback in the decision chain
    assert len(report.warnings) == 1
    assert report.warnings[0].region == "feedback"
    # output depends on it (through control flow in decision/checkSafety)
    assert len(report.errors) == 1
    error = report.errors[0]
    assert error.variable == "output"
    assert "feedback" in error.message
    # the witness reconstructs the §3.3 chain
    witness = "\n".join(error.witness)
    assert "checkSafety" in witness and "decision" in witness
    benchmark.extra_info["warnings"] = len(report.warnings)
    benchmark.extra_info["dependencies"] = len(report.errors)


def test_running_example_fix(benchmark, analyzer):
    """§3.3: 'use a local copy of the feedback as an argument'."""
    fixed = RUNNING_EXAMPLE.replace(
        "int checkSafety(SHMData *f, SHMData *nc)",
        "int checkSafety(double fb, SHMData *nc)",
    ).replace(
        "if (f->feedback > 100.0)", "if (fb > 100.0)"
    ).replace(
        "double decision(SHMData *f, double safe, SHMData *nc)",
        "double decision(double fb, double safe, SHMData *nc)",
    ).replace(
        "if (checkSafety(f, nc))", "if (checkSafety(fb, nc))"
    ).replace(
        "output = decision(feedback, safeControl, noncoreCtrl);",
        "output = decision(safeControl, safeControl, noncoreCtrl);",
    )
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(fixed, name="running-example-fixed"),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert report.passed
