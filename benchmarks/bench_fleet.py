"""Million-request load harness for the fleet router.

Drives a real ``safeflow fleet`` (process-backend shards, analyses on
daemon threads) at shard counts 1/2/4/8 in two disciplines:

- *closed loop*: N persistent clients issue requests back-to-back —
  measures the service's sustainable throughput and in-service latency;
- *open loop*: arrivals follow a Poisson process at a fixed fraction of
  the measured closed-loop throughput, and latency is measured from the
  *scheduled arrival* — queueing delay counts, as it does for callers.

Every response is checked byte-identical against the direct
(in-process ``SafeFlow``) verdict for its source, so the bench is also
a million-request correctness proof. Results land in
``BENCH_fleet.json`` along with the machine's CPU count — absolute
throughput and the shard-scaling curve are machine-dependent (a
1-core container cannot scale CPU-bound work), so the CI gate
(``--check``) only enforces machine-independent ratios: router
overhead over a direct daemon on a representative corpus job, warm
cache-hit rates, monotone quantiles, zero errors, and (when run with
``--chaos``) zero dropped requests under shard SIGKILL.

Usage::

    python benchmarks/bench_fleet.py               # full >=1e6 run
    python benchmarks/bench_fleet.py --smoke       # CI-sized (1e4)
    python benchmarks/bench_fleet.py --chaos       # SIGKILL drill
    python benchmarks/bench_fleet.py --check       # gate the JSON
"""

import argparse
import json
import os
import platform
import queue
import random
import signal
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import AnalysisConfig          # noqa: E402
from repro.core.driver import SafeFlow                # noqa: E402
from repro.corpus import load_system                  # noqa: E402
from repro.fleet import FleetConfig, FleetRouter      # noqa: E402
from repro.perf.latency import LatencyRecorder        # noqa: E402
from repro.server import SafeFlowClient, SafeFlowServer  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_fleet.json"

#: distinct job shapes so the ring actually spreads load
N_SOURCES = 32
SOURCES = [
    (
        f"unit{i}.c",
        "int reg%d; int step%d(int x) { if (x > %d) reg%d = x; return x; }\n"
        "int main(void) { return step%d(%d); }\n" % (i, i, i, i, i, i),
    )
    for i in range(N_SOURCES)
]

#: representative job for the router-overhead ratio: the paper's
#: inverted-pendulum controller from the repo corpus (~10ms warm).
#: The tiny synthetic units above maximize request *rate* for the
#: load phases, but a sub-millisecond request is a degenerate
#: denominator for a relative overhead gate — the ~0.3ms asyncio
#: proxy hop is recorded separately as the micro ratio.
OVERHEAD_SYSTEM = "ip"

SHARD_COUNTS = [1, 2, 4, 8]
CLOSED_CONCURRENCY = 8
OPEN_CONCURRENCY = 16
#: open-loop target rate as a fraction of measured closed throughput
OPEN_RATE_FRACTION = 0.6

FULL_CLOSED = 220_000
FULL_OPEN = 30_000
FULL_DIRECT = 10_000
FULL_CORPUS = 1_000

SMOKE_CLOSED = 4_000
SMOKE_OPEN = 500
SMOKE_DIRECT = 500
SMOKE_CORPUS = 200
SMOKE_SHARDS = [1, 4]

MAX_OVERHEAD_P50 = 0.15
MIN_HIT_RATE = 0.90
MIN_SCALING_4X = 2.5


def expected_renders():
    """Direct-path verdicts — the byte-identity reference."""
    flow = SafeFlow(AnalysisConfig())
    return [
        flow.analyze_source(src, filename=name).render()
        for name, src in SOURCES
    ]


def start_fleet(shards, cache_root):
    router = FleetRouter(FleetConfig(
        shards=shards, port=0, cache_root=str(cache_root),
        backend="process", use_processes=False,
        health_interval=0.5,
    ))
    host, port = router.start()
    return router, host, port


def prime(host, port, expected):
    """One warm pass; also the preflight byte-identity check."""
    with SafeFlowClient(host=host, port=port, request_timeout=120.0) as c:
        for i, (name, src) in enumerate(SOURCES):
            r = c.analyze(source=src, filename=name)
            if r["render"] != expected[i]:
                raise AssertionError(
                    f"preflight: router verdict for {name} differs "
                    f"from direct analysis")


def closed_loop(host, port, total, expected, concurrency=CLOSED_CONCURRENCY):
    recorder = LatencyRecorder()
    errors = [0]
    per = total // concurrency

    def worker(wid):
        try:
            with SafeFlowClient(host=host, port=port,
                                request_timeout=300.0) as client:
                for n in range(per):
                    i = (wid + n) % N_SOURCES
                    t0 = time.perf_counter()
                    r = client.analyze(source=SOURCES[i][1],
                                       filename=SOURCES[i][0])
                    recorder.record(time.perf_counter() - t0)
                    if r["render"] != expected[i]:
                        errors[0] += 1
        except Exception:
            errors[0] += per

    threads = [threading.Thread(target=worker, args=(w,))
               for w in range(concurrency)]
    wall0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall0
    done = per * concurrency
    summary = recorder.summary()
    summary.update({
        "requests": done,
        "concurrency": concurrency,
        "wall_s": wall,
        "throughput_rps": done / wall if wall else 0.0,
        "errors": errors[0],
    })
    return summary


def open_loop(host, port, total, rate_rps, expected,
              concurrency=OPEN_CONCURRENCY, seed=1234):
    """Poisson arrivals at ``rate_rps``; latency includes queueing."""
    rng = random.Random(seed)
    work: "queue.Queue" = queue.Queue()
    t = 0.0
    for n in range(total):
        t += rng.expovariate(rate_rps)
        work.put((t, n % N_SOURCES))
    for _ in range(concurrency):
        work.put(None)

    recorder = LatencyRecorder()
    errors = [0]
    epoch = time.perf_counter()

    def worker():
        try:
            with SafeFlowClient(host=host, port=port,
                                request_timeout=300.0) as client:
                while True:
                    item = work.get()
                    if item is None:
                        return
                    offset, i = item
                    delay = (epoch + offset) - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    r = client.analyze(source=SOURCES[i][1],
                                       filename=SOURCES[i][0])
                    recorder.record(
                        time.perf_counter() - (epoch + offset))
                    if r["render"] != expected[i]:
                        errors[0] += 1
        except Exception:
            errors[0] += 1

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    wall0 = time.perf_counter()
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    wall = time.perf_counter() - wall0
    summary = recorder.summary()
    summary.update({
        "requests": total,
        "concurrency": concurrency,
        "target_rate_rps": rate_rps,
        "wall_s": wall,
        "throughput_rps": total / wall if wall else 0.0,
        "errors": errors[0],
    })
    return summary


def shard_cache_stats(router):
    """Frontend hit rates straight from each shard's metrics plane."""
    stats = []
    for state in router._shard_list():
        address = state.backend.address
        if not address:
            continue
        try:
            with SafeFlowClient(host=address[0], port=address[1],
                                request_timeout=30.0) as client:
                cache = client.metrics()["cache"]
        except Exception:
            continue
        hits = cache.get("frontend_hits", 0)
        misses = cache.get("frontend_misses", 0)
        stats.append({
            "shard": state.sid,
            "frontend_hits": hits,
            "frontend_misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else None,
        })
    return stats


def direct_baseline(cache_dir, rounds, expected):
    """Single daemon, no router: the micro overhead denominator."""
    server = SafeFlowServer(
        config=AnalysisConfig(cache_dir=str(cache_dir)),
        port=0, workers=1, use_processes=False)
    server.start()
    try:
        with SafeFlowClient(port=server.address[1],
                            request_timeout=300.0) as client:
            for i, (name, src) in enumerate(SOURCES):
                r = client.analyze(source=src, filename=name)
                assert r["render"] == expected[i]
            return timed_sequential(client, rounds, expected=expected)
    finally:
        server.stop()


def direct_corpus_baseline(cache_dir, rounds):
    """Direct daemon on the representative corpus job — the gated
    overhead ratio's denominator."""
    job = corpus_job()
    server = SafeFlowServer(
        config=AnalysisConfig(cache_dir=str(cache_dir)),
        port=0, workers=1, use_processes=False)
    server.start()
    try:
        with SafeFlowClient(port=server.address[1],
                            request_timeout=300.0) as client:
            expected = client.analyze(**job)["render"]
            return timed_sequential(client, rounds, job=job,
                                    expected=expected)
    finally:
        server.stop()


def corpus_job():
    system = load_system(OVERHEAD_SYSTEM)
    return {"files": [str(p) for p in system.core_files],
            "name": OVERHEAD_SYSTEM}


def timed_sequential(client, rounds, job=None, expected=None):
    """One client, back-to-back requests; the probe discipline both
    sides of the overhead ratio must share (zero concurrency, so the
    p50 delta is the router hop, not queueing)."""
    recorder = LatencyRecorder()
    wall0 = time.perf_counter()
    for n in range(rounds):
        if job is None:
            i = n % N_SOURCES
            kwargs = {"source": SOURCES[i][1], "filename": SOURCES[i][0]}
            want = expected[i] if expected else None
        else:
            kwargs, want = job, expected
        t0 = time.perf_counter()
        r = client.analyze(**kwargs)
        recorder.record(time.perf_counter() - t0)
        if want is not None and r["render"] != want:
            raise AssertionError("verdict drift during probe")
    wall = time.perf_counter() - wall0
    summary = recorder.summary()
    summary.update({
        "requests": rounds,
        "wall_s": wall,
        "throughput_rps": rounds / wall if wall else 0.0,
    })
    return summary


def sequential_probe(host, port, rounds, expected):
    """Micro-request probe through the router (informational ratio)."""
    with SafeFlowClient(host=host, port=port,
                        request_timeout=300.0) as client:
        return timed_sequential(client, rounds, expected=expected)


def corpus_probe(host, port, rounds):
    """Representative-request probe through the router (gated ratio)."""
    job = corpus_job()
    with SafeFlowClient(host=host, port=port,
                        request_timeout=300.0) as client:
        expected = client.analyze(**job)["render"]
        return timed_sequential(client, rounds, job=job,
                                expected=expected)


def bench_config(shards, cache_root, closed_n, open_n, expected,
                 probe_n=0, corpus_n=0):
    router, host, port = start_fleet(shards, cache_root)
    try:
        prime(host, port, expected)
        # probes run before the load phases so the overhead ratio
        # compares a fresh warm daemon against a fresh warm daemon —
        # a quarter-million requests of accumulated heap and metrics
        # state is not the router's doing
        probe = (sequential_probe(host, port, probe_n, expected)
                 if probe_n else None)
        corpus = corpus_probe(host, port, corpus_n) if corpus_n else None
        closed = closed_loop(host, port, closed_n, expected)
        rate = max(1.0, closed["throughput_rps"] * OPEN_RATE_FRACTION)
        open_ = open_loop(host, port, open_n, rate, expected)
        with SafeFlowClient(host=host, port=port,
                            request_timeout=30.0) as client:
            metrics = client.call("metrics")
        caches = shard_cache_stats(router)
    finally:
        router.stop()
    result = {
        "shards": shards,
        "byte_identity": closed["errors"] == 0 and open_["errors"] == 0,
        "closed_loop": closed,
        "open_loop": open_,
        "router": metrics["router"],
        "shard_cache": caches,
    }
    if probe is not None:
        result["router_probe"] = probe
    if corpus is not None:
        result["corpus_probe"] = corpus
    return result


def run_bench(out_path, smoke):
    shard_counts = SMOKE_SHARDS if smoke else SHARD_COUNTS
    closed_n = SMOKE_CLOSED if smoke else FULL_CLOSED
    open_n = SMOKE_OPEN if smoke else FULL_OPEN
    direct_n = SMOKE_DIRECT if smoke else FULL_DIRECT
    corpus_n = SMOKE_CORPUS if smoke else FULL_CORPUS

    print(f"bench_fleet: {'smoke' if smoke else 'full'} mode, "
          f"shards={shard_counts}, closed={closed_n}, open={open_n}",
          flush=True)
    expected = expected_renders()

    import tempfile
    workdir = tempfile.mkdtemp(prefix="bench-fleet-")

    direct = direct_baseline(Path(workdir) / "direct", direct_n, expected)
    print(f"  direct daemon: p50 {direct['p50_s'] * 1e3:.2f} ms, "
          f"{direct['throughput_rps']:.0f} req/s", flush=True)
    direct_corpus = direct_corpus_baseline(
        Path(workdir) / "direct-corpus", corpus_n)
    print(f"  direct daemon, corpus {OVERHEAD_SYSTEM!r}: "
          f"p50 {direct_corpus['p50_s'] * 1e3:.2f} ms", flush=True)

    configs = []
    for shards in shard_counts:
        result = bench_config(
            shards, Path(workdir) / f"fleet-{shards}",
            closed_n, open_n, expected,
            probe_n=direct_n if shards == 1 else 0,
            corpus_n=corpus_n if shards == 1 else 0)
        configs.append(result)
        closed = result["closed_loop"]
        print(f"  {shards} shard(s): closed {closed['throughput_rps']:.0f} "
              f"req/s p50 {closed['p50_s'] * 1e3:.2f} ms "
              f"p99 {closed['p99_s'] * 1e3:.2f} ms | open p50 "
              f"{result['open_loop']['p50_s'] * 1e3:.2f} ms | "
              f"steals {result['router']['steals']}", flush=True)

    one = next(c for c in configs if c["shards"] == 1)
    # gated ratio: representative corpus job (warm ~10 ms) through the
    # 1-shard fleet vs. the direct daemon, same sequential discipline.
    # The micro ratio on sub-ms synthetic units is recorded but not
    # gated — it divides the fixed ~0.3 ms proxy hop by a degenerate
    # denominator.
    overhead = (one["corpus_probe"]["p50_s"]
                / direct_corpus["p50_s"]) - 1.0
    overhead_micro = (one["router_probe"]["p50_s"] / direct["p50_s"]) - 1.0
    scaling = {
        str(c["shards"]):
            c["closed_loop"]["throughput_rps"]
            / one["closed_loop"]["throughput_rps"]
        for c in configs if c["shards"] != 1
    }
    total_requests = (
        direct["requests"] + direct_corpus["requests"] + 1  # warm round
        + sum(c["closed_loop"]["requests"] + c["open_loop"]["requests"]
              + c.get("router_probe", {}).get("requests", 0)
              + c.get("corpus_probe", {}).get("requests", 0)
              + N_SOURCES  # priming
              for c in configs))

    payload = {
        "mode": "smoke" if smoke else "full",
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "params": {
            "sources": N_SOURCES,
            "closed_concurrency": CLOSED_CONCURRENCY,
            "open_concurrency": OPEN_CONCURRENCY,
            "open_rate_fraction": OPEN_RATE_FRACTION,
        },
        "total_requests": total_requests,
        "direct": direct,
        "direct_corpus": direct_corpus,
        "overhead_system": OVERHEAD_SYSTEM,
        "configs": configs,
        "ratios": {
            "router_overhead_p50": overhead,
            "router_overhead_p50_micro": overhead_micro,
            "throughput_scaling_vs_1": scaling,
        },
    }
    merged = _merge_out(out_path, payload)
    print(f"bench_fleet: {total_requests} requests total, "
          f"router overhead {overhead * 100:+.1f}% at p50 -> {out_path}",
          flush=True)
    return merged


def run_chaos(out_path):
    """SIGKILL one shard mid-burst: zero dropped, zero drift."""
    import tempfile
    workdir = tempfile.mkdtemp(prefix="bench-fleet-chaos-")
    expected = expected_renders()
    router, host, port = start_fleet(4, Path(workdir) / "fleet")
    errors = [0]
    done = [0]
    try:
        prime(host, port, expected)
        rounds, workers = 50, 6

        def worker(wid):
            try:
                with SafeFlowClient(host=host, port=port,
                                    request_timeout=300.0) as client:
                    for n in range(rounds):
                        i = (wid + n) % N_SOURCES
                        r = client.analyze(source=SOURCES[i][1],
                                           filename=SOURCES[i][0])
                        if r["render"] != expected[i]:
                            errors[0] += 1
                        else:
                            done[0] += 1
            except Exception:
                errors[0] += 1

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(workers)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        victim = router._shard_list()[0].backend.pid
        os.kill(victim, signal.SIGKILL)
        for t in threads:
            t.join()
        deadline = time.monotonic() + 60
        health = None
        with SafeFlowClient(host=host, port=port,
                            request_timeout=30.0) as client:
            while time.monotonic() < deadline:
                health = client.call("health")
                restarts = sum(s["restarts"] for s in health["shards"])
                if health["status"] == "ok" and restarts >= 1:
                    break
                time.sleep(0.5)
            metrics = client.call("metrics")
    finally:
        router.stop()

    chaos = {
        "requests": rounds * workers,
        "completed": done[0],
        "dropped": rounds * workers - done[0] - errors[0],
        "errors": errors[0],
        "recovered": health is not None and health["status"] == "ok",
        "shard_restarts": metrics["router"]["shard_restarts"],
        "redispatches": metrics["router"]["redispatches"],
    }
    _merge_out(out_path, {"chaos": chaos})
    ok = (errors[0] == 0 and done[0] == rounds * workers
          and chaos["recovered"] and chaos["shard_restarts"] >= 1)
    print(f"bench_fleet chaos: {done[0]}/{rounds * workers} answered, "
          f"{errors[0]} errors, restarts={chaos['shard_restarts']}, "
          f"redispatches={chaos['redispatches']} -> "
          f"{'PASS' if ok else 'FAIL'}", flush=True)
    return ok


def _merge_out(out_path, payload):
    """Update ``out_path`` in place so --chaos can annotate a run."""
    data = {}
    if Path(out_path).exists():
        try:
            data = json.loads(Path(out_path).read_text())
        except ValueError:
            data = {}
    data.update(payload)
    Path(out_path).write_text(json.dumps(data, indent=2) + "\n")
    return data


def run_check(out_path):
    """Gate the machine-independent ratios of a recorded run."""
    data = json.loads(Path(out_path).read_text())
    failures = []

    def gate(ok, message):
        print(f"  [{'ok' if ok else 'FAIL'}] {message}")
        if not ok:
            failures.append(message)

    overhead = data["ratios"]["router_overhead_p50"]
    gate(overhead <= MAX_OVERHEAD_P50,
         f"router overhead at p50 {overhead * 100:+.1f}% "
         f"<= {MAX_OVERHEAD_P50 * 100:.0f}% "
         f"(corpus {data.get('overhead_system', '?')!r})")
    micro = data["ratios"].get("router_overhead_p50_micro")
    if micro is not None:
        print(f"  [info] micro-request overhead {micro * 100:+.1f}% at "
              f"p50 — fixed proxy hop over a sub-ms request; not gated")
    for config in data["configs"]:
        shards = config["shards"]
        gate(config["byte_identity"],
             f"{shards} shard(s): verdicts byte-identical to direct")
        for phase in ("closed_loop", "open_loop"):
            block = config[phase]
            gate(block["errors"] == 0, f"{shards} shard(s) {phase}: 0 errors")
            gate(block["p99_s"] >= block["p50_s"],
                 f"{shards} shard(s) {phase}: p99 >= p50")
        for cache in config["shard_cache"]:
            rate = cache["hit_rate"]
            if rate is None:
                continue
            gate(rate >= MIN_HIT_RATE,
                 f"{shards} shard(s): shard {cache['shard']} warm "
                 f"hit rate {rate:.3f} >= {MIN_HIT_RATE}")
    cpus = data["machine"]["cpu_count"] or 1
    scaling = data["ratios"]["throughput_scaling_vs_1"]
    if cpus >= 4 and "4" in scaling:
        gate(scaling["4"] >= MIN_SCALING_4X,
             f"4-shard scaling {scaling['4']:.2f}x >= {MIN_SCALING_4X}x "
             f"({cpus} cores)")
    elif "4" in scaling:
        print(f"  [skip] 4-shard scaling gate: {cpus} core(s) cannot "
              f"scale CPU-bound work (measured {scaling['4']:.2f}x)")
    if "chaos" in data:
        chaos = data["chaos"]
        gate(chaos["dropped"] == 0 and chaos["errors"] == 0,
             "chaos: zero dropped, zero errors under shard SIGKILL")
        gate(chaos["recovered"] and chaos["shard_restarts"] >= 1,
             "chaos: dead shard restarted and fleet recovered")
    if data["mode"] == "full":
        gate(data["total_requests"] >= 1_000_000,
             f"full run drove {data['total_requests']} >= 1e6 requests")
    if failures:
        print(f"bench_fleet check: {len(failures)} gate(s) FAILED")
        return False
    print("bench_fleet check: all gates passed")
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="results JSON path (default: BENCH_fleet.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (~1e4 requests)")
    parser.add_argument("--chaos", action="store_true",
                        help="SIGKILL-one-shard drill; merges a 'chaos' "
                             "block into --out")
    parser.add_argument("--check", action="store_true",
                        help="gate the ratios recorded in --out")
    args = parser.parse_args(argv)

    if args.check:
        return 0 if run_check(args.out) else 1
    if args.chaos:
        return 0 if run_chaos(args.out) else 1
    run_bench(args.out, smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
