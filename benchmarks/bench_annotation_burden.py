"""§3.1 / §4 — the annotation-burden claim.

The paper argues the annotation language is light-weight: 11/22/23
total annotation lines per system, with the majority (9/15/15) spent
on initializing functions, and *zero* source changes needed to satisfy
the language restrictions. This bench measures annotation lines, the
init-function share, and annotation density per core LoC.
"""

import pytest

from repro.annotations import AssertSafe, AssumeCore
from repro.corpus import SYSTEM_KEYS, load_system
from repro.frontend import load_files

PAPER_TOTALS = {"ip": 11, "generic_simplex": 22, "double_ip": 23}
PAPER_INIT = {"ip": 9, "generic_simplex": 15, "double_ip": 15}


def census(system):
    program = load_files([str(p) for p in system.core_files])
    total = 0
    init_lines = 0
    for annotation in program.annotations:
        lines = max(1, annotation.raw_text.strip().count("\n") + 1)
        total += lines
        first = annotation.items[0]
        if not isinstance(first, (AssertSafe, AssumeCore)):
            init_lines += lines
    return total, init_lines


@pytest.mark.parametrize("key", SYSTEM_KEYS)
def test_annotation_census(benchmark, key):
    system = load_system(key)
    total, init_lines = benchmark.pedantic(
        lambda: census(system), rounds=3, iterations=1
    )
    assert total == PAPER_TOTALS[key]
    assert init_lines == PAPER_INIT[key]
    density = total / max(1, system.loc_core())
    # "the number of lines of annotation is small in all cases"
    assert density < 0.15
    benchmark.extra_info.update({
        "total (paper)": f"{total} ({PAPER_TOTALS[key]})",
        "init (paper)": f"{init_lines} ({PAPER_INIT[key]})",
        "per-100-core-loc": round(100 * density, 1),
    })


def test_init_annotations_are_majority():
    """§4: 'majority of the annotations ... were used to annotate
    initializing functions.'"""
    for key in SYSTEM_KEYS:
        total, init_lines = census(load_system(key))
        assert init_lines * 2 > total, key
