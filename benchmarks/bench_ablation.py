"""Ablations of the design choices DESIGN.md calls out.

1. *Context sensitivity* (§3.3): per-call-sequence re-analysis vs a
   single merged context. Insensitive analysis must be conservative
   (never misses a dependency) but loses precision — monitored reads
   become warnings again.
2. *Control-dependence tracking* (§3.4.1): disabling it removes every
   candidate false positive but also removes real control-flow
   channels — quantified on the corpus.
3. *Restriction checking* (phase 2): its cost share of a full run.
"""

import pytest

from repro import AnalysisConfig, SafeFlow
from repro.corpus import SYSTEM_KEYS, load_system
from repro.corpus.running_example import RUNNING_EXAMPLE


@pytest.mark.parametrize("context_sensitive", [True, False],
                         ids=["context-sensitive", "context-insensitive"])
def test_context_sensitivity_precision(benchmark, context_sensitive):
    config = AnalysisConfig(context_sensitive=context_sensitive)
    analyzer = SafeFlow(config)
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(RUNNING_EXAMPLE, name="fig2"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    if context_sensitive:
        # precise: only the feedback read is unmonitored
        assert len(report.warnings) == 1
    else:
        # merged contexts: monitored reads re-appear as warnings
        assert len(report.warnings) >= 1
    benchmark.extra_info["warnings"] = len(report.warnings)
    benchmark.extra_info["errors"] = len(report.errors)


def test_context_insensitive_is_conservative_on_corpus():
    """Everything the precise analysis reports must still be reported."""
    for key in SYSTEM_KEYS:
        system = load_system(key)
        precise = system.analyze()
        merged = system.analyze(AnalysisConfig(context_sensitive=False))
        assert len(merged.warnings) >= len(precise.warnings), key
        assert len(merged.errors) >= len(precise.errors), key


@pytest.mark.parametrize("key", SYSTEM_KEYS)
def test_control_dependence_ablation(benchmark, key):
    """Without control tracking the false positives vanish — and so do
    the control-flow channels, which is why the paper keeps it on and
    triages manually instead."""
    system = load_system(key)
    no_control = AnalysisConfig(track_control_dependence=False)
    report = benchmark.pedantic(
        lambda: system.analyze(no_control), rounds=3, iterations=1
    )
    assert report.candidate_false_positives == []
    # the pure data errors (kill-pid etc.) survive
    assert len(report.confirmed_errors) >= 1
    full = system.analyze()
    assert len(full.errors) > len(report.errors)
    benchmark.extra_info["errors_without_control"] = len(report.errors)
    benchmark.extra_info["errors_with_control"] = len(full.errors)


@pytest.mark.parametrize("check_restrictions", [True, False],
                         ids=["with-phase2", "without-phase2"])
def test_restriction_phase_cost(benchmark, check_restrictions):
    system = load_system("generic_simplex")
    config = AnalysisConfig(check_restrictions=check_restrictions)
    report = benchmark.pedantic(
        lambda: system.analyze(config), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert len(report.warnings) == system.paper.warnings


@pytest.mark.parametrize("summary_mode", [False, True],
                         ids=["reanalysis", "esp-summaries"])
def test_summary_mode_cost(benchmark, summary_mode):
    """§3.3 last paragraph: 'The algorithm can be made more efficient by
    analyzing each function only once and summarizing the data
    dependencies' — implemented as summary_mode. Reports must be
    identical; the helper-analysis count drops when call sites differ
    only in argument taints."""
    from repro.corpus import generate_core

    program = generate_core(
        data_error_regions=2, control_fp_regions=2,
        benign_read_regions=1, monitored_regions=2, chain_depth=6,
    )
    config = AnalysisConfig(summary_mode=summary_mode)
    analyzer = SafeFlow(config)
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(program.source),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(report.confirmed_errors) == program.expected_errors
    assert len(report.candidate_false_positives) == \
        program.expected_false_positives
    benchmark.extra_info["contexts"] = report.stats.contexts_analyzed


def test_summary_mode_reports_identical_on_corpus():
    for key in SYSTEM_KEYS:
        system = load_system(key)
        base = system.analyze()
        summ = system.analyze(AnalysisConfig(summary_mode=True))
        assert base.counts() == summ.counts(), key


def test_triage_ablation():
    """With triage off, SafeFlow reports raw errors exactly as the tool
    in the paper does before manual inspection: errors + FPs combined."""
    system = load_system("generic_simplex")
    raw = system.analyze(AnalysisConfig(triage_control_dependence=False))
    triaged = system.analyze()
    assert len(raw.confirmed_errors) == (
        len(triaged.confirmed_errors) + len(triaged.candidate_false_positives)
    )
