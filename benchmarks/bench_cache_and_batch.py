"""Performance-layer benchmarks: cache speedup and batch throughput.

Two acceptance properties of the ``repro.perf`` layer, measured and
asserted:

- a warm-cache re-analysis of a corpus system is at least 2x faster
  than a cold one (the front end and the summary bodies are skipped);
- a 4-worker batch over the three Table-1 systems beats running the
  same jobs sequentially.

Run via ``make bench`` (saves ``BENCH_parallel.json``).
"""

import os
import shutil
import time

import pytest

from repro.core.config import AnalysisConfig
from repro.core.driver import SafeFlow
from repro.corpus import load_all, load_system
from repro.perf.batch import BatchJob


def _best_of(fn, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_warm_cache_vs_cold(benchmark, tmp_path):
    """Warm re-analysis must be >= 2x faster than a cold run."""
    system = load_system("generic_simplex")
    cache_dir = str(tmp_path / "cache")
    config = AnalysisConfig(summary_mode=True, cache_dir=cache_dir)

    def cold_run():
        shutil.rmtree(cache_dir, ignore_errors=True)
        system.analyze(config)

    cold = _best_of(cold_run, rounds=3)

    system.analyze(config)  # prime both caches
    benchmark.pedantic(lambda: system.analyze(config),
                       rounds=5, iterations=1, warmup_rounds=1)
    warm = benchmark.stats.stats.min
    benchmark.extra_info["cold_seconds"] = cold
    benchmark.extra_info["speedup"] = cold / warm
    assert warm * 2.0 <= cold, (
        f"warm {warm * 1000:.1f}ms vs cold {cold * 1000:.1f}ms: "
        f"speedup {cold / warm:.2f}x < 2x"
    )


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="parallel speedup needs more than one CPU")
def test_batch_4_workers_vs_sequential(benchmark):
    """4-worker batch over the 3-system corpus must beat sequential.

    Only meaningful on multi-core hosts: the jobs are CPU-bound, so on
    a single core the fork/pickle overhead can never be recovered.
    """
    jobs = [
        BatchJob(name=system.key,
                 files=tuple(str(p) for p in system.core_files))
        for system in load_all()
    ]
    flow = SafeFlow(AnalysisConfig())  # no caches: raw parallelism

    sequential = _best_of(
        lambda: flow.analyze_batch(jobs, max_workers=1), rounds=2
    )

    benchmark.pedantic(lambda: flow.analyze_batch(jobs, max_workers=4),
                       rounds=3, iterations=1, warmup_rounds=1)
    parallel = benchmark.stats.stats.min
    benchmark.extra_info["sequential_seconds"] = sequential
    benchmark.extra_info["speedup"] = sequential / parallel
    assert parallel < sequential, (
        f"4 workers {parallel:.2f}s not faster than "
        f"sequential {sequential:.2f}s"
    )
