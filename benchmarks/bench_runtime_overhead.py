"""§1 — the run-time-overhead motivation.

'Static analysis offers the benefits of incurring no run-time
overheads and early error detection ... (run-time error dependency
detection incurs performance penalties).'

We quantify that penalty: the same Simplex control loop runs (a)
uninstrumented — what a statically verified core can deploy — and (b)
with run-time value-flow tracking on every shared-memory read. The
shape that must hold: tracking costs a significant multiple per
iteration, while the one-off static analysis amortizes to zero.
"""

import pytest

from repro import SafeFlow
from repro.corpus.running_example import RUNNING_EXAMPLE
from repro.runtime import RuntimeFlowTracker
from repro.simplex import pendulum_simplex

LOOP_STEPS = 5000


def _loop_plain(steps: int) -> float:
    total = 0.0
    gain = 0.37
    for i in range(steps):
        reading = 0.001 * (i % 97)
        output = gain * reading + 0.5 * total
        total = 0.9 * output
    return total


def _loop_tracked(tracker: RuntimeFlowTracker, steps: int) -> float:
    total = tracker.read_core(0.0)
    gain = tracker.read_core(0.37)
    for i in range(steps):
        reading = tracker.read_noncore("sensorBox", 0.001 * (i % 97))
        monitored = tracker.monitorized(reading)
        output = tracker.combine(
            lambda g, r, t: g * r + 0.5 * t, gain, monitored, total
        )
        total = tracker.combine(lambda o: 0.9 * o, output)
        tracker.assert_safe(total)
    return total.value


def test_uninstrumented_loop(benchmark):
    result = benchmark(_loop_plain, LOOP_STEPS)
    assert result == result  # finite


def test_runtime_tracked_loop(benchmark):
    tracker = RuntimeFlowTracker()
    result = benchmark(_loop_tracked, tracker, LOOP_STEPS)
    assert tracker.violations == []
    assert result == result


def test_overhead_ratio_is_significant():
    """The measured shape: run-time tracking costs multiples of the
    plain loop — the penalty static checking avoids."""
    import time

    start = time.perf_counter()
    _loop_plain(LOOP_STEPS * 4)
    plain = time.perf_counter() - start

    tracker = RuntimeFlowTracker()
    start = time.perf_counter()
    _loop_tracked(tracker, LOOP_STEPS * 4)
    tracked = time.perf_counter() - start

    assert tracked > 1.5 * plain, (
        f"expected tracking to cost visibly more (plain {plain:.4f}s, "
        f"tracked {tracked:.4f}s)"
    )


def test_static_analysis_is_one_off(benchmark):
    """The alternative cost: analyze the running example once."""
    analyzer = SafeFlow()
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(RUNNING_EXAMPLE, name="fig2"),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert len(report.warnings) == 1


def test_simplex_loop_with_and_without_tracking(benchmark):
    """End-to-end: the full pendulum loop with run-time tracking."""
    def run_with_tracker():
        system = pendulum_simplex(dt=0.01)
        system.tracker = RuntimeFlowTracker()
        system.run(1.0)
        return system.tracker.reads

    reads = benchmark.pedantic(run_with_tracker, rounds=3, iterations=1)
    assert reads > 0
