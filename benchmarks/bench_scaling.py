"""§3.3 — analysis-cost scaling.

The paper notes its critical-data analysis 'is exponential in run-time
complexity' because each function is re-analyzed per call sequence,
but argues this is acceptable since 'the core component in an embedded
system is simple'. These benchmarks measure how the Python
reimplementation's wall time grows with (a) code size and (b)
monitoring-context depth, and check the diagnosis stays exact while
scaling.
"""

import pytest

from repro import SafeFlow
from repro.corpus import generate_core


@pytest.mark.parametrize("filler", [0, 20, 40, 80])
def test_scaling_with_code_size(benchmark, filler):
    program = generate_core(
        data_error_regions=1, control_fp_regions=1,
        benign_read_regions=1, monitored_regions=1,
        filler_functions=filler,
    )
    report = benchmark.pedantic(
        lambda: SafeFlow().analyze_source(program.source),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(report.confirmed_errors) == program.expected_errors
    assert len(report.warnings) == program.expected_warnings
    benchmark.extra_info["loc"] = program.loc


@pytest.mark.parametrize("depth", [1, 2, 4, 8])
def test_scaling_with_context_depth(benchmark, depth):
    """Monitoring chains force per-context re-analysis down the call
    graph; contexts analyzed should grow with the chain depth."""
    program = generate_core(monitored_regions=2, chain_depth=depth)
    analyzer = SafeFlow()
    report = benchmark.pedantic(
        lambda: analyzer.analyze_source(program.source),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert report.stats.contexts_analyzed >= depth
    benchmark.extra_info["contexts"] = report.stats.contexts_analyzed


@pytest.mark.parametrize("regions", [2, 6, 12])
def test_scaling_with_region_count(benchmark, regions):
    program = generate_core(
        data_error_regions=regions // 2,
        control_fp_regions=regions - regions // 2,
        benign_read_regions=0, monitored_regions=0,
    )
    report = benchmark.pedantic(
        lambda: SafeFlow().analyze_source(program.source),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(report.warnings) == program.expected_warnings
    benchmark.extra_info["regions"] = regions


def test_corpus_core_analysis_is_interactive():
    """The whole Table 1 corpus must analyze in interactive time —
    'static analysis time ... is not a significant factor' (§3.3)."""
    import time
    from repro.corpus import load_all

    start = time.time()
    for system in load_all():
        system.analyze()
    elapsed = time.time() - start
    assert elapsed < 30.0
