"""Phase 1 — shared-memory regions and pointer identification."""

from .init_analysis import InitInterpreter, SymbolicPointer, check_init_layout
from .model import EMPTY_REGIONS, RegionSet, SharedRegion, regions
from .propagation import ResolvedAssume, ShmAnalysis

__all__ = [
    "EMPTY_REGIONS",
    "InitInterpreter",
    "RegionSet",
    "ResolvedAssume",
    "SharedRegion",
    "ShmAnalysis",
    "SymbolicPointer",
    "check_init_layout",
    "regions",
]
