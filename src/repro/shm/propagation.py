"""Phase 1: interprocedural identification of shared-memory pointers.

From the paper (§3.3): *"In the first phase, we discover the
initializing functions in the program and identify the shared memory
pointers initialized. We then propagate these pointers
interprocedurally using a bottom-up and top-down analysis on the
strongly connected components of the call graph."*

We implement the same computation as a whole-program fixpoint over a
function worklist seeded in bottom-up SCC order: region-pointer facts
flow bottom-up through return values and top-down through arguments
until every function's ``Value → RegionSet`` map stabilizes. Because
rule P2 forbids storing shared-memory pointers into memory, pointers
propagate only through SSA values (copies, casts, address arithmetic,
phis) and call bindings — which is what makes the identification
*precise* rather than conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..annotations.lang import (
    AnnotationItem,
    AssertSafe,
    AssumeCore,
    AssumeNoncore,
    AssumeShmvar,
    ShmInit,
)
from ..callgraph import CallGraph
from ..core.config import AnalysisConfig
from ..errors import AnnotationError
from ..frontend.driver import Program
from ..ir import (
    Argument,
    Call,
    Cast,
    FieldAddr,
    Function,
    IndexAddr,
    Instruction,
    Load,
    Phi,
    PointerType,
    Value,
)
from ..ir.values import GlobalVariable
from ..reporting.diagnostics import InitializationIssue, Severity
from .init_analysis import check_init_layout
from .model import EMPTY_REGIONS, RegionSet, SharedRegion


@dataclass
class ResolvedAssume:
    """An ``assume(core(p, off, size))`` with sizes evaluated to bytes."""

    pointer: str
    offset: int
    size: int
    is_parameter: bool
    parameter_index: int = -1
    location: Optional[object] = None


class ShmAnalysis:
    """Phase-1 results: regions, init functions, pointer propagation."""

    def __init__(self, program: Program, config: Optional[AnalysisConfig] = None):
        self.program = program
        self.config = config or AnalysisConfig()
        self.module = program.module
        self.callgraph = CallGraph(self.module)
        #: keep-going analysis: degraded mode or the recovery ladder —
        #: both promise the same fail-closed discipline around whatever
        #: the frontend could not certify
        self.fail_closed = bool(
            self.config.degraded_mode
            or getattr(self.config, "recover_tiers", ())
        )

        self.regions: Dict[str, SharedRegion] = {}
        self.init_functions: Set[str] = set()
        #: function name → resolved assume(core(...)) annotations
        self.monitor_assumes: Dict[str, List[ResolvedAssume]] = {}
        #: function name → socket/descriptor names annotated noncore
        #: (the §3.4.3 message-passing extension)
        self.noncore_descriptors: Dict[str, Set[str]] = {}
        self.init_issues: List[InitializationIssue] = []
        #: region name → static placement (or None) from init analysis
        self.placements: Dict[str, Optional[object]] = {}

        self.value_regions: Dict[Function, Dict[Value, RegionSet]] = {}
        self.arg_regions: Dict[Function, List[RegionSet]] = {}
        self.ret_regions: Dict[Function, RegionSet] = {}

    # ------------------------------------------------------------------

    def run(self) -> "ShmAnalysis":
        self._collect_annotations()
        if not self.config.unannotated_shm_is_core:
            # paranoid mode: refuse to trust encapsulation — every
            # declared region is treated as writable by non-core
            # components, whether annotated noncore or not
            for region in self.regions.values():
                region.noncore = True
        if self.fail_closed:
            # fail closed: a region initialized by a degraded function
            # cannot have its write-audit trusted, so treat it as
            # writable by non-core components
            degraded = getattr(self.program, "degraded_functions", set())
            for region in self.regions.values():
                if region.init_function in degraded:
                    region.noncore = True
        self._check_init_layouts()
        self._propagate()
        return self

    # ------------------------------------------------------------------
    # annotation collection
    # ------------------------------------------------------------------

    def _collect_annotations(self) -> None:
        sizeof = self.program.sizeof
        # first pass: find init functions and their shmvar declarations
        for fname, items in self.program.function_annotations.items():
            if any(isinstance(i, ShmInit) for i in items):
                self.init_functions.add(fname)
        for fname, items in self.program.function_annotations.items():
            func = self.module.get_function(fname)
            for item in items:
                try:
                    if isinstance(item, AssumeShmvar):
                        self._declare_region(fname, item, sizeof)
                    elif isinstance(item, AssumeNoncore):
                        if fname in self.init_functions:
                            self._mark_noncore(fname, item)
                        else:
                            self.noncore_descriptors.setdefault(
                                fname, set()
                            ).add(item.pointer)
                    elif isinstance(item, AssumeCore):
                        self._resolve_assume_core(fname, func, item, sizeof)
                    elif isinstance(item, (ShmInit, AssertSafe)):
                        continue
                except AnnotationError as exc:
                    if not self.fail_closed:
                        raise
                    self._degrade_annotation(fname, item, exc)

    def _degrade_annotation(self, fname: str, item: AnnotationItem,
                            exc: AnnotationError) -> None:
        """Record a failed annotation item and fail closed around it.

        The owning function is added to ``program.degraded_functions``:
        its monitoring assumptions can no longer be trusted, so the
        value-flow engine treats calls into it as unmonitored flow.
        """
        from ..degrade import KIND_ANNOTATION, DegradedUnit

        degraded = getattr(self.program, "degraded", None)
        if degraded is not None:
            degraded.append(DegradedUnit(
                kind=KIND_ANNOTATION,
                name=f"{type(item).__name__}({getattr(item, 'pointer', '')})",
                cause=exc.message,
                location=exc.location,
                function=fname,
            ))
        functions = getattr(self.program, "degraded_functions", None)
        if functions is not None:
            functions.add(fname)

    def _declare_region(self, fname: str, item: AssumeShmvar, sizeof) -> None:
        if fname not in self.init_functions:
            raise AnnotationError(
                f"shmvar({item.pointer}, ...) outside an shminit function",
                item.location,
            )
        try:
            size = item.size.evaluate(sizeof)
        except Exception as exc:
            raise AnnotationError(
                f"cannot evaluate shmvar size for {item.pointer}: {exc}",
                item.location,
            )
        element_type = None
        gv = self.module.globals.get(item.pointer)
        if gv is not None and isinstance(gv.declared_type, PointerType):
            element_type = gv.declared_type.pointee
        elif gv is None:
            if self.fail_closed:
                # degraded mode reports the missing symbol as a
                # DegradedUnit (fail-closed around the shminit function)
                # rather than a violation pinned to a phantom region
                raise AnnotationError(
                    f"shmvar pointer {item.pointer!r} does not name any "
                    f"global variable",
                    item.location,
                )
            self.init_issues.append(
                InitializationIssue(
                    message=(
                        f"shmvar pointer {item.pointer!r} is not a global "
                        f"shared-memory pointer variable"
                    ),
                    location=item.location,
                    function=fname,
                    severity=Severity.VIOLATION,
                    region_a=item.pointer,
                )
            )
        self.regions[item.pointer] = SharedRegion(
            name=item.pointer,
            size=size,
            element_type=element_type,
            init_function=fname,
            location=item.location,
        )

    def _mark_noncore(self, fname: str, item: AssumeNoncore) -> None:
        region = self.regions.get(item.pointer)
        if region is None:
            raise AnnotationError(
                f"noncore({item.pointer}) has no matching shmvar declaration",
                item.location,
            )
        region.noncore = True

    def _resolve_assume_core(
        self, fname: str, func: Optional[Function], item: AssumeCore, sizeof
    ) -> None:
        try:
            offset = item.offset.evaluate(sizeof)
            size = item.size.evaluate(sizeof)
        except Exception as exc:
            raise AnnotationError(
                f"cannot evaluate core() annotation sizes: {exc}", item.location
            )
        is_param = False
        param_index = -1
        if func is not None:
            for i, arg in enumerate(func.arguments):
                if arg.name == item.pointer:
                    is_param = True
                    param_index = i
                    break
        if not is_param and item.pointer in self.regions:
            region = self.regions[item.pointer]
            if offset != 0 or size != region.size:
                # the annotation must span the entire array — otherwise
                # it is ineffective (§3.1) and we say so explicitly
                self.init_issues.append(
                    InitializationIssue(
                        message=(
                            f"core({item.pointer}, {offset}, {size}) does not "
                            f"span the whole region (size {region.size}); "
                            f"annotation is ineffective"
                        ),
                        location=item.location,
                        function=fname,
                        severity=Severity.WARNING,
                        region_a=item.pointer,
                    )
                )
                return
        resolved = ResolvedAssume(
            pointer=item.pointer,
            offset=offset,
            size=size,
            is_parameter=is_param,
            parameter_index=param_index,
            location=item.location,
        )
        self.monitor_assumes.setdefault(fname, []).append(resolved)

    # ------------------------------------------------------------------
    # init layout checking
    # ------------------------------------------------------------------

    def _check_init_layouts(self) -> None:
        for fname in sorted(self.init_functions):
            func = self.module.get_function(fname)
            if func is None or func.is_declaration:
                continue
            declared = [
                r for r in self.regions.values() if r.init_function == fname
            ]
            issues, placements = check_init_layout(func, declared)
            self.init_issues.extend(issues)
            self.placements.update(placements)

    # ------------------------------------------------------------------
    # interprocedural pointer propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> None:
        functions = list(self.module.defined_functions())
        for func in functions:
            self.value_regions[func] = {}
            self.arg_regions[func] = [EMPTY_REGIONS] * len(func.arguments)
            self.ret_regions[func] = EMPTY_REGIONS

        # seed the worklist bottom-up so summaries stabilize quickly
        order = [f for group in self.callgraph.bottom_up_order() for f in group]
        worklist = list(order) or functions
        in_list = set(worklist)
        while worklist:
            func = worklist.pop(0)
            in_list.discard(func)
            changed_callers, changed_callees = self._analyze_function(func)
            for other in changed_callers | changed_callees:
                if other not in in_list:
                    worklist.append(other)
                    in_list.add(other)

    def _analyze_function(self, func: Function) -> Tuple[Set[Function], Set[Function]]:
        env = self.value_regions[func]
        changed_callees: Set[Function] = set()
        changed_callers: Set[Function] = set()

        def get(value: Value) -> RegionSet:
            if isinstance(value, Argument):
                if value.index < len(self.arg_regions[func]):
                    return self.arg_regions[func][value.index]
                return EMPTY_REGIONS
            if isinstance(value, GlobalVariable):
                return EMPTY_REGIONS
            return env.get(value, EMPTY_REGIONS)

        def put(value: Value, regions: RegionSet) -> bool:
            old = env.get(value, EMPTY_REGIONS)
            new = old | regions
            if new != old:
                env[value] = new
                return True
            return False

        stable = False
        while not stable:
            stable = True
            for block in func.blocks:
                for inst in block.instructions:
                    updated = False
                    if isinstance(inst, Load):
                        ptr = inst.pointer
                        if isinstance(ptr, GlobalVariable) and \
                                ptr.name in self.regions:
                            updated = put(inst, frozenset({ptr.name}))
                    elif isinstance(inst, Cast):
                        updated = put(inst, get(inst.source))
                    elif isinstance(inst, (IndexAddr, FieldAddr)):
                        updated = put(inst, get(inst.pointer))
                    elif isinstance(inst, Phi):
                        merged = EMPTY_REGIONS
                        for value in inst.incoming.values():
                            merged |= get(value)
                        updated = put(inst, merged)
                    elif isinstance(inst, Call):
                        updated = self._transfer_call(
                            func, inst, get, put, changed_callees
                        )
                    if updated:
                        stable = False

            # return-value summary
            ret = EMPTY_REGIONS
            for block in func.blocks:
                term = block.terminator
                if term is not None and term.opname() == "ret" and term.operands:
                    ret |= get(term.operands[0])
            if ret != self.ret_regions[func]:
                self.ret_regions[func] = ret
                # callers observe the new summary via the outer worklist
                changed_callers |= self.callgraph.callers(func)

        return changed_callers, changed_callees

    def _transfer_call(self, func: Function, inst: Call, get, put,
                       changed_callees: Set[Function]) -> bool:
        updated = False
        targets = []
        if isinstance(inst.callee, Function) and not inst.callee.is_declaration:
            targets = [inst.callee]
        else:
            for site in self.callgraph.sites_in(func):
                if site.call is inst:
                    targets = list(site.targets)
                    break
        for target in targets:
            params = self.arg_regions.get(target)
            if params is None:
                continue
            for i, arg in enumerate(inst.operands):
                if i >= len(params):
                    break
                flow = get(arg)
                if flow and not flow <= params[i]:
                    params[i] = params[i] | flow
                    changed_callees.add(target)
            ret = self.ret_regions.get(target, EMPTY_REGIONS)
            if ret:
                updated |= put(inst, ret)
        return updated

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def regions_of(self, func: Function, value: Value) -> RegionSet:
        """Region set a value may point into (empty → not shared memory)."""
        if isinstance(value, Argument):
            regs = self.arg_regions.get(func)
            if regs is not None and value.index < len(regs):
                return regs[value.index]
            return EMPTY_REGIONS
        if isinstance(value, GlobalVariable) and value.name in self.regions:
            # the global *cell* itself is not in shm; loads of it are.
            return EMPTY_REGIONS
        return self.value_regions.get(func, {}).get(value, EMPTY_REGIONS)

    def is_shm_pointer(self, func: Function, value: Value) -> bool:
        return bool(self.regions_of(func, value))

    def noncore_regions_of(self, func: Function, value: Value) -> RegionSet:
        return frozenset(
            name for name in self.regions_of(func, value)
            if self.regions[name].noncore
        )

    def region(self, name: str) -> SharedRegion:
        return self.regions[name]
