"""Analysis of shared-memory initializing functions (§3.2.1).

Initializing functions (annotated ``shminit``) are exempt from rules
P2/P3 because System V shared memory is untyped: ``shmat`` returns a
``void*`` that must be cast and offset to produce the typed region
pointers. In exchange, their ``shmvar`` post-conditions declare every
region and its size, and the paper inserts a once-at-boot ``InitCheck``
verifying the declared regions do not overlap.

This module does the static counterpart: an abstract interpretation of
the initializing function mapping every pointer value to a symbolic
``(segment, byte-offset)`` pair, from which region intervals are
derived and checked for overlap and for fitting inside the segment
size requested from ``shmget``. When offsets cannot be resolved
statically the check degrades to the run-time ``InitCheck`` (provided
by :mod:`repro.runtime`), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import (
    ArrayType,
    BinOp,
    Call,
    Cast,
    Constant,
    FieldAddr,
    Function,
    IndexAddr,
    Instruction,
    Load,
    Phi,
    PointerType,
    Store,
    UnaryOp,
    Value,
)
from ..ir.values import GlobalVariable
from ..reporting.diagnostics import InitializationIssue, Severity
from .model import SharedRegion


@dataclass(frozen=True)
class SymbolicPointer:
    """A pointer resolved to byte offset ``offset`` inside ``segment``."""

    segment: int  # id of the shmat call that produced the mapping
    offset: int


class InitInterpreter:
    """Abstract interpreter for one shminit function."""

    def __init__(self, function: Function):
        self.function = function
        self.values: Dict[Value, object] = {}  # Value -> SymbolicPointer|int|None
        self.globals: Dict[str, object] = {}   # global name -> SymbolicPointer
        self.segment_sizes: Dict[int, Optional[int]] = {}
        self._segment_counter = 0
        self._shmget_sizes: Dict[Value, Optional[int]] = {}

    # ------------------------------------------------------------------

    def run(self) -> None:
        """Interpret blocks in layout order, merging at joins.

        Initializing functions are straight-line in practice; if a
        global receives conflicting symbolic pointers on different
        paths it degrades to unknown (None).
        """
        for block in self.function.blocks:
            for inst in block.instructions:
                self._transfer(inst)

    def _transfer(self, inst: Instruction) -> None:
        if isinstance(inst, Call):
            self._call(inst)
        elif isinstance(inst, Cast):
            self.values[inst] = self._value(inst.source)
        elif isinstance(inst, IndexAddr):
            self._indexaddr(inst)
        elif isinstance(inst, FieldAddr):
            base = self._value(inst.pointer)
            if isinstance(base, SymbolicPointer):
                self.values[inst] = SymbolicPointer(
                    base.segment, base.offset + inst.field_offset
                )
        elif isinstance(inst, Load):
            ptr = inst.pointer
            if isinstance(ptr, GlobalVariable):
                self.values[inst] = self.globals.get(ptr.name)
        elif isinstance(inst, Store):
            ptr = inst.pointer
            if isinstance(ptr, GlobalVariable):
                new = self._value(inst.value)
                old = self.globals.get(ptr.name, "<unset>")
                if old == "<unset>" or old == new:
                    self.globals[ptr.name] = new
                else:
                    self.globals[ptr.name] = None  # conflicting paths
        elif isinstance(inst, BinOp):
            left = self._value(inst.lhs)
            right = self._value(inst.rhs)
            if isinstance(left, int) and isinstance(right, int):
                self.values[inst] = _const_binop(inst.op, left, right)
        elif isinstance(inst, UnaryOp):
            val = self._value(inst.operands[0])
            if isinstance(val, int) and inst.op == "-":
                self.values[inst] = -val
        elif isinstance(inst, Phi):
            incoming = {self._value(v) for v in inst.incoming.values()}
            if len(incoming) == 1:
                self.values[inst] = incoming.pop()

    def _call(self, inst: Call) -> None:
        name = inst.callee_name
        if name == "shmat":
            segment = self._segment_counter
            self._segment_counter += 1
            self.values[inst] = SymbolicPointer(segment, 0)
            shmid = inst.operands[0] if inst.operands else None
            self.segment_sizes[segment] = self._shmget_sizes.get(shmid)
        elif name == "shmget":
            size = None
            if len(inst.operands) >= 2:
                sval = self._value(inst.operands[1])
                size = sval if isinstance(sval, int) else None
            self._shmget_sizes[inst] = size

    def _indexaddr(self, inst: IndexAddr) -> None:
        base = self._value(inst.pointer)
        index = self._value(inst.index)
        if not isinstance(base, SymbolicPointer) or not isinstance(index, int):
            return
        ptype = inst.pointer.type
        assert isinstance(ptype, PointerType)
        pointee = ptype.pointee
        stride = pointee.element.sizeof() if isinstance(pointee, ArrayType) \
            else pointee.sizeof()
        self.values[inst] = SymbolicPointer(base.segment,
                                            base.offset + index * stride)

    def _value(self, value: Value):
        if isinstance(value, Constant) and isinstance(value.value, int):
            return value.value
        return self.values.get(value)


def _const_binop(op: str, left: int, right: int) -> Optional[int]:
    try:
        return {
            "+": left + right,
            "-": left - right,
            "*": left * right,
            "/": left // right if right else None,
            "%": left % right if right else None,
            "<<": left << right,
            ">>": left >> right,
            "&": left & right,
            "|": left | right,
            "^": left ^ right,
        }.get(op)
    except Exception:
        return None


def check_init_layout(
    function: Function, regions: List[SharedRegion]
) -> Tuple[List[InitializationIssue], Dict[str, Optional[SymbolicPointer]]]:
    """Statically run the InitCheck of §3.2.1 on one shminit function.

    Returns (issues, region → resolved symbolic pointer or None).
    """
    interp = InitInterpreter(function)
    interp.run()
    issues: List[InitializationIssue] = []
    placements: Dict[str, Optional[SymbolicPointer]] = {}

    for region in regions:
        symbolic = interp.globals.get(region.name)
        placements[region.name] = symbolic if isinstance(
            symbolic, SymbolicPointer) else None

    resolved = [
        (name, ptr) for name, ptr in placements.items()
        if ptr is not None
    ]
    by_region = {r.name: r for r in regions}

    # pairwise overlap within a segment
    for i in range(len(resolved)):
        for j in range(i + 1, len(resolved)):
            (name_a, pa), (name_b, pb) = resolved[i], resolved[j]
            if pa.segment != pb.segment:
                continue
            size_a = by_region[name_a].size
            size_b = by_region[name_b].size
            if pa.offset < pb.offset + size_b and pb.offset < pa.offset + size_a:
                issues.append(
                    InitializationIssue(
                        message=(
                            f"shared variables {name_a} and {name_b} overlap: "
                            f"[{pa.offset},{pa.offset + size_a}) vs "
                            f"[{pb.offset},{pb.offset + size_b})"
                        ),
                        location=function.location,
                        function=function.name,
                        severity=Severity.VIOLATION,
                        region_a=name_a,
                        region_b=name_b,
                    )
                )

    # regions must fit inside the segment allocated by shmget
    for name, ptr in resolved:
        total = interp.segment_sizes.get(ptr.segment)
        if total is None:
            continue
        if ptr.offset + by_region[name].size > total:
            issues.append(
                InitializationIssue(
                    message=(
                        f"shared variable {name} "
                        f"[{ptr.offset},{ptr.offset + by_region[name].size}) "
                        f"exceeds the {total}-byte segment from shmget"
                    ),
                    location=function.location,
                    function=function.name,
                    severity=Severity.VIOLATION,
                    region_a=name,
                )
            )
    return issues, placements
