"""Model of shared memory as seen by the core component.

A *shared region* is the unit of the analysis: one ``shmvar(ptr, size)``
post-condition in an initializing function declares one region, named
after its pointer variable. Regions carry the paper's two mutually
exclusive predicates (§2):

- ``noncore(S)`` — the region can be written by a non-core component
  (declared with ``assume(noncore(ptr))``);
- ``core(S)`` — it can be verified that only core components write it
  (the default for declared regions without a noncore annotation —
  enforcement of that verification is the InitCheck + encapsulation
  story of §3.2.1).

Reads of non-core regions yield unsafe values unless the reading
function's context assumes the region core (a monitoring function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from ..ir.source import SourceLocation
from ..ir.types import CType


@dataclass
class SharedRegion:
    """One shared-memory variable (a whole array/struct unit)."""

    name: str
    size: int
    element_type: Optional[CType] = None
    noncore: bool = False
    init_function: str = ""
    location: Optional[SourceLocation] = None

    @property
    def element_size(self) -> int:
        if self.element_type is None:
            return self.size
        es = self.element_type.sizeof()
        return es if es > 0 else self.size

    @property
    def element_count(self) -> int:
        """Array length implied by size / sizeof(element) (§3.2.1)."""
        es = self.element_size
        return max(1, self.size // es) if es else 1

    @property
    def core(self) -> bool:
        return not self.noncore

    def __str__(self) -> str:
        kind = "noncore" if self.noncore else "core"
        return f"{self.name}[{self.size}B,{kind}]"


#: a set of region names a pointer may refer to
RegionSet = FrozenSet[str]

EMPTY_REGIONS: RegionSet = frozenset()


def regions(*names: str) -> RegionSet:
    return frozenset(names)
