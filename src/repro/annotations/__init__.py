"""The SafeFlow annotation language (assume/assert over shared memory)."""

from .lang import (
    Annotation,
    AnnotationItem,
    AssertSafe,
    AssumeCore,
    AssumeNoncore,
    AssumeShmvar,
    BinarySize,
    IntSize,
    ShmInit,
    SizeExpr,
    SizeofSize,
    parse_annotation,
)

__all__ = [
    "Annotation",
    "AnnotationItem",
    "AssertSafe",
    "AssumeCore",
    "AssumeNoncore",
    "AssumeShmvar",
    "BinarySize",
    "IntSize",
    "ShmInit",
    "SizeExpr",
    "SizeofSize",
    "parse_annotation",
]
