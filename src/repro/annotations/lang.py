"""Parser for the SafeFlow annotation language (paper §3.1, §3.2.1).

The language is deliberately tiny — that is the paper's point: a
succinct, local annotation language embedded in C comments::

    /***SafeFlow Annotation
        assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/

    /***SafeFlow Annotation  assert(safe(output));  /***/

    /***SafeFlow Annotation  shminit  /***/

    /***SafeFlow Annotation
        assume(shmvar(feedback, sizeof(SHMData)));
        assume(noncore(noncoreCtrl));  /***/

Grammar::

    block   := item ( ';'? item )* ';'?
    item    := 'assume' '(' pred ')' | 'assert' '(' pred ')' | 'shminit'
    pred    := 'core' '(' ident ',' expr ',' expr ')'
             | 'noncore' '(' ident ')'
             | 'shmvar'  '(' ident ',' expr ')'
             | 'safe'    '(' ident ')'
             | 'shminit'
    expr    := term  (('+' | '-') term)*
    term    := atom  (('*' | '/') atom)*
    atom    := INT | 'sizeof' '(' type-name ')' | ident | '(' expr ')'

Size expressions are kept symbolic (:class:`SizeExpr`) and evaluated
against the module's type table once parsing is done, so ``sizeof``
sees the real struct layouts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from ..errors import AnnotationError
from ..ir.source import SourceLocation


# ----------------------------------------------------------------------
# size-expression AST
# ----------------------------------------------------------------------

class SizeExpr:
    """Base of symbolic size expressions inside annotations."""

    def evaluate(self, sizeof: Callable[[str], int]) -> int:
        """Evaluate with ``sizeof(type_name) -> bytes`` resolving types."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntSize(SizeExpr):
    value: int

    def evaluate(self, sizeof) -> int:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SizeofSize(SizeExpr):
    type_name: str

    def evaluate(self, sizeof) -> int:
        return sizeof(self.type_name)

    def __str__(self) -> str:
        return f"sizeof({self.type_name})"


@dataclass(frozen=True)
class BinarySize(SizeExpr):
    op: str
    lhs: SizeExpr
    rhs: SizeExpr

    def evaluate(self, sizeof) -> int:
        left = self.lhs.evaluate(sizeof)
        right = self.rhs.evaluate(sizeof)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                raise AnnotationError("division by zero in size expression")
            return left // right
        raise AnnotationError(f"unknown size operator {self.op!r}")

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


# ----------------------------------------------------------------------
# annotation items
# ----------------------------------------------------------------------

@dataclass
class AnnotationItem:
    """Base class; ``location`` is the comment's position in the source."""

    location: Optional[SourceLocation] = field(default=None, kw_only=True)

    @property
    def is_function_level(self) -> bool:
        """True if the item attaches to a whole function (vs a program point)."""
        return True


@dataclass
class AssumeCore(AnnotationItem):
    """``assume(core(ptr, offset, size))`` — monitoring-function fact."""

    pointer: str = ""
    offset: SizeExpr = IntSize(0)
    size: SizeExpr = IntSize(0)

    def __str__(self) -> str:
        return f"assume(core({self.pointer}, {self.offset}, {self.size}))"


@dataclass
class AssumeNoncore(AnnotationItem):
    """``assume(noncore(ptr))`` — region writable by non-core components."""

    pointer: str = ""

    def __str__(self) -> str:
        return f"assume(noncore({self.pointer}))"


@dataclass
class AssumeShmvar(AnnotationItem):
    """``assume(shmvar(ptr, size))`` — initializing-function post-condition."""

    pointer: str = ""
    size: SizeExpr = IntSize(0)

    def __str__(self) -> str:
        return f"assume(shmvar({self.pointer}, {self.size}))"


@dataclass
class ShmInit(AnnotationItem):
    """``shminit`` — marks an initializing function (P3 exempt)."""

    def __str__(self) -> str:
        return "shminit"


@dataclass
class AssertSafe(AnnotationItem):
    """``assert(safe(x))`` — critical-data assertion at a program point."""

    variable: str = ""

    @property
    def is_function_level(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"assert(safe({self.variable}))"


ASSUME_ITEMS = (AssumeCore, AssumeNoncore, AssumeShmvar)


# ----------------------------------------------------------------------
# tokenizer / parser
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(),;*+/\-])
    """,
    re.VERBOSE,
)


def _tokenize(text: str, location: Optional[SourceLocation]) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise AnnotationError(
                f"unexpected character {text[pos]!r} in annotation", location
            )
        pos = m.end()
        if m.lastgroup != "ws":
            tokens.append(m.group())
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[str], location: Optional[SourceLocation]):
        self.tokens = list(tokens)
        self.pos = 0
        self.location = location

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise AnnotationError("unexpected end of annotation", self.location)
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise AnnotationError(
                f"expected {token!r} but found {got!r} in annotation", self.location
            )

    def ident(self) -> str:
        tok = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tok):
            raise AnnotationError(
                f"expected identifier but found {tok!r}", self.location
            )
        return tok

    # -- grammar -------------------------------------------------------

    def parse_block(self) -> List[AnnotationItem]:
        items: List[AnnotationItem] = []
        while self.peek() is not None:
            if self.peek() == ";":
                self.next()
                continue
            items.append(self.parse_item())
        if not items:
            raise AnnotationError("empty SafeFlow annotation", self.location)
        return items

    def parse_item(self) -> AnnotationItem:
        head = self.next()
        if head == "shminit":
            return ShmInit(location=self.location)
        if head not in ("assume", "assert"):
            raise AnnotationError(
                f"annotation item must start with 'assume', 'assert' or "
                f"'shminit', not {head!r}",
                self.location,
            )
        self.expect("(")
        pred = self.parse_pred(head)
        self.expect(")")
        return pred

    def parse_pred(self, head: str) -> AnnotationItem:
        name = self.next()
        if head == "assert":
            if name != "safe":
                raise AnnotationError(
                    f"assert supports only the 'safe' predicate, not {name!r}",
                    self.location,
                )
            self.expect("(")
            var = self.ident()
            self.expect(")")
            return AssertSafe(variable=var, location=self.location)
        # assume(...)
        if name == "core":
            self.expect("(")
            ptr = self.ident()
            self.expect(",")
            offset = self.parse_expr()
            self.expect(",")
            size = self.parse_expr()
            self.expect(")")
            return AssumeCore(pointer=ptr, offset=offset, size=size,
                              location=self.location)
        if name == "noncore":
            self.expect("(")
            ptr = self.ident()
            self.expect(")")
            return AssumeNoncore(pointer=ptr, location=self.location)
        if name == "shmvar":
            self.expect("(")
            ptr = self.ident()
            self.expect(",")
            size = self.parse_expr()
            self.expect(")")
            return AssumeShmvar(pointer=ptr, size=size, location=self.location)
        if name == "shminit":
            return ShmInit(location=self.location)
        raise AnnotationError(
            f"unknown assume predicate {name!r}", self.location
        )

    def parse_expr(self) -> SizeExpr:
        left = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.next()
            right = self.parse_term()
            left = BinarySize(op, left, right)
        return left

    def parse_term(self) -> SizeExpr:
        left = self.parse_atom()
        while self.peek() in ("*", "/"):
            op = self.next()
            right = self.parse_atom()
            left = BinarySize(op, left, right)
        return left

    def parse_atom(self) -> SizeExpr:
        tok = self.peek()
        if tok == "(":
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok == "sizeof":
            self.next()
            self.expect("(")
            name_parts = []
            if self.peek() in ("struct", "union"):
                name_parts.append(self.next())
            name_parts.append(self.ident())
            while self.peek() == "*":
                self.next()
                name_parts.append("*")
            self.expect(")")
            return SizeofSize(" ".join(name_parts))
        tok = self.next()
        if tok.isdigit():
            return IntSize(int(tok))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", tok):
            # bare identifier: treated as sizeof-style symbolic constant
            return SizeofSize(tok)
        raise AnnotationError(
            f"unexpected token {tok!r} in size expression", self.location
        )


def parse_annotation(
    text: str, location: Optional[SourceLocation] = None
) -> List[AnnotationItem]:
    """Parse the body of one SafeFlow annotation comment into items."""
    tokens = _tokenize(text, location)
    return _Parser(tokens, location).parse_block()


Annotation = Union[
    AssumeCore, AssumeNoncore, AssumeShmvar, ShmInit, AssertSafe
]
