"""Phase 2 — restricted-language rules P1–P3 and A1/A2."""

from .affine import AffineExpr, affine_of, induction_info, loop_bounds_for
from .array_rules import check_arrays
from .checker import check_restrictions
from .pointer_rules import check_p1, check_p2, check_p3, shm_accessing_functions
from .solver import Constraint, can_violate_bounds, is_feasible

__all__ = [
    "AffineExpr",
    "Constraint",
    "affine_of",
    "can_violate_bounds",
    "check_arrays",
    "check_p1",
    "check_p2",
    "check_p3",
    "check_restrictions",
    "induction_info",
    "is_feasible",
    "loop_bounds_for",
    "shm_accessing_functions",
]
