"""Rational linear-constraint feasibility ("omega-lite").

The paper hands its A1/A2 affine constraint systems to the Omega
integer-programming solver. The systems SafeFlow generates are tiny —
a handful of loop-bound and index inequalities over a few induction
variables — so full Presburger power is unnecessary. We implement
Fourier–Motzkin elimination over rationals:

- if the rational relaxation is infeasible, the integer system is
  infeasible (bounds proven safe);
- if it is feasible we conservatively report a potential violation.

The relaxation direction is the sound one for a checker: it can only
over-report, never miss an out-of-bounds access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Tuple

from ..errors import SolverError

Var = Hashable


@dataclass(frozen=True)
class Constraint:
    """A linear inequality ``sum(coeffs[v] * v) + const >= 0``."""

    coeffs: Tuple[Tuple[Var, Fraction], ...]
    const: Fraction

    @staticmethod
    def ge_zero(coeffs: Dict[Var, Fraction], const) -> "Constraint":
        cleaned = tuple(
            sorted(
                ((v, Fraction(c)) for v, c in coeffs.items() if c != 0),
                key=lambda item: repr(item[0]),
            )
        )
        return Constraint(cleaned, Fraction(const))

    def coeff_map(self) -> Dict[Var, Fraction]:
        return dict(self.coeffs)

    def variables(self) -> List[Var]:
        return [v for v, _ in self.coeffs]

    def __str__(self) -> str:
        terms = " + ".join(f"{c}*{v}" for v, c in self.coeffs) or "0"
        return f"{terms} + {self.const} >= 0"


def is_feasible(constraints: List[Constraint], max_vars: int = 16,
                max_constraints: int = 4096) -> bool:
    """Fourier–Motzkin feasibility of a conjunction of inequalities."""
    system = [c for c in constraints]
    variables: List[Var] = []
    for c in system:
        for v in c.variables():
            if v not in variables:
                variables.append(v)
    if len(variables) > max_vars:
        raise SolverError(
            f"constraint system has {len(variables)} variables "
            f"(limit {max_vars})"
        )

    for var in variables:
        lower: List[Constraint] = []   # coeff > 0 → gives lower bound terms
        upper: List[Constraint] = []   # coeff < 0 → gives upper bound terms
        rest: List[Constraint] = []
        for c in system:
            coeff = c.coeff_map().get(var, Fraction(0))
            if coeff > 0:
                lower.append(c)
            elif coeff < 0:
                upper.append(c)
            else:
                rest.append(c)
        new_system = rest
        for lo in lower:
            for hi in upper:
                new_system.append(_eliminate(var, lo, hi))
                if len(new_system) > max_constraints:
                    raise SolverError("Fourier-Motzkin explosion")
        system = new_system

    # variable-free system: every constraint is "const >= 0"
    return all(c.const >= 0 for c in system)


def _eliminate(var: Var, lo: Constraint, hi: Constraint) -> Constraint:
    """Combine a lower-bounding and an upper-bounding constraint on var."""
    lo_map, hi_map = lo.coeff_map(), hi.coeff_map()
    a = lo_map[var]          # a > 0
    b = -hi_map[var]         # b > 0
    coeffs: Dict[Var, Fraction] = {}
    for v, c in lo_map.items():
        if v != var:
            coeffs[v] = coeffs.get(v, Fraction(0)) + b * c
    for v, c in hi_map.items():
        if v != var:
            coeffs[v] = coeffs.get(v, Fraction(0)) + a * c
    const = b * lo.const + a * hi.const
    return Constraint.ge_zero(coeffs, const)


def can_violate_bounds(
    index_coeffs: Dict[Var, Fraction],
    index_const,
    bound: int,
    context: List[Constraint],
) -> bool:
    """True if ``index`` may fall outside ``[0, bound)`` under context.

    Checks feasibility of (index <= -1) and (index >= bound) separately.
    """
    below = Constraint.ge_zero(
        {v: -c for v, c in index_coeffs.items()}, -Fraction(index_const) - 1
    )  # -index - 1 >= 0  ⇔  index <= -1
    if is_feasible(context + [below]):
        return True
    above = Constraint.ge_zero(
        dict(index_coeffs), Fraction(index_const) - bound
    )  # index - bound >= 0  ⇔  index >= bound
    return is_feasible(context + [above])
