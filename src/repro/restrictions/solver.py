"""Rational linear-constraint feasibility ("omega-lite").

The paper hands its A1/A2 affine constraint systems to the Omega
integer-programming solver. The systems SafeFlow generates are tiny —
a handful of loop-bound and index inequalities over a few induction
variables — so full Presburger power is unnecessary. We implement
Fourier–Motzkin elimination over rationals:

- if the rational relaxation is infeasible, the integer system is
  infeasible (bounds proven safe);
- if it is feasible we conservatively report a potential violation.

The relaxation direction is the sound one for a checker: it can only
over-report, never miss an out-of-bounds access.

Identical constraint systems recur constantly — every access to the
same shared array inside the same loop shape produces the same A1/A2
system, and batch/server workloads re-check whole families of similar
loops. :func:`can_violate_bounds` therefore memoizes verdicts under a
*canonicalized* form of the system: variables (arbitrary hashable IR
values) are renamed to indices by first appearance in a deterministic
traversal, which makes the key independent of object identity.
Feasibility is invariant under variable renaming, so two systems with
equal canonical forms necessarily share a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import SolverError
from ..resilience.guards import check_deadline

Var = Hashable


@dataclass(frozen=True)
class Constraint:
    """A linear inequality ``sum(coeffs[v] * v) + const >= 0``."""

    coeffs: Tuple[Tuple[Var, Fraction], ...]
    const: Fraction

    @staticmethod
    def ge_zero(coeffs: Dict[Var, Fraction], const) -> "Constraint":
        cleaned = tuple(
            sorted(
                ((v, Fraction(c)) for v, c in coeffs.items() if c != 0),
                key=lambda item: repr(item[0]),
            )
        )
        return Constraint(cleaned, Fraction(const))

    def coeff_map(self) -> Dict[Var, Fraction]:
        return dict(self.coeffs)

    def variables(self) -> List[Var]:
        return [v for v, _ in self.coeffs]

    def __str__(self) -> str:
        terms = " + ".join(f"{c}*{v}" for v, c in self.coeffs) or "0"
        return f"{terms} + {self.const} >= 0"


def is_feasible(constraints: List[Constraint], max_vars: int = 16,
                max_constraints: int = 4096) -> bool:
    """Fourier–Motzkin feasibility of a conjunction of inequalities."""
    system = [c for c in constraints]
    variables: List[Var] = []
    for c in system:
        for v in c.variables():
            if v not in variables:
                variables.append(v)
    if len(variables) > max_vars:
        raise SolverError(
            f"constraint system has {len(variables)} variables "
            f"(limit {max_vars})"
        )

    for var in variables:
        check_deadline()  # elimination can blow up; honor the budget
        lower: List[Constraint] = []   # coeff > 0 → gives lower bound terms
        upper: List[Constraint] = []   # coeff < 0 → gives upper bound terms
        rest: List[Constraint] = []
        for c in system:
            coeff = c.coeff_map().get(var, Fraction(0))
            if coeff > 0:
                lower.append(c)
            elif coeff < 0:
                upper.append(c)
            else:
                rest.append(c)
        new_system = rest
        for lo in lower:
            for hi in upper:
                new_system.append(_eliminate(var, lo, hi))
                if len(new_system) > max_constraints:
                    raise SolverError("Fourier-Motzkin explosion")
        system = new_system

    # variable-free system: every constraint is "const >= 0"
    return all(c.const >= 0 for c in system)


def _eliminate(var: Var, lo: Constraint, hi: Constraint) -> Constraint:
    """Combine a lower-bounding and an upper-bounding constraint on var."""
    lo_map, hi_map = lo.coeff_map(), hi.coeff_map()
    a = lo_map[var]          # a > 0
    b = -hi_map[var]         # b > 0
    coeffs: Dict[Var, Fraction] = {}
    for v, c in lo_map.items():
        if v != var:
            coeffs[v] = coeffs.get(v, Fraction(0)) + b * c
    for v, c in hi_map.items():
        if v != var:
            coeffs[v] = coeffs.get(v, Fraction(0)) + a * c
    const = b * lo.const + a * hi.const
    return Constraint.ge_zero(coeffs, const)


def can_violate_bounds(
    index_coeffs: Dict[Var, Fraction],
    index_const,
    bound: int,
    context: List[Constraint],
) -> bool:
    """True if ``index`` may fall outside ``[0, bound)`` under context.

    Checks feasibility of (index <= -1) and (index >= bound) separately.
    Verdicts are memoized per canonicalized system (see module doc);
    :class:`SolverError` outcomes are memoized too, so a pathological
    system is diagnosed once.
    """
    key = _canonical_key(index_coeffs, index_const, bound, context)
    cached = _VERDICT_CACHE.get(key)
    if cached is not None:
        _SOLVER_STATS["hits"] += 1
        verdict, error = cached
        if error is not None:
            raise SolverError(error)
        return verdict
    _SOLVER_STATS["misses"] += 1
    try:
        verdict = _can_violate_bounds_fresh(
            index_coeffs, index_const, bound, context
        )
    except SolverError as exc:
        _remember(key, (False, str(exc)))
        raise
    _remember(key, (verdict, None))
    return verdict


def _can_violate_bounds_fresh(
    index_coeffs: Dict[Var, Fraction],
    index_const,
    bound: int,
    context: List[Constraint],
) -> bool:
    below = Constraint.ge_zero(
        {v: -c for v, c in index_coeffs.items()}, -Fraction(index_const) - 1
    )  # -index - 1 >= 0  ⇔  index <= -1
    if is_feasible(context + [below]):
        return True
    above = Constraint.ge_zero(
        dict(index_coeffs), Fraction(index_const) - bound
    )  # index - bound >= 0  ⇔  index >= bound
    return is_feasible(context + [above])


# ----------------------------------------------------------------------
# canonicalized verdict memoization
# ----------------------------------------------------------------------

_MAX_CACHED_VERDICTS = 8192
_VERDICT_CACHE: Dict[tuple, Tuple[bool, Optional[str]]] = {}
_SOLVER_STATS: Dict[str, int] = {"hits": 0, "misses": 0}


def _canonical_key(index_coeffs: Dict[Var, Fraction], index_const,
                   bound: int, context: List[Constraint]) -> tuple:
    """Rename variables to first-appearance indices.

    Traversal order: the index expression's coefficients (in their
    deterministic ``repr`` sort, matching :meth:`Constraint.ge_zero`),
    then each context constraint's stored coefficient order. The key
    holds only ints/Fractions/strings — no references to IR objects —
    so caching never pins a Program in memory.
    """
    rename: Dict[int, int] = {}

    def vid(v: Var) -> int:
        i = rename.get(id(v))
        if i is None:
            i = len(rename)
            rename[id(v)] = i
        return i

    index_part = tuple(
        (vid(v), c) for v, c in sorted(
            index_coeffs.items(), key=lambda item: repr(item[0])
        ) if c != 0
    )
    ctx_part = tuple(
        (tuple((vid(v), c) for v, c in con.coeffs), con.const)
        for con in context
    )
    return (index_part, Fraction(index_const), bound, ctx_part)


def _remember(key: tuple, value: Tuple[bool, Optional[str]]) -> None:
    if len(_VERDICT_CACHE) >= _MAX_CACHED_VERDICTS:
        _VERDICT_CACHE.clear()  # simple epoch eviction; misses are cheap
    _VERDICT_CACHE[key] = value


def solver_cache_stats() -> Dict[str, int]:
    """Observability for the verdict cache (``--profile``)."""
    return {
        "solver_cache_size": len(_VERDICT_CACHE),
        "solver_cache_hits": _SOLVER_STATS["hits"],
        "solver_cache_misses": _SOLVER_STATS["misses"],
    }
