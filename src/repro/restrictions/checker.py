"""Phase 2 driver: run all language-restriction checks."""

from __future__ import annotations

from typing import List

from ..core.config import AnalysisConfig
from ..frontend.driver import Program
from ..reporting.diagnostics import RestrictionViolation, sort_key
from ..shm.propagation import ShmAnalysis
from .array_rules import check_arrays
from .pointer_rules import check_p1, check_p2, check_p3


def check_restrictions(
    program: Program, shm: ShmAnalysis, config: AnalysisConfig
) -> List[RestrictionViolation]:
    """Run P1–P3 and A1/A2 over the program; returns sorted violations."""
    violations: List[RestrictionViolation] = []
    violations.extend(check_p1(shm))
    violations.extend(check_p2(shm))
    violations.extend(check_p3(shm))
    violations.extend(check_arrays(shm))
    return sorted(violations, key=sort_key)
