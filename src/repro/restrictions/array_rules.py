"""Array rules A1/A2 for arrays in shared memory (§3.2).

Every indexed access into a shared region must be provably in bounds:

- **A1** — constant indices must satisfy ``0 <= i < N``;
- **A2** — loop-varying indices must be affine in the loop induction
  variables, the loop bounds must themselves be affine, and the
  resulting constraint system must make out-of-bounds infeasible.
  Indices depending on symbolic values the analysis cannot bound are
  conservatively rejected (A2(c)).

Constraint systems go to the Fourier–Motzkin feasibility checker in
:mod:`repro.restrictions.solver` (the Omega substitute).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set

from ..errors import SolverError
from ..ir import (
    ArrayType,
    Constant,
    Function,
    IndexAddr,
    Phi,
    PointerType,
    Value,
)
from ..reporting.diagnostics import RestrictionViolation, Severity
from ..shm.propagation import ShmAnalysis
from .affine import (
    AffineExpr,
    InductionInfo,
    LoopBound,
    affine_of,
    induction_info,
    loop_bounds_for,
)
from .solver import Constraint, can_violate_bounds


def check_arrays(shm: ShmAnalysis) -> List[RestrictionViolation]:
    violations: List[RestrictionViolation] = []
    for func in shm.module.defined_functions():
        if func.name in shm.init_functions:
            continue  # init layout is checked separately (InitCheck)
        for inst in func.instructions():
            if not isinstance(inst, IndexAddr):
                continue
            regions = shm.regions_of(func, inst.pointer)
            if not regions:
                continue
            bound = _bound_for(inst, regions, shm)
            if bound is None:
                continue  # scalar region; offset-0 decay only
            message = _check_access(func, inst, bound)
            if message is not None:
                rule = "A1" if isinstance(inst.index, Constant) else "A2"
                violations.append(
                    RestrictionViolation(
                        message=f"{rule}: {message} "
                        f"(shared array {'/'.join(sorted(regions))}, "
                        f"bound {bound})",
                        location=inst.location,
                        function=func.name,
                        severity=Severity.VIOLATION,
                        rule=rule,
                    )
                )
    return violations


def _bound_for(inst: IndexAddr, regions, shm: ShmAnalysis) -> Optional[int]:
    """Number of valid elements for this access, or None for unchecked."""
    ptype = inst.pointer.type
    assert isinstance(ptype, PointerType)
    if isinstance(ptype.pointee, ArrayType) and ptype.pointee.count is not None:
        return ptype.pointee.count
    # top-level region access: bound = size / sizeof(element)
    counts = [shm.region(name).element_count for name in regions]
    bound = min(counts) if counts else None
    if bound == 1:
        # scalar shared variable: only the implicit &r[0] decay is legal
        if isinstance(inst.index, Constant) and inst.index.value == 0:
            return None
        return 1
    return bound


def _check_access(func: Function, inst: IndexAddr,
                  bound: int) -> Optional[str]:
    index = inst.index
    if isinstance(index, Constant):
        if isinstance(index.value, int) and 0 <= index.value < bound:
            return None
        return f"constant index {index.value} out of bounds"

    expr = affine_of(index)
    if expr is None:
        return "index expression is not affine"

    constraints: List[Constraint] = []
    bounded: Set[Value] = set()
    pending = list(expr.leaves())
    seen: Set[Value] = set()
    while pending:
        leaf = pending.pop()
        if leaf in seen:
            continue
        seen.add(leaf)
        if not isinstance(leaf, Phi):
            return (
                f"index depends on symbolic value {leaf.short()} that the "
                f"analysis cannot bound"
            )
        info = induction_info(leaf)
        if info is None:
            return (
                f"{leaf.short()} is not a recognizable affine induction "
                f"variable"
            )
        guards = loop_bounds_for(func, leaf)
        added = _induction_constraints(info, guards, constraints, pending)
        if added is None:
            return (
                f"loop bounds for {leaf.short()} are not provably affine"
            )
        bounded.add(leaf)

    try:
        if can_violate_bounds(expr.coeffs, expr.const, bound, constraints):
            return "index may leave the array bounds"
    except SolverError as exc:
        return f"bounds system unsolvable ({exc})"
    return None


def _induction_constraints(
    info: InductionInfo,
    guards: List[LoopBound],
    constraints: List[Constraint],
    pending: List[Value],
) -> Optional[bool]:
    """Add init/guard constraints for one induction variable.

    Returns None when the loop shape cannot be bounded (A2 violation);
    new leaves appearing in bounds are queued on ``pending``.
    """
    phi = info.phi
    if info.step > 0:
        # phi >= init
        coeffs = {phi: Fraction(1)}
        for v, c in info.init.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) - c
            pending.append(v)
        constraints.append(Constraint.ge_zero(coeffs, -info.init.const))
    elif info.step < 0:
        # phi <= init
        coeffs = {phi: Fraction(-1)}
        for v, c in info.init.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
            pending.append(v)
        constraints.append(Constraint.ge_zero(coeffs, info.init.const))
    else:
        return None

    usable = False
    for guard in guards:
        expr = guard.bound
        for v in expr.leaves():
            pending.append(v)
        if guard.op in ("<", "<=") and info.step > 0:
            # phi <= bound - adj
            adj = Fraction(1) if guard.op == "<" else Fraction(0)
            coeffs = {phi: Fraction(-1)}
            for v, c in expr.coeffs.items():
                coeffs[v] = coeffs.get(v, Fraction(0)) + c
            constraints.append(Constraint.ge_zero(coeffs, expr.const - adj))
            usable = True
        elif guard.op in (">", ">=") and info.step < 0:
            adj = Fraction(1) if guard.op == ">" else Fraction(0)
            coeffs = {phi: Fraction(1)}
            for v, c in expr.coeffs.items():
                coeffs[v] = coeffs.get(v, Fraction(0)) - c
            constraints.append(Constraint.ge_zero(coeffs, -expr.const - adj))
            usable = True
    if not usable:
        return None
    return True
