"""Pointer rules P1–P3 on shared-memory pointers (§3.2).

- **P1** — shared memory cannot be deallocated until the end of
  ``main``: no ``shmdt``/``shmctl`` on a shared pointer except at a
  point in ``main`` after which no shared-memory access can execute.
- **P2** — no aliasing of shared-memory pointers through memory: a
  shared pointer may live only in SSA registers and in the designated
  global pointer variables assigned by the initializing function;
  taking the address of such a variable, or storing a shared pointer
  into any other memory, is a violation.
- **P3** — no casts of shared-memory pointers to incompatible pointer
  types and no pointer-to-integer casts (initializing functions are
  exempt — that is exactly why ``shminit`` exists, §3.2.1).
"""

from __future__ import annotations

from typing import List, Set

from ..frontend.parser import SHM_DEALLOCATORS
from ..ir import (
    Call,
    Cast,
    Function,
    Instruction,
    Load,
    Store,
    pointer_compatible,
)
from ..ir.values import GlobalVariable
from ..reporting.diagnostics import RestrictionViolation, Severity
from ..shm.propagation import ShmAnalysis


def _violation(rule: str, message: str, inst: Instruction,
               func: Function) -> RestrictionViolation:
    return RestrictionViolation(
        message=f"{rule}: {message}",
        location=inst.location,
        function=func.name,
        severity=Severity.VIOLATION,
        rule=rule,
    )


def shm_accessing_functions(shm: ShmAnalysis) -> Set[Function]:
    """Functions that (transitively) read or write shared memory."""
    direct: Set[Function] = set()
    for func in shm.module.defined_functions():
        for inst in func.instructions():
            if isinstance(inst, Load) and shm.is_shm_pointer(func, inst.pointer):
                direct.add(func)
                break
            if isinstance(inst, Store) and shm.is_shm_pointer(func, inst.pointer):
                direct.add(func)
                break
    # propagate accessor-ness up the call graph
    changed = True
    accessors = set(direct)
    while changed:
        changed = False
        for func in shm.module.defined_functions():
            if func in accessors:
                continue
            if shm.callgraph.callees(func) & accessors:
                accessors.add(func)
                changed = True
    return accessors


def check_p1(shm: ShmAnalysis) -> List[RestrictionViolation]:
    violations: List[RestrictionViolation] = []
    accessors = shm_accessing_functions(shm)
    for func in shm.module.defined_functions():
        for block in func.blocks:
            for idx, inst in enumerate(block.instructions):
                if not isinstance(inst, Call):
                    continue
                name = inst.callee_name
                if name not in SHM_DEALLOCATORS:
                    continue
                if name == "shmdt" and inst.operands and not shm.is_shm_pointer(
                    func, inst.operands[0]
                ):
                    # detaching a non-shared pointer is someone else's bug
                    continue
                if func.name != "main":
                    violations.append(
                        _violation(
                            "P1",
                            f"shared memory deallocated by {name} outside "
                            f"main",
                            inst,
                            func,
                        )
                    )
                    continue
                if _shm_use_after(func, block, idx, shm, accessors):
                    violations.append(
                        _violation(
                            "P1",
                            f"shared memory deallocated by {name} before "
                            f"the end of main (shared memory is still "
                            f"accessed afterwards)",
                            inst,
                            func,
                        )
                    )
    return violations


def _shm_use_after(func: Function, block, idx: int, shm: ShmAnalysis,
                   accessors: Set[Function]) -> bool:
    """Is any shared-memory access reachable after instruction idx?"""

    def uses_shm(inst: Instruction) -> bool:
        if isinstance(inst, (Load, Store)) and shm.is_shm_pointer(
            func, inst.pointer
        ):
            return True
        if isinstance(inst, Call):
            name = inst.callee_name
            if name in SHM_DEALLOCATORS:
                return False
            if isinstance(inst.callee, Function) and inst.callee in accessors:
                return True
        return False

    for later in block.instructions[idx + 1:]:
        if uses_shm(later):
            return True
    seen = set()
    work = list(block.successors())
    while work:
        succ = work.pop()
        if succ in seen:
            continue
        seen.add(succ)
        for inst in succ.instructions:
            if uses_shm(inst):
                return True
        work.extend(succ.successors())
    return False


def check_p2(shm: ShmAnalysis) -> List[RestrictionViolation]:
    violations: List[RestrictionViolation] = []
    for func in shm.module.defined_functions():
        exempt = func.name in shm.init_functions
        for inst in func.instructions():
            # (a) storing a shared pointer into memory
            if isinstance(inst, Store) and not exempt:
                if shm.regions_of(func, inst.value):
                    violations.append(
                        _violation(
                            "P2",
                            "shared-memory pointer stored into memory "
                            "(aliasing through memory locations is "
                            "disallowed)",
                            inst,
                            func,
                        )
                    )
            # (b) taking the address of a designated shared pointer
            # variable: the global appears as a plain value operand
            for opi, op in enumerate(inst.operands):
                if not isinstance(op, GlobalVariable) or op.name not in shm.regions:
                    continue
                if isinstance(inst, Load) and inst.pointer is op:
                    continue
                if isinstance(inst, Store) and opi == 1 and inst.pointer is op:
                    continue
                violations.append(
                    _violation(
                        "P2",
                        f"address of shared-memory pointer variable "
                        f"{op.name} is taken",
                        inst,
                        func,
                    )
                )
    return violations


def check_p3(shm: ShmAnalysis) -> List[RestrictionViolation]:
    violations: List[RestrictionViolation] = []
    for func in shm.module.defined_functions():
        if func.name in shm.init_functions:
            continue  # shminit exemption (§3.2.1)
        for inst in func.instructions():
            if not isinstance(inst, Cast):
                continue
            if not shm.regions_of(func, inst.source):
                continue
            if inst.kind == "ptrtoint":
                violations.append(
                    _violation(
                        "P3",
                        "shared-memory pointer cast to an integer",
                        inst,
                        func,
                    )
                )
            elif inst.kind == "bitcast" and not pointer_compatible(
                inst.source.type, inst.type
            ):
                violations.append(
                    _violation(
                        "P3",
                        f"shared-memory pointer cast between incompatible "
                        f"types ({inst.source.type!r} to {inst.type!r})",
                        inst,
                        func,
                    )
                )
    return violations
