"""Affine views of SSA values, for the A1/A2 array rules.

An index expression is *affine* when it can be written as
``c0 + c1*x1 + ... + cn*xn`` where each ``xi`` is a leaf SSA value
(typically a loop-induction phi or a function argument). Rule A2
requires index expressions in shared-memory array references to be
provably affine in loop indices / array sizes; anything else is
conservatively a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..ir import (
    Argument,
    BinOp,
    Cast,
    Cmp,
    CondBranch,
    Constant,
    Function,
    Instruction,
    Phi,
    UnaryOp,
    Value,
)


@dataclass
class AffineExpr:
    """``const + Σ coeffs[v] * v`` with rational coefficients."""

    coeffs: Dict[Value, Fraction] = field(default_factory=dict)
    const: Fraction = Fraction(0)

    @staticmethod
    def constant(value) -> "AffineExpr":
        return AffineExpr({}, Fraction(value))

    @staticmethod
    def variable(value: Value) -> "AffineExpr":
        return AffineExpr({value: Fraction(1)}, Fraction(0))

    def add(self, other: "AffineExpr") -> "AffineExpr":
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return AffineExpr(
            {v: c for v, c in coeffs.items() if c != 0},
            self.const + other.const,
        )

    def negate(self) -> "AffineExpr":
        return AffineExpr(
            {v: -c for v, c in self.coeffs.items()}, -self.const
        )

    def scale(self, factor: Fraction) -> "AffineExpr":
        if factor == 0:
            return AffineExpr.constant(0)
        return AffineExpr(
            {v: c * factor for v, c in self.coeffs.items()},
            self.const * factor,
        )

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def leaves(self) -> List[Value]:
        return list(self.coeffs.keys())

    def __str__(self) -> str:
        parts = [f"{c}*{v.short()}" for v, c in self.coeffs.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


def affine_of(value: Value, max_depth: int = 32) -> Optional[AffineExpr]:
    """Affine view of an SSA value, with phis/arguments as leaves."""
    if max_depth <= 0:
        return None
    if isinstance(value, Constant):
        if isinstance(value.value, (int, float)):
            try:
                return AffineExpr.constant(Fraction(value.value))
            except (ValueError, OverflowError):
                return None
        return None
    if isinstance(value, (Phi, Argument)):
        return AffineExpr.variable(value)
    if isinstance(value, Cast) and value.kind == "numeric":
        return affine_of(value.source, max_depth - 1)
    if isinstance(value, UnaryOp):
        if value.op == "-":
            inner = affine_of(value.operands[0], max_depth - 1)
            return inner.negate() if inner is not None else None
        if value.op == "+":
            return affine_of(value.operands[0], max_depth - 1)
        return None
    if isinstance(value, BinOp):
        left = affine_of(value.lhs, max_depth - 1)
        right = affine_of(value.rhs, max_depth - 1)
        if left is None or right is None:
            return None
        if value.op == "+":
            return left.add(right)
        if value.op == "-":
            return left.add(right.negate())
        if value.op == "*":
            if left.is_constant:
                return right.scale(left.const)
            if right.is_constant:
                return left.scale(right.const)
            return None
        if value.op == "/" and right.is_constant and right.const != 0:
            # conservative: exact rational division only
            return left.scale(Fraction(1) / right.const)
        return None
    # loads, calls, arbitrary instructions: opaque leaf
    if isinstance(value, Instruction):
        return AffineExpr.variable(value)
    return None


@dataclass
class InductionInfo:
    """A loop-induction phi: ``phi = init`` then ``phi += step``."""

    phi: Phi
    init: AffineExpr
    step: Fraction


def induction_info(phi: Phi) -> Optional[InductionInfo]:
    """Recognize the canonical 2-incoming induction pattern."""
    if len(phi.incoming) != 2:
        return None
    entries = list(phi.incoming.items())
    for (init_blk, init_val), (latch_blk, latch_val) in (
        (entries[0], entries[1]),
        (entries[1], entries[0]),
    ):
        step = _step_of(phi, latch_val)
        if step is None:
            continue
        init = affine_of(init_val)
        if init is None or phi in init.coeffs:
            continue
        return InductionInfo(phi, init, step)
    return None


def _step_of(phi: Phi, latch_val: Value) -> Optional[Fraction]:
    """If latch_val == phi + c, return c."""
    expr = affine_of(latch_val, max_depth=8)
    if expr is None:
        return None
    coeffs = dict(expr.coeffs)
    if coeffs.pop(phi, None) != Fraction(1):
        return None
    if coeffs:
        return None
    return expr.const


@dataclass
class LoopBound:
    """``phi`` compared against an affine bound in the loop guard."""

    phi: Phi
    op: str  # the comparison as seen when the loop body executes
    bound: AffineExpr


def loop_bounds_for(function: Function, phi: Phi) -> List[LoopBound]:
    """Bounds implied by conditional branches on comparisons with phi.

    For every ``CondBranch(cmp(phi, B))`` in the function, if the loop
    body (the block containing uses) is on the true edge we learn
    ``phi op B``; this harvests the guard of canonical ``for``/``while``
    loops. We conservatively take only comparisons in the phi's own
    block (the loop header).
    """
    bounds: List[LoopBound] = []
    header = phi.parent
    if header is None:
        return bounds
    term = header.terminator
    if not isinstance(term, CondBranch):
        return bounds
    cond = term.condition
    if not isinstance(cond, Cmp):
        return bounds
    lhs_aff = affine_of(cond.operands[0], max_depth=8)
    rhs_aff = affine_of(cond.operands[1], max_depth=8)
    if lhs_aff is None or rhs_aff is None:
        return bounds
    # normalize so phi appears alone on the left
    if lhs_aff.coeffs.get(phi) == Fraction(1) and phi not in rhs_aff.coeffs:
        residual = AffineExpr(
            {v: c for v, c in lhs_aff.coeffs.items() if v is not phi},
            lhs_aff.const,
        )
        bound = rhs_aff.add(residual.negate())
        bounds.append(LoopBound(phi, cond.op, bound))
    elif rhs_aff.coeffs.get(phi) == Fraction(1) and phi not in lhs_aff.coeffs:
        residual = AffineExpr(
            {v: c for v, c in rhs_aff.coeffs.items() if v is not phi},
            rhs_aff.const,
        )
        bound = lhs_aff.add(residual.negate())
        bounds.append(LoopBound(phi, _flip(cond.op), bound))
    return bounds


def _flip(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
            "==": "==", "!=": "!="}[op]
