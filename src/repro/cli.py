"""Command-line interface: ``safeflow``.

Subcommands::

    safeflow analyze FILE...     # run the analysis on C sources
    safeflow watch PATH...       # incremental re-verdicts on file change
    safeflow batch FILE...       # analyze independent programs in parallel
    safeflow serve               # long-lived analysis service (JSON-RPC)
    safeflow chaos               # fault-injection harness (resilience)
    safeflow corpus [KEY]        # analyze a bundled Table-1 system
    safeflow table1              # reproduce Table 1 (measured vs paper)
    safeflow demo                # run the Simplex pendulum demo
    safeflow gen [FILE]          # generate a synthetic core component

``analyze``, ``batch`` and ``serve`` use the on-disk caches of
:mod:`repro.perf` by default (``$SAFEFLOW_CACHE_DIR`` or
``~/.cache/safeflow``); disable with ``--no-cache``, relocate with
``--cache-dir``.

Exit codes are uniform across subcommands:

====  =================================================================
code  meaning
====  =================================================================
0     analysis ran and the property holds for every unit/job
1     analysis ran and found errors/violations, or (keep-going modes)
      some jobs passed while others were degraded fail-closed
2     the tool itself failed (bad input, job crash, timeout) — or, under
      ``--keep-going``/``--recover``, *nothing was certified*: every
      job's verdict is ``degraded``, so no finding exists but no part of
      the corpus passed either
====  =================================================================

Jobs submitted through a daemon or fleet can additionally be refused
at admission (they never ran, so no verdict exists):

==============  =====================================================
outcome         meaning
==============  =====================================================
rate_limited    the tenant exceeded its token-bucket quota; the error
                carries ``retry_after_s`` and a well-behaved client
                (``SafeFlowClient``) retries after that long, within
                its retry budget
shed            brownout: the daemon is saturated and dropped this
                request *before* accepting it (low-priority tenants
                first, then cold-cache jobs); not retryable until
                load drops — accepted work is never shed
==============  =====================================================

Failures are always reported as structured one-line errors, never raw
tracebacks.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import List, Optional

from .core.config import AnalysisConfig
from .core.driver import SafeFlow
from .core.results import AnalysisReport
from .errors import SafeFlowError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="safeflow",
        description="SafeFlow: static analysis to enforce safe value flow "
                    "in embedded control systems (DSN 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze C source files")
    analyze.add_argument("files", nargs="+", help="C files of the core component")
    analyze.add_argument("--name", default="program")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable output")
    analyze.add_argument("--verbose", "-v", action="store_true",
                         help="include value-flow witness paths")
    analyze.add_argument("--dot", metavar="FILE",
                         help="write the value flow graph as DOT")
    analyze.add_argument("--no-restrictions", action="store_true",
                         help="skip phase 2 (P1-P3/A1/A2)")
    analyze.add_argument("--context-insensitive", action="store_true",
                         help="ablation: analyze each function once")
    analyze.add_argument("--summaries", action="store_true",
                         help="use ESP-style function summaries (§3.3)")
    analyze.add_argument("--paranoid", action="store_true",
                         help="treat every shared region as non-core")
    analyze.add_argument("--no-lint", action="store_true",
                         help="skip the vacuous-monitor lint")
    analyze.add_argument("--keep-going", action="store_true",
                         help="degraded mode: recover from front-end "
                              "failures, analyze the rest fail-closed "
                              "(a degraded verdict never passes)")
    _add_recover_flag(analyze)
    analyze.add_argument("--include", "-I", action="append", default=[],
                         help="include directory")
    analyze.add_argument("--stats", action="store_true",
                         help="print per-phase timings and cache counters")
    analyze.add_argument("--profile", action="store_true",
                         help="collect analysis-kernel counters and "
                              "per-body timings; print the hottest bodies")
    _add_cache_flags(analyze)

    watch = sub.add_parser(
        "watch",
        help="watch C sources and re-verdict incrementally on change",
        description="Keeps the front end and a disk-backed value-flow "
                    "segment store alive between verdicts: an edit "
                    "re-lowers only the touched unit, invalidates the "
                    "dirty dependency cone, replays every intact "
                    "segment, and emits a verdict byte-identical to a "
                    "cold run.",
    )
    watch.add_argument("paths", nargs="+",
                       help="C files and/or directories to watch "
                            "(directories are rescanned for *.c)")
    watch.add_argument("--name", default="program")
    watch.add_argument("--interval", type=float, default=0.2, metavar="SEC",
                       help="poll interval in seconds (default: 0.2)")
    watch.add_argument("--idle-release", type=float, default=2.0,
                       metavar="SEC",
                       help="seconds without a change before the gc "
                            "pause held across a re-verdict burst is "
                            "released (default: 2.0)")
    watch.add_argument("--once", action="store_true",
                       help="run one verdict and exit")
    watch.add_argument("--max-verdicts", type=int, default=None, metavar="N",
                       help="exit after N verdicts")
    watch.add_argument("--duration", type=float, default=None, metavar="SEC",
                       help="exit after SEC seconds")
    watch.add_argument("--json", action="store_true",
                       help="one JSON object per verdict (JSON lines)")
    watch.add_argument("--verbose", "-v", action="store_true",
                       help="include value-flow witness paths")
    watch.add_argument("--stats", action="store_true",
                       help="print per-verdict timings and incremental "
                            "counters")
    watch.add_argument("--keep-going", action="store_true",
                       help="degraded mode: recover from front-end "
                            "failures, analyze the rest fail-closed")
    _add_recover_flag(watch)
    watch.add_argument("--include", "-I", action="append", default=[],
                       help="include directory")
    _add_cache_flags(watch)

    batch = sub.add_parser(
        "batch", help="analyze independent programs in parallel"
    )
    batch.add_argument("files", nargs="*",
                       help="C files; each file is one independent job")
    batch.add_argument("--corpus", action="store_true",
                       help="add the three bundled Table-1 systems as jobs")
    batch.add_argument("--jobs", "-j", type=int, default=0, metavar="N",
                       help="worker processes (default: CPU count; "
                            "1 = sequential in-process)")
    batch.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-job timeout in seconds")
    batch.add_argument("--json", action="store_true",
                       help="machine-readable output")
    batch.add_argument("--summaries", action="store_true",
                       help="use ESP-style function summaries (§3.3)")
    batch.add_argument("--include", "-I", action="append", default=[],
                       help="include directory")
    batch.add_argument("--stats", action="store_true",
                       help="print batch-level counters (restarts, "
                            "quarantines, cache integrity evictions)")
    batch.add_argument("--max-crashes", type=int, default=2, metavar="N",
                       help="worker crashes before a job is quarantined "
                            "(default: 2)")
    batch.add_argument("--journal", metavar="PATH", default=None,
                       help="append every completed job's result to a "
                            "durable write-ahead journal at PATH")
    batch.add_argument("--resume", action="store_true",
                       help="replay --journal first and re-run only "
                            "jobs without an intact, fingerprint-"
                            "matching result")
    policy = batch.add_mutually_exclusive_group()
    policy.add_argument("--keep-going", action="store_true",
                        help="degraded mode: jobs with front-end "
                             "failures yield fail-closed partial "
                             "verdicts instead of errors")
    policy.add_argument("--fail-fast", action="store_true",
                        help="stop dispatching new jobs after the "
                             "first failure (remaining jobs are "
                             "reported as aborted)")
    _add_recover_flag(batch)
    _add_limit_flags(batch)
    _add_cache_flags(batch)

    serve = sub.add_parser(
        "serve", help="run the long-lived analysis service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=4650, metavar="PORT",
                       help="TCP port (default: 4650; 0 = ephemeral)")
    serve.add_argument("--unix", metavar="PATH", default=None,
                       help="serve on a Unix socket instead of TCP")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="analysis worker processes (default: CPU count)")
    serve.add_argument("--queue-size", type=int, default=64, metavar="N",
                       help="bounded request queue capacity (default: 64)")
    serve.add_argument("--deadline", type=float, default=None, metavar="SEC",
                       help="default per-request deadline in seconds")
    serve.add_argument("--summaries", action="store_true",
                       help="use ESP-style function summaries (§3.3)")
    serve.add_argument("--include", "-I", action="append", default=[],
                       help="include directory")
    serve.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write a metrics snapshot to FILE on shutdown")
    serve.add_argument("--max-crashes", type=int, default=2, metavar="N",
                       help="worker crashes before a request is "
                            "quarantined (default: 2)")
    serve.add_argument("--in-process", action="store_true",
                       help="run analyses on in-process threads instead "
                            "of worker subprocesses (lower per-request "
                            "overhead, no crash isolation)")
    _add_qos_flags(serve)
    _add_recover_flag(serve)
    _add_limit_flags(serve)
    _add_cache_flags(serve)

    fleet = sub.add_parser(
        "fleet",
        help="run the sharded analysis fleet (front router + N daemons)",
        description="Starts N `safeflow serve` shards and a consistent-"
                    "hash front router speaking the same NDJSON "
                    "JSON-RPC, so SafeFlowClient works unchanged. Jobs "
                    "route by content fingerprint (warm caches stay "
                    "warm) with load-aware work stealing, automatic "
                    "shard restart + in-flight re-dispatch, and "
                    "rolling restarts via --reload.",
    )
    fleet.add_argument("--shards", type=int, default=4, metavar="N",
                       help="shard daemons behind the router (default: 4)")
    fleet.add_argument("--host", default="127.0.0.1",
                       help="router bind address (default: 127.0.0.1)")
    fleet.add_argument("--port", type=int, default=4650, metavar="PORT",
                       help="router TCP port (default: 4650; "
                            "0 = ephemeral)")
    fleet.add_argument("--workers-per-shard", type=int, default=1,
                       metavar="N",
                       help="analysis workers per shard daemon "
                            "(default: 1)")
    fleet.add_argument("--queue-size", type=int, default=64, metavar="N",
                       help="per-shard request queue capacity "
                            "(default: 64)")
    fleet.add_argument("--summaries", action="store_true",
                       help="use ESP-style function summaries (§3.3)")
    fleet.add_argument("--steal-threshold", type=int, default=2,
                       metavar="N",
                       help="home-shard load at which work stealing is "
                            "considered (default: 2)")
    fleet.add_argument("--steal-margin", type=int, default=2, metavar="N",
                       help="minimum load gap before a colder shard "
                            "steals (default: 2)")
    fleet.add_argument("--health-interval", type=float, default=0.5,
                       metavar="SEC",
                       help="seconds between shard health polls "
                            "(default: 0.5)")
    fleet.add_argument("--conns-per-shard", type=int, default=8,
                       metavar="N",
                       help="concurrent router connections per shard "
                            "(default: 8)")
    fleet.add_argument("--in-process", action="store_true",
                       help="embed shard daemons in the router process "
                            "(testing; no crash isolation)")
    fleet.add_argument("--reload", action="store_true",
                       help="rolling-restart the shards of the fleet "
                            "already running at --host/--port, then "
                            "exit (drains one shard at a time; no "
                            "dropped requests)")
    fleet.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write a fleet metrics snapshot to FILE on "
                            "shutdown")
    _add_qos_flags(fleet)
    _add_cache_flags(fleet)

    chaos = sub.add_parser(
        "chaos",
        help="run the fault-injection harness and assert recovery",
        description="Runs a deterministic generated workload under "
                    "named fault schedules (worker kills, poisoned "
                    "inputs, cache corruption) and asserts the final "
                    "verdicts are byte-identical to a fault-free run.",
    )
    chaos.add_argument("--smoke", action="store_true",
                       help="small workload, core schedules only (CI)")
    chaos.add_argument("--schedule", action="append", default=None,
                       metavar="NAME",
                       help="run only this schedule (repeatable); one of "
                            "kill, quarantine, slow, corrupt-ir, "
                            "torn-summary, serve-kill, kill-resume, "
                            "watch-kill, tier-crash, overload")
    chaos.add_argument("--chaos-jobs", type=int, default=6, metavar="N",
                       help="generated programs in the workload "
                            "(default: 6)")
    chaos.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes (default: 2)")
    chaos.add_argument("--json", action="store_true",
                       help="machine-readable output")

    corpus = sub.add_parser("corpus", help="analyze a bundled system")
    corpus.add_argument("key", nargs="?", default="ip",
                        choices=["ip", "generic_simplex", "double_ip"])
    corpus.add_argument("--verbose", "-v", action="store_true")

    sub.add_parser("table1", help="reproduce the paper's Table 1")

    demo = sub.add_parser("demo", help="run the Simplex pendulum demo")
    demo.add_argument("--duration", type=float, default=6.0)
    demo.add_argument("--fault-time", type=float, default=1.0)
    demo.add_argument("--rigged", action="store_true",
                      help="inject the feedback-overwrite attack")
    demo.add_argument("--trusting", action="store_true",
                      help="core trusts the shared feedback copy (the bug)")

    gen = sub.add_parser(
        "gen", help="generate a synthetic core component (scaling benches)"
    )
    gen.add_argument("output", nargs="?", default="-", metavar="FILE",
                     help="output path (default: stdout)")
    gen.add_argument("--data-errors", type=int, default=1, metavar="N",
                     help="regions whose unmonitored read corrupts the "
                          "critical output (default: 1)")
    gen.add_argument("--control-fps", type=int, default=1, metavar="N",
                     help="regions steering control flow only — the "
                          "candidate-false-positive class (default: 1)")
    gen.add_argument("--benign", type=int, default=1, metavar="N",
                     help="regions read only for logging (default: 1)")
    gen.add_argument("--monitored", type=int, default=1, metavar="N",
                     help="regions read only through a monitor (default: 1)")
    gen.add_argument("--filler", type=int, default=0, metavar="N",
                     help="pure computation functions (code size)")
    gen.add_argument("--chain", type=int, default=0, metavar="DEPTH",
                     help="call-chain depth (context-sensitivity stress)")
    gen.add_argument("--fanout", type=int, default=0, metavar="N",
                     help="shared helpers every chain function calls "
                          "(call-graph width stress)")
    gen.add_argument("--pipeline", type=int, default=0, metavar="STAGES",
                     help="value-pipeline stages through core shared "
                          "regions (fixpoint-depth stress)")
    gen.add_argument("--no-loops", action="store_true",
                     help="omit loops from generated bodies")
    gen.add_argument("--expect", action="store_true",
                     help="print the expected diagnosis to stderr")
    return parser


def _add_cache_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--kernel", choices=("compiled", "object"),
                     default="compiled",
                     help="value-flow body kernel: 'compiled' lowers "
                          "each function to a bitset opcode program, "
                          "'object' keeps the reference interpreter "
                          "(reports are byte-identical)")
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the IR / summary caches")
    sub.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="cache directory (default: $SAFEFLOW_CACHE_DIR "
                          "or ~/.cache/safeflow)")


def _add_recover_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--recover", nargs="?", const="all", default=None,
                     metavar="TIERS",
                     help="frontend recovery ladder: units the strict "
                          "front end rejects fall through the given "
                          "comma-separated tiers (gnu,prelude,cleanup,"
                          "salvage; no argument = all) before being "
                          "recorded as lost. Salvaged units are "
                          "analyzed fail-closed — they can never "
                          "certify. Implies --keep-going")


def _recover_tiers(args):
    """Canonical recovery tiers from ``--recover`` (or ``()``)."""
    spec = getattr(args, "recover", None)
    if spec is None:
        return ()
    from .frontend.recovery import normalize_tiers

    try:
        return normalize_tiers(spec)
    except ValueError as exc:
        raise SafeFlowError(str(exc))


def _add_qos_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--tenants", metavar="FILE", default=None,
                     help="tenants.json quota table: per-tenant weight "
                          "(fair-share), rate/burst (token bucket) and "
                          "priority (brownout shed order); enables "
                          "multi-tenant admission control")
    sub.add_argument("--max-inflight", metavar="N|auto", default=None,
                     help="cap concurrently dispatched analyses: an "
                          "integer fixes the limit, 'auto' adapts it "
                          "(AIMD on the rolling p99)")


def _parse_max_inflight(value):
    """``--max-inflight`` → None | "auto" | int (≥1)."""
    if value is None:
        return None
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise SafeFlowError(
            f"--max-inflight must be an integer or 'auto', got {value!r}")
    if parsed < 1:
        raise SafeFlowError("--max-inflight must be >= 1")
    return parsed


def _load_tenant_table(path):
    if path is None:
        return None
    from .qos import load_tenants

    try:
        return load_tenants(path)
    except (OSError, ValueError) as exc:
        raise SafeFlowError(f"--tenants: {exc}")


def _add_limit_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--cpu-limit", type=float, default=None, metavar="SEC",
                     help="per-worker CPU-time cap in seconds "
                          "(RLIMIT_CPU; overrun → resource_exhausted)")
    sub.add_argument("--mem-limit", type=float, default=None, metavar="MB",
                     help="per-worker address-space cap in MiB "
                          "(RLIMIT_AS; overrun → resource_exhausted)")


def _guards_from_args(args):
    """:class:`ResourceGuards` from ``--cpu-limit``/``--mem-limit``.

    Sub-second (or zero) values round *up* to the smallest enforceable
    cap rather than truncating to 0, which ``RLIMIT_CPU`` would treat
    as "no budget at all" (instant ``SIGXCPU``); only an omitted flag
    means unlimited.
    """
    if args.cpu_limit is None and args.mem_limit is None:
        return None
    from .resilience import ResourceGuards

    return ResourceGuards(
        cpu_seconds=(max(1, math.ceil(args.cpu_limit))
                     if args.cpu_limit is not None else None),
        rss_bytes=(max(1, math.ceil(args.mem_limit * 1024 * 1024))
                   if args.mem_limit is not None else None),
    )


def _cache_dir(args) -> Optional[str]:
    if args.no_cache:
        return None
    if args.cache_dir:
        return args.cache_dir
    return os.environ.get(
        "SAFEFLOW_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "safeflow"),
    )


def _render_stats(report: AnalysisReport) -> str:
    stats = report.stats
    lines = [f"stats for {report.name}",
             f"  contexts analyzed  : {stats.contexts_analyzed}"]
    for phase, seconds in stats.phase_timings.items():
        lines.append(f"  {phase + ' time':<19}: {seconds * 1000:.1f} ms")
    for counter, value in stats.cache_counters().items():
        lines.append(f"  {counter:<19}: {value}")
    incremental = {
        "functions_reanalyzed": stats.functions_reanalyzed,
        "dirty_cone_size": stats.dirty_cone_size,
        "segment_evictions": stats.segment_evictions,
        "segment_fallbacks": stats.segment_fallbacks,
    }
    if any(incremental.values()):
        for counter, value in incremental.items():
            lines.append(f"  {counter:<19}: {value}")
    if stats.recovery_attempts:
        lines.append(f"  recovered units    : {stats.recovered_units}")
        for tier in ("strict", "gnu", "prelude", "cleanup", "salvage"):
            if tier in stats.recovery_attempts:
                lines.append(
                    f"  tier {tier:<14}: "
                    f"{stats.recovery_successes.get(tier, 0)}"
                    f"/{stats.recovery_attempts[tier]} "
                    f"(succeeded/attempted)")
    return "\n".join(lines)


def _render_profile(report: AnalysisReport, top: int = 10) -> str:
    stats = report.stats
    lines = [f"profile for {report.name}"]
    for counter in sorted(stats.kernel_counters):
        lines.append(f"  {counter:<24}: {stats.kernel_counters[counter]}")
    if stats.hotspots:
        lines.append(f"  hottest bodies (self time, top {top}):")
        for label, rec in list(stats.hotspots.items())[:top]:
            lines.append(
                f"    {rec['self_seconds'] * 1000:8.2f} ms "
                f"({rec['calls']:.0f} runs) {label}"
            )
    return "\n".join(lines)


def _report_json(report: AnalysisReport) -> str:
    return json.dumps(report.to_json(), indent=2)


def cmd_analyze(args) -> int:
    tiers = _recover_tiers(args)
    config = AnalysisConfig(
        check_restrictions=not args.no_restrictions,
        context_sensitive=not args.context_insensitive,
        summary_mode=args.summaries,
        unannotated_shm_is_core=not args.paranoid,
        lint_monitors=not args.no_lint,
        include_dirs=tuple(args.include),
        cache_dir=_cache_dir(args),
        profile=args.profile,
        degraded_mode=args.keep_going or bool(tiers),
        recover_tiers=tiers,
        kernel=args.kernel,
    )
    report = SafeFlow(config).analyze_files(args.files, name=args.name)
    if args.json:
        print(_report_json(report))
    else:
        print(report.render(verbose=args.verbose))
        if args.stats:
            print()
            print(_render_stats(report))
        if args.profile:
            print()
            print(_render_profile(report))
    if args.dot and report.witness_graphs:
        with open(args.dot, "w") as f:
            f.write(report.witness_graphs[0])
        print(f"\nvalue flow graph written to {args.dot}")
    return 0 if report.passed else 1


def cmd_watch(args) -> int:
    import time as _time

    from .incremental import IncrementalSession, WatchLoop

    tiers = _recover_tiers(args)
    config = AnalysisConfig(
        # incremental replay records/replays summary bodies, so the
        # watch pipeline always runs in summary mode
        summary_mode=True,
        include_dirs=tuple(args.include),
        cache_dir=_cache_dir(args),
        degraded_mode=args.keep_going or bool(tiers),
        recover_tiers=tiers,
        kernel=args.kernel,
    )
    session = IncrementalSession([], config=config, name=args.name)
    last = {"report": None, "started": _time.perf_counter()}

    def on_report(report):
        elapsed = _time.perf_counter() - last["started"]
        last["report"] = report
        changed = [os.path.basename(p) for p in session.last_changed]
        if args.json:
            payload = report.to_json()
            payload["watch"] = {
                "verdict_index": session.verdicts,
                "changed_files": changed,
                "reverdict_seconds": elapsed,
                "unit_swaps": session.swaps,
                "full_relowers": session.full_relowers,
            }
            print(json.dumps(payload), flush=True)
            return
        header = (f"[verdict {session.verdicts}] "
                  f"{report.verdict.upper()} in {elapsed * 1000:.0f} ms")
        if changed:
            header += f"  changed: {', '.join(changed)}"
        if report.stats.dirty_cone_size:
            header += (f"  cone={report.stats.dirty_cone_size}"
                       f" reanalyzed={report.stats.functions_reanalyzed}")
        print(header, flush=True)
        print(report.render(verbose=args.verbose), flush=True)
        if args.stats:
            print(_render_stats(report), flush=True)
        print(flush=True)

    loop = WatchLoop(
        session, roots=args.paths,
        interval=args.interval, idle_release=args.idle_release,
        on_report=on_report,
    )

    loop_poll = loop.poll_once

    def poll_timed():
        last["started"] = _time.perf_counter()
        return loop_poll()

    loop.poll_once = poll_timed
    try:
        loop.run(max_verdicts=args.max_verdicts,
                 duration=args.duration, once=args.once)
    except KeyboardInterrupt:
        pass
    report = last["report"]
    if report is None:
        print("safeflow watch: no verdict ran", file=sys.stderr)
        return 2
    return 0 if report.passed else 1


def cmd_batch(args) -> int:
    from .perf.batch import BatchJob

    jobs: List[BatchJob] = []
    if args.corpus:
        from .corpus import load_all

        for system in load_all():
            jobs.append(BatchJob(
                name=system.key,
                files=tuple(str(p) for p in system.core_files),
            ))
    for path in args.files:
        jobs.append(BatchJob(name=os.path.basename(path), files=(path,)))
    if not jobs:
        print("safeflow batch: no jobs (give FILES and/or --corpus)",
              file=sys.stderr)
        return 2

    if args.resume and not args.journal:
        print("safeflow batch: --resume requires --journal PATH",
              file=sys.stderr)
        return 2

    tiers = _recover_tiers(args)
    config = AnalysisConfig(
        summary_mode=args.summaries,
        include_dirs=tuple(args.include),
        cache_dir=_cache_dir(args),
        degraded_mode=args.keep_going or bool(tiers),
        recover_tiers=tiers,
        kernel=args.kernel,
    )
    max_workers = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    outcome = SafeFlow(config).analyze_batch(
        jobs, max_workers=max_workers, timeout=args.timeout,
        guards=_guards_from_args(args), max_crashes=args.max_crashes,
        fail_fast=args.fail_fast, journal=args.journal, resume=args.resume,
    )

    if args.json:
        payload = {
            "wall_time": outcome.wall_time,
            "worker_restarts": outcome.worker_restarts,
            "quarantined": list(outcome.quarantined),
            "resumed_jobs": outcome.resumed_jobs,
            "journal_truncated_records": outcome.journal_truncated_records,
            "jobs": [
                {
                    "name": r.name,
                    "ok": r.ok,
                    "duration": r.duration,
                    "error": r.error,
                    "code": r.code,
                    "detail": r.detail,
                    "report": r.report.to_json() if r.report else None,
                }
                for r in outcome.results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for result in outcome.results:
            if result.ok:
                counts = result.report.counts()
                status = result.report.verdict.upper()
                print(f"{result.name:<20} {status}  "
                      f"errors={counts['errors']} "
                      f"warnings={counts['warnings']} "
                      f"violations={counts['violations']} "
                      f"({result.duration:.2f}s)")
            else:
                first_line = result.error.strip().splitlines()[-1]
                tag = ""
                if result.code and result.code != "analysis_failed":
                    tag = f"[{result.code}] "
                print(f"{result.name:<20} ERROR {tag}{first_line}")
        failed = sum(1 for r in outcome.results if not r.ok)
        if failed:
            print(f"{failed} job(s) failed", file=sys.stderr)
        print(f"{len(outcome.results)} jobs in {outcome.wall_time:.2f}s "
              f"({max_workers} workers)")
        if args.journal and (outcome.resumed_jobs
                             or outcome.journal_truncated_records):
            print(f"resumed from journal : {outcome.resumed_jobs} job(s) "
                  f"reused, {outcome.journal_truncated_records} damaged "
                  f"record(s) truncated")
        if args.stats:
            evictions = sum(r.report.stats.cache_integrity_evictions
                            for r in outcome.results if r.ok)
            print(f"worker restarts     : {outcome.worker_restarts}")
            print(f"quarantined jobs    : "
                  f"{', '.join(outcome.quarantined) or 'none'}")
            print(f"integrity evictions : {evictions}")
            degraded = sum(len(r.report.degraded)
                           for r in outcome.results if r.ok)
            print(f"degraded units      : {degraded}")
            attempts: dict = {}
            successes: dict = {}
            recovered = 0
            for r in outcome.results:
                if not r.ok:
                    continue
                recovered += getattr(r.report.stats, "recovered_units", 0)
                for tier, n in getattr(r.report.stats,
                                       "recovery_attempts", {}).items():
                    attempts[tier] = attempts.get(tier, 0) + n
                for tier, n in getattr(r.report.stats,
                                       "recovery_successes", {}).items():
                    successes[tier] = successes.get(tier, 0) + n
            if attempts:
                print(f"recovered units     : {recovered}")
                for tier in ("strict", "gnu", "prelude", "cleanup",
                             "salvage"):
                    if tier in attempts:
                        print(f"  tier {tier:<9}: "
                              f"{successes.get(tier, 0)}/{attempts[tier]} "
                              f"(succeeded/attempted)")
    if not outcome.ok:
        return 2
    reports = [r.report for r in outcome.results]
    if all(r.passed for r in reports):
        return 0
    if ((args.keep_going or tiers)
            and all(r.verdict == "degraded" for r in reports)):
        # keep-going batch where *nothing* was certified: every job is
        # degraded and no finding exists — that is a tool-level failure
        # (exit 2), distinct from "findings or mixed" (exit 1)
        print("safeflow batch: nothing certified — every job degraded",
              file=sys.stderr)
        return 2
    return 1


def cmd_serve(args) -> int:
    import signal

    from .server.daemon import SafeFlowServer

    tiers = _recover_tiers(args)
    config = AnalysisConfig(
        summary_mode=args.summaries,
        include_dirs=tuple(args.include),
        cache_dir=_cache_dir(args),
        degraded_mode=bool(tiers),
        recover_tiers=tiers,
        kernel=args.kernel,
    )
    try:
        server = SafeFlowServer(
            config=config,
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            workers=args.workers if args.workers > 0 else None,
            queue_size=args.queue_size,
            default_deadline=args.deadline,
            use_processes=not args.in_process,
            guards=_guards_from_args(args),
            max_crashes=args.max_crashes,
            tenants=_load_tenant_table(args.tenants),
            max_inflight=_parse_max_inflight(args.max_inflight),
        )
    except OSError as exc:
        print(f"safeflow serve: cannot bind: {exc}", file=sys.stderr)
        return 2
    address = server.address
    where = address if isinstance(address, str) else f"{address[0]}:{address[1]}"
    print(
        f"safeflow serve: listening on {where} "
        f"(pid {os.getpid()}, {server.pool.workers} workers, "
        f"{server.pool.mode}, queue {server.queue.capacity})",
        flush=True,
    )

    def _on_signal(_signum, _frame):
        server.request_shutdown()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - handler-less hosts
        server.stop()
    server.wait_stopped(timeout=60.0)
    if args.metrics_json:
        with open(args.metrics_json, "w") as f:
            json.dump(server.metrics.snapshot(), f, indent=2)
        print(f"safeflow serve: metrics written to {args.metrics_json}",
              flush=True)
    return 0


def cmd_fleet(args) -> int:
    import signal
    import threading

    if args.reload:
        from .server.client import SafeFlowClient

        try:
            with SafeFlowClient(host=args.host, port=args.port) as client:
                result = client.call("fleet_reload", timeout=600.0)
        except SafeFlowError as exc:
            print(f"safeflow fleet: reload failed: {exc}", file=sys.stderr)
            return 2
        reloaded = result.get("reloaded", [])
        healthy = result.get("healthy", [])
        print(f"safeflow fleet: reloaded shards {reloaded} "
              f"({len(healthy)}/{len(reloaded)} healthy)")
        return 0 if len(healthy) >= len(reloaded) else 1

    from .fleet import FleetConfig, FleetRouter

    cache_dir = _cache_dir(args)
    if cache_dir is None:
        print("safeflow fleet: shards need a cache directory "
              "(--no-cache is not supported here)", file=sys.stderr)
        return 2
    # shards re-read the table by path; validate it up front so a bad
    # file fails the fleet launch, not N shard spawns later
    _load_tenant_table(args.tenants)
    config = FleetConfig(
        shards=args.shards,
        host=args.host,
        port=args.port,
        cache_root=os.path.join(cache_dir, "fleet"),
        workers_per_shard=args.workers_per_shard,
        queue_size=args.queue_size,
        summaries=args.summaries,
        kernel=args.kernel,
        backend="inprocess" if args.in_process else "process",
        steal_threshold=args.steal_threshold,
        steal_margin=args.steal_margin,
        health_interval=args.health_interval,
        conns_per_shard=args.conns_per_shard,
        tenants_path=args.tenants,
        max_inflight=(str(args.max_inflight)
                      if _parse_max_inflight(args.max_inflight) is not None
                      else None),
    )
    router = FleetRouter(config)
    try:
        host, port = router.start()
    except (OSError, RuntimeError) as exc:
        print(f"safeflow fleet: cannot start: {exc}", file=sys.stderr)
        router.stop()
        return 2
    print(
        f"safeflow fleet: routing on {host}:{port} "
        f"(pid {os.getpid()}, {args.shards} shards x "
        f"{args.workers_per_shard} workers, "
        f"{'in-process' if args.in_process else 'process'} backends)",
        flush=True,
    )

    done = threading.Event()

    def _on_signal(_signum, _frame):
        done.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):  # pragma: no cover - odd hosts
            pass
    try:
        done.wait()
    except KeyboardInterrupt:  # pragma: no cover - handler-less hosts
        pass
    snapshot = None
    if args.metrics_json:
        try:
            snapshot = router.metrics_snapshot()
        except RuntimeError:
            pass
    router.stop()
    if args.metrics_json and snapshot is not None:
        with open(args.metrics_json, "w") as f:
            json.dump(snapshot, f, indent=2)
        print(f"safeflow fleet: metrics written to {args.metrics_json}",
              flush=True)
    return 0


def cmd_chaos(args) -> int:
    from .resilience.chaos import run_chaos

    try:
        outcome = run_chaos(
            schedules=args.schedule,
            jobs=args.chaos_jobs,
            workers=args.workers,
            smoke=args.smoke,
        )
    except ValueError as exc:
        print(f"safeflow chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(outcome.to_json(), indent=2))
    else:
        print(outcome.render())
    return 0 if outcome.ok else 2


def cmd_corpus(args) -> int:
    from .corpus import load_system

    system = load_system(args.key)
    report = system.analyze()
    print(report.render(verbose=args.verbose))
    paper = system.paper
    counts = report.counts()
    print(
        f"\npaper reports: errors={paper.error_dependencies} "
        f"warnings={paper.warnings} false_positives={paper.false_positives}"
    )
    match = (
        counts["errors"] == paper.error_dependencies
        and counts["warnings"] == paper.warnings
        and counts["false_positives"] == paper.false_positives
    )
    print("reproduction:", "MATCH" if match else "MISMATCH")
    return 0 if match else 1


def cmd_table1(_args) -> int:
    from .corpus import load_all
    from .reporting.render import table1_comparison

    results = [(system, system.analyze()) for system in load_all()]
    print(table1_comparison(results))
    return 0


def cmd_demo(args) -> int:
    from .simplex import FeedbackOverwrite, pendulum_simplex

    injections = []
    if args.rigged:
        injections.append(
            FeedbackOverwrite(start=args.fault_time, region="feedback",
                              writer="complex")
        )
    system = pendulum_simplex(
        fault_time=args.fault_time,
        fault_mode="reverse",
        trusting_feedback=args.trusting,
        injections=injections,
    )
    trace = system.run(args.duration)
    print(
        f"simplex pendulum: {trace.steps} steps, complex in control "
        f"{100 * trace.complex_ratio:.0f}% of the time, "
        f"{len(trace.rejections)} monitor rejections"
    )
    print(f"max |angle| = {trace.max_abs_state(2):.3f} rad; "
          f"max envelope value = {trace.max_envelope_value:.3f} "
          f"(level {system.envelope.level:.3f})")
    if system.plant.fallen:
        print("PENDULUM FELL — the safe-value-flow property was violated "
              "at run time")
        return 1
    print("pendulum stayed recoverable")
    return 0


def cmd_gen(args) -> int:
    from .corpus import generate_core

    try:
        program = generate_core(
            data_error_regions=args.data_errors,
            control_fp_regions=args.control_fps,
            benign_read_regions=args.benign,
            monitored_regions=args.monitored,
            filler_functions=args.filler,
            chain_depth=args.chain,
            loops=not args.no_loops,
            call_fanout=args.fanout,
            pipeline_stages=args.pipeline,
        )
    except ValueError as exc:
        print(f"safeflow gen: {exc}", file=sys.stderr)
        return 2
    if args.output == "-":
        sys.stdout.write(program.source)
    else:
        with open(args.output, "w") as f:
            f.write(program.source)
    if args.expect:
        print(
            f"safeflow gen: {program.loc} lines, {program.regions} regions; "
            f"expected warnings={program.expected_warnings} "
            f"errors={program.expected_errors} "
            f"false_positives={program.expected_false_positives}",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": cmd_analyze,
        "watch": cmd_watch,
        "batch": cmd_batch,
        "serve": cmd_serve,
        "fleet": cmd_fleet,
        "chaos": cmd_chaos,
        "corpus": cmd_corpus,
        "table1": cmd_table1,
        "demo": cmd_demo,
        "gen": cmd_gen,
    }
    try:
        return handlers[args.command](args)
    except SafeFlowError as exc:
        print(f"safeflow: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
