"""Run-time substrate: simulated shared memory, monitors, components."""

from .component import (
    Component,
    FunctionComponent,
    RuntimeFlowTracker,
    Scheduler,
    TrackedValue,
    UnsafeFlowError,
)
from .monitor import (
    ADMIT,
    CompositeMonitor,
    EnvelopeMonitor,
    FreshnessMonitor,
    Monitor,
    MonitorResult,
    RangeMonitor,
)
from .shm_sim import RegionSpec, SharedSegment, WriteRecord, init_check

__all__ = [
    "ADMIT",
    "Component",
    "CompositeMonitor",
    "EnvelopeMonitor",
    "FreshnessMonitor",
    "FunctionComponent",
    "Monitor",
    "MonitorResult",
    "RangeMonitor",
    "RegionSpec",
    "RuntimeFlowTracker",
    "Scheduler",
    "SharedSegment",
    "TrackedValue",
    "UnsafeFlowError",
    "WriteRecord",
    "init_check",
]
