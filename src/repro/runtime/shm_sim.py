"""Simulated shared memory between core and non-core components.

Python stand-in for the System V segment the corpus C systems use: a
segment is carved into named regions (mirroring the ``shmvar``
annotations), every write records its author component, and nothing
stops a non-core component from writing a region the design intended
to be read-only — which is precisely the failure mode the paper's
Generic Simplex error #1 exploits (the feedback "rigging" overwrite).

``init_check`` reproduces the run-time InitCheck of §3.2.1: executed
once at boot, it verifies the declared regions are non-overlapping and
inside the segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SimulationError


@dataclass(frozen=True)
class RegionSpec:
    """Declared layout of one shared variable (cf. shmvar)."""

    name: str
    offset: int
    size: int
    noncore: bool = False

    @property
    def end(self) -> int:
        return self.offset + self.size


def init_check(segment_size: int, regions: List[RegionSpec]) -> None:
    """The InitCheck of §3.2.1: abort before bootstrap on bad layouts."""
    ordered = sorted(regions, key=lambda r: r.offset)
    for spec in ordered:
        if spec.offset < 0 or spec.size <= 0:
            raise SimulationError(
                f"InitCheck failed: region {spec.name} has invalid extent"
            )
        if spec.end > segment_size:
            raise SimulationError(
                f"InitCheck failed: region {spec.name} "
                f"[{spec.offset},{spec.end}) exceeds the "
                f"{segment_size}-byte segment"
            )
    for first, second in zip(ordered, ordered[1:]):
        if second.offset < first.end:
            raise SimulationError(
                f"InitCheck failed: regions {first.name} and {second.name} "
                f"overlap"
            )


@dataclass
class WriteRecord:
    """Audit-trail entry: who wrote what, when."""

    time: float
    writer: str
    region: str
    fields: Tuple[str, ...]


class SharedSegment:
    """A simulated shared-memory segment with named, typed regions."""

    def __init__(self, size: int):
        self.size = size
        self.specs: Dict[str, RegionSpec] = {}
        self._data: Dict[str, Dict[str, Any]] = {}
        self.write_log: List[WriteRecord] = []
        self._checked = False

    # -- layout ----------------------------------------------------------

    def declare(self, name: str, offset: int, size: int,
                noncore: bool = False,
                initial: Optional[Dict[str, Any]] = None) -> RegionSpec:
        if self._checked:
            raise SimulationError(
                "regions must be declared before init_check (P1: layout is "
                "fixed for the program lifetime)"
            )
        if name in self.specs:
            raise SimulationError(f"region {name!r} already declared")
        spec = RegionSpec(name, offset, size, noncore)
        self.specs[name] = spec
        self._data[name] = dict(initial or {})
        return spec

    def run_init_check(self) -> None:
        init_check(self.size, list(self.specs.values()))
        self._checked = True

    # -- access ------------------------------------------------------------

    def _region(self, name: str) -> Dict[str, Any]:
        if name not in self._data:
            raise SimulationError(f"unknown shared region {name!r}")
        return self._data[name]

    def read(self, region: str, field_name: str, default: Any = 0.0) -> Any:
        return self._region(region).get(field_name, default)

    def read_region(self, region: str) -> Dict[str, Any]:
        return dict(self._region(region))

    def write(self, writer: str, region: str, time: float = 0.0,
              **fields: Any) -> None:
        """Write fields into a region. Nothing enforces the intended
        writer set — that is the point: read-only-by-convention is not
        read-only (§4, Generic Simplex error #1)."""
        data = self._region(region)
        data.update(fields)
        self.write_log.append(
            WriteRecord(time, writer, region, tuple(sorted(fields)))
        )

    # -- audit -------------------------------------------------------------

    def writers_of(self, region: str) -> List[str]:
        return sorted({rec.writer for rec in self.write_log
                       if rec.region == region})

    def noncore_writes_to(self, region: str,
                          core_writers: Tuple[str, ...]) -> List[WriteRecord]:
        """Writes to a region by components outside ``core_writers``."""
        return [rec for rec in self.write_log
                if rec.region == region and rec.writer not in core_writers]
