"""Periodic components and the scheduler that steps them.

Also hosts :class:`RuntimeFlowTracker`, a *run-time* implementation of
the safe-value-flow check: every value read from a non-core region is
wrapped and its taint followed through explicit ``combine`` calls until
a critical output is produced. The paper motivates static analysis by
the run-time overhead of exactly this kind of tracking (§1:
"run-time error dependency detection incurs performance penalties");
``benchmarks/bench_runtime_overhead.py`` quantifies it against the
zero-overhead statically-checked loop.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import SimulationError


class Component:
    """A periodic task: ``step(t)`` runs every ``period`` seconds."""

    def __init__(self, name: str, period: float):
        if period <= 0:
            raise SimulationError(f"component {name}: period must be > 0")
        self.name = name
        self.period = period

    def step(self, t: float) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<component {self.name} @ {self.period}s>"


class FunctionComponent(Component):
    """Component from a plain callable."""

    def __init__(self, name: str, period: float,
                 fn: Callable[[float], None]):
        super().__init__(name, period)
        self._fn = fn

    def step(self, t: float) -> None:
        self._fn(t)


class Scheduler:
    """Deterministic earliest-release scheduler for components.

    Ties release at the same instant in registration order (the core
    component should be registered first, like the highest-priority
    task on the real system).
    """

    def __init__(self):
        self._components: List[Component] = []
        self.time = 0.0
        self.dispatches: Dict[str, int] = {}

    def add(self, component: Component) -> Component:
        self._components.append(component)
        self.dispatches[component.name] = 0
        return component

    def run(self, duration: float) -> float:
        """Run all components for ``duration`` seconds of virtual time."""
        if not self._components:
            raise SimulationError("no components registered")
        heap: List[Tuple[float, int, Component]] = []
        for order, component in enumerate(self._components):
            heapq.heappush(heap, (self.time, order, component))
        end = self.time + duration
        while heap:
            release, order, component = heapq.heappop(heap)
            if release >= end:
                break
            self.time = release
            component.step(release)
            self.dispatches[component.name] += 1
            heapq.heappush(heap, (release + component.period, order,
                                  component))
        self.time = end
        return self.time


# ----------------------------------------------------------------------
# run-time value-flow tracking (the alternative SafeFlow avoids)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TrackedValue:
    """A float carrying run-time taint provenance."""

    value: float
    sources: FrozenSet[str] = frozenset()

    @property
    def is_safe(self) -> bool:
        return not self.sources


class UnsafeFlowError(SimulationError):
    """Raised when an unmonitored non-core value reaches critical output."""


class RuntimeFlowTracker:
    """Run-time taint tracking over shared-memory reads.

    Usage mirrors the static analysis: reads of non-core regions
    produce tainted :class:`TrackedValue`; ``monitorized`` clears the
    taint (a run-time monitor vouched for the value); ``combine``
    propagates; ``assert_safe`` is the critical-data check.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.reads = 0
        self.violations: List[str] = []

    def read_noncore(self, region: str, value: float) -> TrackedValue:
        self.reads += 1
        if not self.enabled:
            return TrackedValue(value)
        return TrackedValue(value, frozenset({region}))

    def read_core(self, value: float) -> TrackedValue:
        self.reads += 1
        return TrackedValue(value)

    def monitorized(self, tracked: TrackedValue) -> TrackedValue:
        """A monitor admitted the value: it is now safe (§2 rules)."""
        return TrackedValue(tracked.value)

    def combine(self, op: Callable[..., float],
                *operands: TrackedValue) -> TrackedValue:
        value = op(*(t.value for t in operands))
        if not self.enabled:
            return TrackedValue(value)
        sources: FrozenSet[str] = frozenset()
        for t in operands:
            sources |= t.sources
        return TrackedValue(value, sources)

    def assert_safe(self, tracked: TrackedValue, what: str = "output",
                    raise_on_violation: bool = False) -> float:
        if self.enabled and tracked.sources:
            message = (
                f"critical {what} depends on unmonitored non-core "
                f"value(s): {sorted(tracked.sources)}"
            )
            self.violations.append(message)
            if raise_on_violation:
                raise UnsafeFlowError(message)
        return tracked.value
