"""Run-time monitors: the checks the ``assume(core(...))`` annotations
promise are implemented inside monitoring functions.

SafeFlow's whole contract is "assuming that monitors are correctly
implemented" (§1); this module provides the reference implementations
used by the simulation substrate and the examples, mirroring the C
monitors in the corpus: range, freshness/validity, and the Lyapunov
stability envelope.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid a runtime<->simplex cycle
    from ..simplex.lyapunov import StabilityEnvelope
    from ..simplex.plant import Plant


class MonitorResult:
    """Outcome of one monitoring decision, with the reason it failed."""

    __slots__ = ("admitted", "reason")

    def __init__(self, admitted: bool, reason: str = ""):
        self.admitted = admitted
        self.reason = reason

    def __bool__(self) -> bool:
        return self.admitted

    def __repr__(self) -> str:
        if self.admitted:
            return "<admit>"
        return f"<reject: {self.reason}>"


ADMIT = MonitorResult(True)


class Monitor:
    """Base monitor; ``check`` admits or rejects a non-core value."""

    name = "monitor"

    def check(self, value: float, context: Dict[str, Any]) -> MonitorResult:
        raise NotImplementedError

    def reset(self) -> None:
        pass


class RangeMonitor(Monitor):
    """Admit only finite values inside [low, high]."""

    name = "range"

    def __init__(self, low: float, high: float):
        self.low = low
        self.high = high

    def check(self, value: float, context: Dict[str, Any]) -> MonitorResult:
        if not math.isfinite(value):
            return MonitorResult(False, "non-finite value")
        if value < self.low or value > self.high:
            return MonitorResult(
                False, f"value {value:.3f} outside [{self.low}, {self.high}]"
            )
        return ADMIT


class FreshnessMonitor(Monitor):
    """Admit only values whose sequence number advanced since the last
    admitted one (the staleness check of the corpus monitors)."""

    name = "freshness"

    def __init__(self):
        self._last_seq: Optional[int] = None

    def check(self, value: float, context: Dict[str, Any]) -> MonitorResult:
        if not context.get("valid", True):
            return MonitorResult(False, "producer marked value invalid")
        seq = context.get("seq")
        if seq is None:
            return MonitorResult(False, "no sequence number")
        if self._last_seq is not None and seq == self._last_seq:
            return MonitorResult(False, f"stale output (seq {seq})")
        self._last_seq = seq
        return ADMIT

    def reset(self) -> None:
        self._last_seq = None


class EnvelopeMonitor(Monitor):
    """Admit a control output only if the one-step prediction stays in
    the Lyapunov recoverable region (the Simplex monitor [22])."""

    name = "envelope"

    def __init__(self, envelope: "StabilityEnvelope", plant: "Plant",
                 dt: float):
        self.envelope = envelope
        self.plant = plant
        self.dt = dt

    def check(self, value: float, context: Dict[str, Any]) -> MonitorResult:
        state = context.get("state")
        if state is None:
            return MonitorResult(False, "no plant state in context")
        if not self.envelope.recoverable(self.plant, np.asarray(state),
                                         value, self.dt):
            return MonitorResult(False, "leaves the stability envelope")
        return ADMIT


class CompositeMonitor(Monitor):
    """All sub-monitors must admit; reports the first rejection."""

    name = "composite"

    def __init__(self, monitors: Iterable[Monitor]):
        self.monitors: List[Monitor] = list(monitors)

    def check(self, value: float, context: Dict[str, Any]) -> MonitorResult:
        for monitor in self.monitors:
            result = monitor.check(value, context)
            if not result:
                return MonitorResult(
                    False, f"{monitor.name}: {result.reason}"
                )
        return ADMIT

    def reset(self) -> None:
        for monitor in self.monitors:
            monitor.reset()
