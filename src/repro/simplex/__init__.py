"""Simplex-architecture simulation substrate (plants, controllers,
Lyapunov envelopes, fault injection, the full decision loop)."""

from .architecture import SimplexSystem, SimplexTrace, pendulum_simplex
from .controllers import (
    Controller,
    EnergyShapingController,
    FaultyController,
    LQRController,
    MPCController,
    PDController,
    lqr_gains,
)
from .faults import (
    FeedbackOverwrite,
    FieldCorruption,
    HeartbeatFreeze,
    Injection,
    PidOverwrite,
)
from .lyapunov import StabilityEnvelope
from .plant import (
    DoubleInvertedPendulum,
    InvertedPendulum,
    Plant,
    SimplePlant,
    rk4_step,
)

__all__ = [
    "Controller",
    "DoubleInvertedPendulum",
    "EnergyShapingController",
    "FaultyController",
    "FeedbackOverwrite",
    "FieldCorruption",
    "HeartbeatFreeze",
    "Injection",
    "InvertedPendulum",
    "LQRController",
    "MPCController",
    "PDController",
    "Plant",
    "PidOverwrite",
    "SimplePlant",
    "SimplexSystem",
    "SimplexTrace",
    "StabilityEnvelope",
    "lqr_gains",
    "pendulum_simplex",
    "rk4_step",
]
