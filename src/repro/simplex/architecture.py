"""The Simplex architecture loop: safety + complex + decision monitor.

This is the executable counterpart of the corpus C systems: a core
controller that publishes feedback, a non-core complex controller that
computes commands into shared memory, and a decision module that
admits the complex output only through the run-time monitor.

The ``trusting_feedback`` switch reproduces the Generic Simplex error
the static analysis finds (§4): when True, the decision module feeds
the *shared-memory copy* of the feedback to the recoverability check
instead of the locally sampled state — so a non-core overwrite of the
feedback region can rig the check and drive the plant out of its
envelope. The examples and tests demonstrate both the failure and the
fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.component import RuntimeFlowTracker
from ..runtime.monitor import (
    CompositeMonitor,
    EnvelopeMonitor,
    FreshnessMonitor,
    Monitor,
    RangeMonitor,
)
from ..runtime.shm_sim import SharedSegment
from .controllers import Controller, LQRController
from .faults import HeartbeatFreeze, Injection
from .lyapunov import StabilityEnvelope
from .plant import InvertedPendulum, Plant

Array = np.ndarray

#: canonical field names for 4-state (cart-pole) feedback regions
_STATE_FIELDS = ("trackPos", "trackVel", "angle", "angVel")


def state_field_names(plant: Plant) -> Tuple[str, ...]:
    """Shared-memory field names for a plant's state vector."""
    n = plant.state_dim
    if n <= len(_STATE_FIELDS):
        return _STATE_FIELDS[:n]
    extra = tuple(f"x{i}" for i in range(len(_STATE_FIELDS), n))
    return _STATE_FIELDS + extra


@dataclass
class SimplexTrace:
    """Recorded history of one Simplex run."""

    dt: float
    times: List[float] = field(default_factory=list)
    states: List[Array] = field(default_factory=list)
    outputs: List[float] = field(default_factory=list)
    used_complex: List[bool] = field(default_factory=list)
    rejections: List[Tuple[float, str]] = field(default_factory=list)
    envelope_values: List[float] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.times)

    @property
    def complex_ratio(self) -> float:
        if not self.used_complex:
            return 0.0
        return sum(self.used_complex) / len(self.used_complex)

    @property
    def fallback_count(self) -> int:
        return len(self.used_complex) - sum(self.used_complex)

    def max_abs_state(self, index: int) -> float:
        if not self.states:
            return 0.0
        return max(abs(float(s[index])) for s in self.states)

    @property
    def max_envelope_value(self) -> float:
        return max(self.envelope_values) if self.envelope_values else 0.0

    def stayed_recoverable(self, envelope: StabilityEnvelope) -> bool:
        return all(v <= envelope.level * 1.0001 for v in self.envelope_values)


class SimplexSystem:
    """One core + one complex controller around a plant, via simulated
    shared memory, with optional fault injection."""

    def __init__(
        self,
        plant: Plant,
        safety: Optional[Controller] = None,
        complex_controller: Optional[Controller] = None,
        dt: float = 0.01,
        complex_divisor: int = 2,
        envelope: Optional[StabilityEnvelope] = None,
        injections: Sequence[Injection] = (),
        trusting_feedback: bool = False,
        tracker: Optional[RuntimeFlowTracker] = None,
        u_max: Optional[float] = None,
    ):
        self.plant = plant
        self.dt = dt
        self.complex_divisor = max(1, complex_divisor)
        self.safety = safety or LQRController(plant)
        self.complex_controller = complex_controller
        self.trusting_feedback = trusting_feedback
        self.tracker = tracker
        limit = u_max if u_max is not None else plant.u_max

        if envelope is None:
            lqr = self.safety if isinstance(self.safety, LQRController) \
                else LQRController(plant)
            limits = self._state_limits(plant)
            envelope = StabilityEnvelope.from_closed_loop(
                lqr.closed_loop_a, state_limits=limits
            )
        self.envelope = envelope

        self.monitor: Monitor = CompositeMonitor([
            RangeMonitor(-limit, limit),
            EnvelopeMonitor(envelope, plant, dt),
        ])
        #: ticks without a fresh sequence number before the command is
        #: considered stale (missed complex-controller deadline)
        self.stale_limit = 3 * self.complex_divisor

        self.injections = list(injections)
        self.state_fields = state_field_names(plant)
        self.shm = self._build_shm(plant)
        self._seq = 0
        self._last_seen_seq: Optional[int] = None
        self._stale_ticks = 0

    @staticmethod
    def _state_limits(plant: Plant) -> List[Optional[float]]:
        limits: List[Optional[float]] = [None] * plant.state_dim
        track = getattr(plant, "track_limit", None)
        angle = getattr(plant, "angle_limit", None)
        if track is not None and plant.state_dim >= 1:
            limits[0] = track
        if angle is not None and plant.state_dim >= 3:
            limits[2] = angle
        if angle is not None and plant.state_dim >= 5:
            limits[4] = angle
        return limits

    @staticmethod
    def _build_shm(plant: Plant) -> SharedSegment:
        fb_size = 8 * plant.state_dim + 8  # doubles + tick
        shm = SharedSegment(size=fb_size + 32)
        shm.declare("feedback", 0, fb_size, noncore=True)
        shm.declare("cmd", fb_size, 16, noncore=True)
        shm.declare("status", fb_size + 16, 16, noncore=True)
        shm.run_init_check()
        return shm

    # ------------------------------------------------------------------

    def _publish_feedback(self, state: Array, tick: int, t: float) -> None:
        fields = {}
        for i, name in enumerate(self.state_fields):
            fields[name] = float(state[i])
        fields["tick"] = tick
        self.shm.write("core", "feedback", t, **fields)

    def _run_complex(self, t: float, frozen: bool) -> None:
        if self.complex_controller is None or frozen:
            return
        # the complex controller believes the published feedback
        fb = self.shm.read_region("feedback")
        state = np.zeros(self.plant.state_dim)
        for i, name in enumerate(self.state_fields):
            state[i] = float(fb.get(name, 0.0))
        u = self.complex_controller.compute(state, t)
        self._seq += 1
        self.shm.write("complex", "cmd", t, voltage=float(u),
                       seq=self._seq, valid=1)
        beat = self.shm.read("status", "heartbeat", 0)
        self.shm.write("complex", "status", t, heartbeat=beat + 1)

    def _decide(self, local_state: Array, t: float) -> Tuple[float, bool, str]:
        """The decision module: returns (output, used_complex, reason).

        The last command is *held* between complex-controller periods
        (like the real Simplex core) but re-checked against the current
        state every tick; a command whose sequence number stops
        advancing for ``stale_limit`` ticks is treated as a missed
        deadline and rejected.
        """
        fallback = self.safety.compute(local_state, t)
        if self.complex_controller is None:
            return fallback, False, "no complex controller"
        cmd = self.shm.read_region("cmd")
        candidate = float(cmd.get("voltage", 0.0))
        seq = cmd.get("seq")
        if seq != self._last_seen_seq:
            self._last_seen_seq = seq
            self._stale_ticks = 0
        else:
            self._stale_ticks += 1
        if not cmd.get("valid", 0):
            return fallback, False, "producer marked command invalid"
        if self._stale_ticks > self.stale_limit:
            return fallback, False, "complex controller missed its deadline"
        if self.trusting_feedback:
            # BUG under test: the envelope check uses the shared copy
            fb = self.shm.read_region("feedback")
            check_state = np.array([
                float(fb.get(name, 0.0)) for name in self.state_fields
            ])
        else:
            check_state = local_state
        context = {"state": check_state}
        result = self.monitor.check(candidate, context)
        if result:
            if self.tracker is not None:
                tracked = self.tracker.read_noncore("cmd", candidate)
                tracked = self.tracker.monitorized(tracked)
                value = self.tracker.assert_safe(tracked)
                return value, True, ""
            return candidate, True, ""
        return fallback, False, result.reason

    # ------------------------------------------------------------------

    def run(self, duration: float) -> SimplexTrace:
        trace = SimplexTrace(dt=self.dt)
        steps = int(round(duration / self.dt))
        frozen = False
        for tick in range(steps):
            t = tick * self.dt
            state = self.plant.state.copy()
            self._publish_feedback(state, tick, t)

            for injection in self.injections:
                if isinstance(injection, HeartbeatFreeze):
                    if injection.apply(self.shm, t):
                        frozen = True
                else:
                    injection.apply(self.shm, t)

            if tick % self.complex_divisor == 0:
                self._run_complex(t, frozen)

            output, used_complex, reason = self._decide(state, t)
            if reason and not used_complex:
                trace.rejections.append((t, reason))

            trace.times.append(t)
            trace.states.append(state)
            trace.outputs.append(output)
            trace.used_complex.append(used_complex)
            trace.envelope_values.append(self.envelope.value(
                state[: self.envelope.p.shape[0]]
            ))

            self.plant.step(output, self.dt)
        return trace


def pendulum_simplex(
    fault_time: Optional[float] = None,
    fault_mode: str = "wild",
    trusting_feedback: bool = False,
    injections: Sequence[Injection] = (),
    dt: float = 0.01,
    initial_state=(0.0, 0.0, 0.05, 0.0),
) -> SimplexSystem:
    """Convenience constructor: the canonical IP Simplex system."""
    from .controllers import FaultyController, MPCController

    plant = InvertedPendulum(initial_state=initial_state)
    complex_controller: Controller = MPCController(plant, dt=dt)
    if fault_time is not None:
        complex_controller = FaultyController(
            complex_controller, fault_time, mode=fault_mode,
            magnitude=plant.u_max
        )
    return SimplexSystem(
        plant,
        complex_controller=complex_controller,
        dt=dt,
        trusting_feedback=trusting_feedback,
        injections=injections,
    )
