"""Shared-memory fault/attack injection for the Simplex simulation.

Each injection reproduces one of the implementation-error classes the
paper's analysis guards against (§1, §4):

- :class:`FeedbackOverwrite` — the Generic Simplex error: a non-core
  component overwrites the (read-only by convention) feedback region
  to rig the recoverability check;
- :class:`PidOverwrite` — the kill-pid error: the status block's pid
  is replaced (e.g. with the core's own pid);
- :class:`FieldCorruption` — generic garbage written into any region
  field (data races / format incompatibilities degenerate to this);
- :class:`HeartbeatFreeze` — the non-core side hangs, exercising the
  watchdog path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..runtime.shm_sim import SharedSegment


@dataclass
class Injection:
    """Base injection: fires once ``time >= start``."""

    start: float
    region: str = ""
    writer: str = "attacker"

    def apply(self, shm: SharedSegment, time: float,
              context: Optional[Dict[str, Any]] = None) -> bool:
        """Apply if due; returns True when an effect was injected."""
        if time < self.start:
            return False
        return self._inject(shm, time, context or {})

    def _inject(self, shm: SharedSegment, time: float,
                context: Dict[str, Any]) -> bool:
        raise NotImplementedError


@dataclass
class FieldCorruption(Injection):
    """Overwrite one field with a fixed value every period."""

    field_name: str = ""
    value: Any = 0.0

    def _inject(self, shm: SharedSegment, time: float,
                context: Dict[str, Any]) -> bool:
        shm.write(self.writer, self.region, time,
                  **{self.field_name: self.value})
        return True


@dataclass
class FeedbackOverwrite(Injection):
    """Rig the recoverability check: publish a fake, calm plant state
    so the monitor admits whatever the complex controller outputs."""

    fake_state: Dict[str, float] = field(default_factory=dict)

    def _inject(self, shm: SharedSegment, time: float,
                context: Dict[str, Any]) -> bool:
        fake = self.fake_state or {
            "trackPos": 0.0, "trackVel": 0.0, "angle": 0.0, "angVel": 0.0,
        }
        shm.write(self.writer, self.region, time, **fake)
        return True


@dataclass
class PidOverwrite(Injection):
    """Replace the published non-core pid (e.g. with the core's own)."""

    pid: int = 1

    def _inject(self, shm: SharedSegment, time: float,
                context: Dict[str, Any]) -> bool:
        shm.write(self.writer, self.region, time, ncPid=self.pid)
        return True


@dataclass
class HeartbeatFreeze(Injection):
    """Stop updating the heartbeat: models a hung non-core process.

    Implemented as a marker the producing component consults (the
    component owns the heartbeat counter)."""

    frozen: bool = field(default=False, init=False)

    def _inject(self, shm: SharedSegment, time: float,
                context: Dict[str, Any]) -> bool:
        self.frozen = True
        return True
