"""Lyapunov stability envelopes — the Simplex run-time monitor.

The Simplex architecture [Sha et al.] admits an untrusted control
output only if the plant provably remains *recoverable* by the safety
controller. The standard construction (and the one the paper's §1
cites as the canonical monitor): take the closed loop under the safety
controller, ``A_cl = A - B K``, solve the Lyapunov equation
``A_clᵀ P + P A_cl = -Q``, and use the largest sub-level set
``V(x) = xᵀ P x <= c`` that respects the state/input constraints as
the recoverable region. A candidate input is admitted only if the
one-step prediction stays inside the envelope.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import linalg

from ..errors import SimulationError
from .controllers import LQRController
from .plant import Plant

Array = np.ndarray


class StabilityEnvelope:
    """Quadratic recoverability region ``xᵀ P x <= level``."""

    def __init__(self, p_matrix: Array, level: float = 1.0):
        self.p = np.asarray(p_matrix, dtype=float)
        if self.p.shape[0] != self.p.shape[1]:
            raise SimulationError("P must be square")
        self.level = float(level)

    @classmethod
    def from_closed_loop(
        cls,
        a_closed: Array,
        q: Optional[Array] = None,
        state_limits: Optional[Sequence[float]] = None,
        margin: float = 0.9,
    ) -> "StabilityEnvelope":
        """Solve the Lyapunov equation and scale the level set so the
        envelope fits inside the box |x_i| <= limit_i."""
        n = a_closed.shape[0]
        q = np.eye(n) if q is None else np.asarray(q, dtype=float)
        p = linalg.solve_continuous_lyapunov(a_closed.T, -q)
        # symmetrize (numerical noise) and validate positive-definiteness
        p = 0.5 * (p + p.T)
        eigenvalues = np.linalg.eigvalsh(p)
        if eigenvalues.min() <= 0:
            raise SimulationError(
                "closed loop is not provably stable (P not positive "
                "definite); check the safety controller design"
            )
        level = 1.0
        if state_limits is not None:
            # largest c with {xᵀPx <= c} ⊆ {|x_i| <= L_i}:
            # c = min_i L_i² / (P⁻¹)_{ii}
            p_inv = np.linalg.inv(p)
            cs = []
            for i, limit in enumerate(state_limits):
                if limit is None or not np.isfinite(limit):
                    continue
                cs.append(margin * limit * limit / p_inv[i, i])
            if cs:
                level = min(cs)
        return cls(p, level)

    @classmethod
    def for_plant(cls, plant: Plant, controller: Optional[LQRController]
                  = None, state_limits: Optional[Sequence[float]] = None,
                  ) -> "StabilityEnvelope":
        controller = controller or LQRController(plant)
        return cls.from_closed_loop(controller.closed_loop_a,
                                    state_limits=state_limits)

    # ------------------------------------------------------------------

    def value(self, state: Array) -> float:
        x = np.asarray(state, dtype=float)
        return float(x @ self.p @ x)

    def contains(self, state: Array) -> bool:
        return self.value(state) <= self.level

    def margin(self, state: Array) -> float:
        """Positive inside the envelope, negative outside."""
        return self.level - self.value(state)

    def recoverable(self, plant: Plant, state: Array, u: float,
                    dt: float, margin: float = 0.9) -> bool:
        """Would applying ``u`` for one period keep the state inside
        the envelope? (One-step prediction on the linearized model —
        the same check the corpus C monitors implement.)

        ``margin`` shrinks the admitted level set so linearization and
        integration error cannot push the true state past the boundary.
        """
        if not np.isfinite(u):
            return False
        a_mat, b_mat = plant.linearized()
        x = np.asarray(state, dtype=float)
        predicted = x + dt * (a_mat @ x + b_mat.flatten() * float(u))
        return self.value(predicted) <= self.level * margin
