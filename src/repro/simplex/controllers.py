"""Controllers: the safe baseline, the complex controllers, and the
fault-injection wrappers used to demonstrate why monitoring matters."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np
from scipy import linalg

from ..errors import SimulationError
from .plant import Plant

Array = np.ndarray


class Controller:
    """Base controller: maps (state, time) to a scalar input."""

    name = "controller"

    def compute(self, state: Array, t: float) -> float:
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - default no state
        pass


def lqr_gains(a_mat: Array, b_mat: Array, q: Optional[Array] = None,
              r: Optional[Array] = None) -> Array:
    """Continuous-time LQR gain via the algebraic Riccati equation."""
    n = a_mat.shape[0]
    q = np.eye(n) if q is None else np.asarray(q, dtype=float)
    r = np.eye(b_mat.shape[1]) if r is None else np.asarray(r, dtype=float)
    p = linalg.solve_continuous_are(a_mat, b_mat, q, r)
    k = np.linalg.solve(r, b_mat.T @ p)
    return k


class LQRController(Controller):
    """The provably stabilizing safety controller of the Simplex core."""

    name = "lqr-safety"

    def __init__(self, plant: Plant, q: Optional[Array] = None,
                 r: Optional[Array] = None, u_max: Optional[float] = None):
        a_mat, b_mat = plant.linearized()
        self.gains = lqr_gains(a_mat, b_mat, q, r)
        self.u_max = plant.u_max if u_max is None else u_max
        self.closed_loop_a = a_mat - b_mat @ self.gains

    def compute(self, state: Array, t: float) -> float:
        u = float(-(self.gains @ state)[0])
        return float(np.clip(u, -self.u_max, self.u_max))


class EnergyShapingController(Controller):
    """Energy-based pendulum controller (the IP core's alternate safe
    mode): injects/removes pendulum energy plus cart recentring."""

    name = "energy-shaping"

    def __init__(self, gravity: float = 9.81, k_energy: float = 1.8,
                 k_track: float = 2.4, k_damp: float = 6.0,
                 u_max: float = 5.0):
        self.gravity = gravity
        self.k_energy = k_energy
        self.k_track = k_track
        self.k_damp = k_damp
        self.u_max = u_max

    def compute(self, state: Array, t: float) -> float:
        pos, _vel, theta, omega = state[:4]
        energy = 0.5 * omega * omega + self.gravity * (1.0 - math.cos(theta))
        u = (-self.k_damp * theta - self.k_energy * energy * omega
             * math.cos(theta) - self.k_track * pos)
        return float(np.clip(u, -self.u_max, self.u_max))


class PDController(Controller):
    """Simple PD law for the generic Simplex plant."""

    name = "pd"

    def __init__(self, kp: float, kd: float, u_max: float = 10.0,
                 setpoint: float = 0.0):
        self.kp = kp
        self.kd = kd
        self.u_max = u_max
        self.setpoint = setpoint

    def compute(self, state: Array, t: float) -> float:
        err = self.setpoint - state[0]
        u = self.kp * err - self.kd * state[1]
        return float(np.clip(u, -self.u_max, self.u_max))


class MPCController(Controller):
    """Finite-candidate model-predictive controller: the "complex"
    controller of the IP system (higher performance, unverified)."""

    name = "mpc-complex"

    def __init__(self, plant: Plant, horizon: int = 12,
                 candidates: int = 21, dt: float = 0.01,
                 state_weights: Optional[Sequence[float]] = None,
                 u_weight: float = 0.05):
        self.plant = plant
        self.horizon = horizon
        self.candidates = candidates
        self.dt = dt
        n = plant.state_dim
        self.state_weights = np.asarray(
            state_weights if state_weights is not None else [1.0] * n,
            dtype=float,
        )
        self.u_weight = u_weight
        self._a, self._b = plant.linearized()

    def _rollout_cost(self, state: Array, u: float) -> float:
        x = state.copy()
        cost = 0.0
        for _ in range(self.horizon):
            x = x + self.dt * (self._a @ x + self._b.flatten() * u)
            cost += float(self.state_weights @ (x * x))
            cost += self.u_weight * u * u
        return cost

    def compute(self, state: Array, t: float) -> float:
        u_max = self.plant.u_max
        grid = np.linspace(-u_max, u_max, self.candidates)
        costs = [self._rollout_cost(state, float(u)) for u in grid]
        return float(grid[int(np.argmin(costs))])


class FaultyController(Controller):
    """Wraps a controller and injects a fault after ``fault_time``.

    Fault modes model the non-core failures the paper defends against:
    ``"wild"`` (full-scale bang-bang output), ``"stuck"`` (holds the
    last value), ``"nan"`` (numerical fault), ``"bias"`` (constant
    offset — the DIP trim-bias bug), ``"reverse"`` (sign flip).
    """

    name = "faulty"

    MODES = ("wild", "stuck", "nan", "bias", "reverse")

    def __init__(self, inner: Controller, fault_time: float,
                 mode: str = "wild", magnitude: float = 5.0):
        if mode not in self.MODES:
            raise SimulationError(f"unknown fault mode {mode!r}")
        self.inner = inner
        self.fault_time = fault_time
        self.mode = mode
        self.magnitude = magnitude
        self._last = 0.0
        self._flip = 1.0

    def compute(self, state: Array, t: float) -> float:
        nominal = self.inner.compute(state, t)
        if t < self.fault_time:
            self._last = nominal
            return nominal
        if self.mode == "wild":
            self._flip = -self._flip
            return self.magnitude * self._flip
        if self.mode == "stuck":
            return self._last
        if self.mode == "nan":
            return float("nan")
        if self.mode == "bias":
            return nominal + self.magnitude
        if self.mode == "reverse":
            return -nominal
        return nominal  # pragma: no cover

    def reset(self) -> None:
        self.inner.reset()
        self._last = 0.0
        self._flip = 1.0
