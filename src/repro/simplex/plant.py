"""Plant models: the physical systems the corpus controllers control.

The paper's testbeds are an inverted pendulum, a configurable "simple
plant", and a double inverted pendulum. We model all three as
continuous-time dynamics integrated with a fixed-step RK4 — accurate
enough for control-loop experiments and dependency-free.

Every plant exposes:

- ``state`` — the current state vector (numpy array);
- ``step(u, dt)`` — advance one control period under input ``u``;
- ``linearized()`` — (A, B) matrices about the operating point, used
  by the LQR design and the Lyapunov stability envelope.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import SimulationError

Array = np.ndarray


def rk4_step(f: Callable[[Array, float], Array], x: Array, u: float,
             dt: float) -> Array:
    """Classic fixed-step RK4 for dx/dt = f(x, u)."""
    k1 = f(x, u)
    k2 = f(x + 0.5 * dt * k1, u)
    k3 = f(x + 0.5 * dt * k2, u)
    k4 = f(x + dt * k3, u)
    return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


class Plant:
    """Base class for simulated plants."""

    #: dimension of the state vector
    state_dim: int = 0
    #: saturating input limit |u| <= u_max
    u_max: float = float("inf")

    def __init__(self, initial_state):
        self.state = np.asarray(initial_state, dtype=float)
        if self.state.shape != (self.state_dim,):
            raise SimulationError(
                f"initial state must have {self.state_dim} entries, got "
                f"{self.state.shape}"
            )
        self.time = 0.0

    def dynamics(self, x: Array, u: float) -> Array:
        raise NotImplementedError

    def linearized(self) -> Tuple[Array, Array]:
        raise NotImplementedError

    def step(self, u: float, dt: float) -> Array:
        """Advance one control period; returns the new state."""
        if not math.isfinite(u):
            # a real actuator driver would fault; model as zero drive
            u = 0.0
        u = float(np.clip(u, -self.u_max, self.u_max))
        self.state = rk4_step(lambda x, v: self.dynamics(x, v), self.state,
                              u, dt)
        self.time += dt
        return self.state

    def reset(self, initial_state) -> None:
        self.state = np.asarray(initial_state, dtype=float)
        self.time = 0.0


class InvertedPendulum(Plant):
    """Cart-pole: pendulum balanced on a motor-driven cart.

    State: ``[x, x_dot, theta, theta_dot]`` with theta measured from
    the upright equilibrium. Input is the motor voltage, converted to
    cart force through a simple DC-motor model.
    """

    state_dim = 4
    u_max = 5.0

    def __init__(self, initial_state=(0.0, 0.0, 0.05, 0.0),
                 cart_mass: float = 0.455, pole_mass: float = 0.21,
                 pole_length: float = 0.305, friction: float = 0.1,
                 motor_gain: float = 1.738, gravity: float = 9.81,
                 track_limit: float = 0.95, angle_limit: float = 0.35):
        self.cart_mass = cart_mass
        self.pole_mass = pole_mass
        self.pole_length = pole_length
        self.friction = friction
        self.motor_gain = motor_gain
        self.gravity = gravity
        self.track_limit = track_limit
        self.angle_limit = angle_limit
        super().__init__(initial_state)

    def dynamics(self, x: Array, u: float) -> Array:
        pos, vel, theta, omega = x
        force = self.motor_gain * u
        m, M, length, g = (self.pole_mass, self.cart_mass,
                           self.pole_length, self.gravity)
        sin_t = math.sin(theta)
        cos_t = math.cos(theta)
        denom = M + m * sin_t * sin_t
        acc = (force - self.friction * vel
               + m * sin_t * (length * omega * omega - g * cos_t)) / denom
        # theta from upright: theta'' = (g sin - cos * acc) / l
        ang_acc = (g * sin_t - cos_t * acc) / length
        return np.array([vel, acc, omega, ang_acc])

    def linearized(self) -> Tuple[Array, Array]:
        m, M, length, g = (self.pole_mass, self.cart_mass,
                           self.pole_length, self.gravity)
        b, k = self.friction, self.motor_gain
        a_mat = np.array([
            [0.0, 1.0, 0.0, 0.0],
            [0.0, -b / M, -m * g / M, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, b / (M * length), (M + m) * g / (M * length), 0.0],
        ])
        b_mat = np.array([[0.0], [k / M], [0.0], [-k / (M * length)]])
        return a_mat, b_mat

    @property
    def fallen(self) -> bool:
        return bool(abs(self.state[2]) > math.pi / 2)

    @property
    def off_track(self) -> bool:
        return bool(abs(self.state[0]) > self.track_limit)


class SimplePlant(Plant):
    """Configurable second-order plant for the generic Simplex system:
    ``y'' = -a1 y' - a0 y + b u`` (mass-spring-damper family)."""

    state_dim = 2
    u_max = 10.0

    def __init__(self, initial_state=(0.4, 0.0), a0: float = 0.8,
                 a1: float = 0.6, b: float = 1.4):
        self.a0 = a0
        self.a1 = a1
        self.b = b
        super().__init__(initial_state)

    def dynamics(self, x: Array, u: float) -> Array:
        y, ydot = x
        return np.array([ydot, -self.a1 * ydot - self.a0 * y + self.b * u])

    def linearized(self) -> Tuple[Array, Array]:
        a_mat = np.array([[0.0, 1.0], [-self.a0, -self.a1]])
        b_mat = np.array([[0.0], [self.b]])
        return a_mat, b_mat


class DoubleInvertedPendulum(Plant):
    """Two-link pendulum on a cart, linearized about upright.

    State: ``[x, x_dot, theta1, theta1_dot, theta2, theta2_dot]``.
    The full nonlinear two-link dynamics add little to the Simplex
    experiments; we integrate the linear model plus a cubic restoring
    perturbation so instability still grows realistically away from
    the equilibrium.
    """

    state_dim = 6
    u_max = 8.0

    def __init__(self, initial_state=(0.0, 0.0, 0.03, 0.0, -0.02, 0.0),
                 track_limit: float = 1.2, angle_limit: float = 0.25):
        self.track_limit = track_limit
        self.angle_limit = angle_limit
        self._a, self._b = self._build_matrices()
        super().__init__(initial_state)

    @staticmethod
    def _build_matrices() -> Tuple[Array, Array]:
        # linearized two-link cart-pendulum (parameters from the lab rig)
        a_mat = np.array([
            [0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            [0.0, -0.20, -1.96, 0.0, 0.49, 0.0],
            [0.0, 0.0, 0.0, 1.0, 0.0, 0.0],
            [0.0, 0.55, 23.8, -0.10, -6.5, 0.05],
            [0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            [0.0, -0.35, -12.4, 0.08, 28.9, -0.12],
        ])
        b_mat = np.array([[0.0], [0.92], [0.0], [-2.45], [0.0], [1.51]])
        return a_mat, b_mat

    def dynamics(self, x: Array, u: float) -> Array:
        linear = self._a @ x + self._b.flatten() * u
        # cubic softening of the gravitational torque terms
        linear[3] -= 4.0 * x[2] ** 3
        linear[5] -= 5.0 * x[4] ** 3
        return linear

    def linearized(self) -> Tuple[Array, Array]:
        return self._a.copy(), self._b.copy()

    @property
    def fallen(self) -> bool:
        return bool(abs(self.state[2]) > 0.8 or abs(self.state[4]) > 0.8)
