"""Tenant identity, weights, and quotas.

A *tenant* is the unit of fairness and accounting: every ``analyze``
request may carry a ``tenant`` string (API-key style), and the
admission layer schedules, rate-limits, sheds, and counts by it.
Requests without one belong to the ``default`` tenant, whose stock
shape — weight 1, no rate limit, normal priority — makes a
tenant-free deployment behave exactly like the pre-QoS daemon.

A :class:`TenantTable` is loaded from the ``--tenants tenants.json``
file::

    {
      "default": {"weight": 1, "priority": "normal"},
      "tenants": {
        "gold": {"weight": 4, "rate": 50, "burst": 100,
                 "priority": "high"},
        "free": {"weight": 1, "rate": 5, "priority": "low"}
      }
    }

``weight`` drives the deficit-round-robin share (see
:mod:`repro.qos.fairqueue`), ``rate``/``burst`` the per-tenant token
bucket (requests per second; omitted = unlimited), and ``priority``
the brownout shed order (``low`` tenants are shed first; ``high``
tenants survive into the deepest brownout level). Unknown tenant
names inherit the default spec but keep their own name for metrics —
an unrecognized API key is throttled like anonymous traffic, not
rejected, so rotating keys never turns into an outage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from .tokenbucket import TokenBucket

#: shed order: lower number is shed earlier under brownout
PRIORITIES = {"low": 0, "normal": 1, "high": 2}

#: the tenant every untagged request belongs to
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class TenantSpec:
    """Static per-tenant policy (the tenants.json row)."""

    name: str
    weight: float = 1.0
    rate: Optional[float] = None   #: requests/second; None = unlimited
    burst: Optional[float] = None  #: bucket size; None = max(rate, 1)
    priority: str = "normal"

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be > 0")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"tenant {self.name!r}: burst must be > 0")
        if self.priority not in PRIORITIES:
            raise ValueError(
                f"tenant {self.name!r}: priority must be one of "
                f"{sorted(PRIORITIES)}")

    @property
    def priority_rank(self) -> int:
        return PRIORITIES[self.priority]

    def bucket(self, clock=None) -> TokenBucket:
        kwargs = {} if clock is None else {"clock": clock}
        return TokenBucket(rate=self.rate, burst=self.burst, **kwargs)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"weight": self.weight,
                                   "priority": self.priority}
        if self.rate is not None:
            payload["rate"] = self.rate
        if self.burst is not None:
            payload["burst"] = self.burst
        return payload


def _spec_from_json(name: str, raw: Any) -> TenantSpec:
    if not isinstance(raw, dict):
        raise ValueError(f"tenant {name!r}: spec must be a JSON object")
    unknown = set(raw) - {"weight", "rate", "burst", "priority"}
    if unknown:
        raise ValueError(
            f"tenant {name!r}: unknown field(s) {sorted(unknown)}")
    try:
        return TenantSpec(
            name=name,
            weight=float(raw.get("weight", 1.0)),
            rate=(float(raw["rate"]) if raw.get("rate") is not None
                  else None),
            burst=(float(raw["burst"]) if raw.get("burst") is not None
                   else None),
            priority=str(raw.get("priority", "normal")),
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"tenant {name!r}: {exc}")


class TenantTable:
    """All declared tenants plus the default spec for everyone else."""

    def __init__(self, specs: Iterable[TenantSpec] = (),
                 default: Optional[TenantSpec] = None):
        self.default = default or TenantSpec(name=DEFAULT_TENANT)
        self.specs: Dict[str, TenantSpec] = {self.default.name: self.default}
        for spec in specs:
            if spec.name in self.specs and spec.name != self.default.name:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self.specs[spec.name] = spec

    def lookup(self, name: Optional[str]) -> TenantSpec:
        """The governing spec for ``name``; unknown names inherit the
        default policy (but are accounted under their own name)."""
        if not name:
            return self.default
        return self.specs.get(name, self.default)

    def declared(self) -> Dict[str, TenantSpec]:
        return dict(self.specs)

    @property
    def total_weight(self) -> float:
        return sum(s.weight for s in self.specs.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "default": self.default.to_json(),
            "tenants": {
                name: spec.to_json()
                for name, spec in sorted(self.specs.items())
                if name != self.default.name
            },
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TenantTable":
        if not isinstance(payload, dict):
            raise ValueError("tenants file must hold a JSON object")
        raw_tenants = payload.get("tenants", {})
        # also accept the flat form: a bare {name: spec} mapping
        if "tenants" not in payload and "default" not in payload:
            raw_tenants = payload
        if not isinstance(raw_tenants, dict):
            raise ValueError("'tenants' must be an object of name -> spec")
        default = TenantSpec(name=DEFAULT_TENANT)
        if "default" in payload and payload["default"] is not None:
            default = _spec_from_json(DEFAULT_TENANT, payload["default"])
        specs = [_spec_from_json(str(name), raw)
                 for name, raw in raw_tenants.items()]
        return cls(specs, default=default)


def load_tenants(path: str) -> TenantTable:
    """Parse a ``tenants.json`` file; ``ValueError`` on bad content."""
    try:
        with open(path) as f:
            payload = json.load(f)
    except OSError as exc:
        raise ValueError(f"cannot read tenants file {path!r}: {exc}")
    except json.JSONDecodeError as exc:
        raise ValueError(f"tenants file {path!r} is not valid JSON: {exc}")
    return TenantTable.from_json(payload)
