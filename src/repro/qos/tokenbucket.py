"""Token buckets: the one rate-limiting primitive of the QoS layer.

Every quota in the admission-control stack is a :class:`TokenBucket` —
per-tenant request rates in the fair queue, the client's retry budget,
the brownout controller's shed-hint pacing. One implementation means
one set of semantics to reason about:

- *lazy refill*: tokens accrue continuously at ``rate`` per second up
  to ``burst``; no timer thread, the balance is computed from the
  monotonic clock at each acquire;
- *non-blocking*: :meth:`try_acquire` either takes the tokens now or
  returns the seconds until they will exist — that number is the
  ``retry_after_s`` hint the server puts on ``rate_limited``
  rejections, so a well-behaved client sleeps exactly as long as the
  bucket needs, no more (wasted latency) and no less (wasted round
  trip);
- *refundable*: :meth:`refund` puts tokens back, which is how a job
  cancelled while still queued ends up never having consumed its
  tenant's quota (see :mod:`repro.qos.fairqueue`).

The clock is injectable so property tests can drive time by hand.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TokenBucket:
    """Thread-safe lazy-refill token bucket.

    ``rate`` is tokens per second; ``None`` means unlimited (every
    acquire succeeds — the default tenant's backward-compatible
    shape). ``burst`` is the bucket capacity; it defaults to the
    larger of ``rate`` and 1, i.e. one second of traffic.
    """

    def __init__(self, rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None = unlimited)")
        if burst is not None and burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = rate
        self.burst = (burst if burst is not None
                      else max(1.0, rate or 1.0))
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._updated = clock()

    # ------------------------------------------------------------------

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now; returns 0.0 on success, otherwise the
        seconds until the bucket will hold that many tokens (the
        ``retry_after_s`` hint). Never blocks."""
        if self.rate is None:
            return 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            deficit = tokens - self._tokens
            return deficit / self.rate

    def refund(self, tokens: float = 1.0) -> None:
        """Return tokens (capped at ``burst``) — a charge that turned
        out not to consume service (cancelled while queued)."""
        if self.rate is None:
            return
        with self._lock:
            now = self._clock()
            self._refill(now)
            self._tokens = min(self.burst, self._tokens + tokens)

    def deposit(self, tokens: float) -> None:
        """Unconditionally add earned tokens (retry-budget style:
        successful work earns retry headroom)."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            self._tokens = min(self.burst, self._tokens + tokens)

    def available(self) -> float:
        """Current balance (diagnostic; racy by nature)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            self._refill(self._clock())
            return self._tokens
