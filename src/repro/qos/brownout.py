"""Brownout: a load-shed ladder for sustained overload.

Rejecting at the queue bound protects memory but treats every request
the same; under *sustained* pressure the right degradation is
prioritized, not random. The controller watches queue saturation and
climbs a ladder with hysteresis (a level changes only after the
pressure signal holds for ``hold_s``, and entering needs more
saturation than leaving, so the ladder does not flap):

- **level 0** — normal admission;
- **level 1** — shed ``low``-priority tenants (structured ``shed``
  rejection with a retry hint); everyone else is unaffected;
- **level 2** — additionally serve only *warm* jobs: requests whose
  routing key was analyzed recently enough to hit the result cache or
  incremental segment store. Cold jobs are shed — except for
  ``high``-priority tenants, which stay admitted so paid/control
  traffic survives the deepest brownout.

Shedding is fail-closed in the paper's sense: a shed request gets an
explicit structured refusal, never a fabricated or partial verdict,
and work that was *accepted* is never dropped or degraded — the
byte-identity guarantee of the overload drill.

:class:`WarmSet` is the memory of "warm": a bounded LRU of routing
keys (:func:`repro.fleet.hashring.routing_key` — pure hashing, no
I/O) recorded on each successful analysis.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from .tenants import TenantSpec


class WarmSet:
    """Bounded LRU set of recently served routing keys."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._keys: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def add(self, key: str) -> None:
        with self._lock:
            self._keys.pop(key, None)
            self._keys[key] = True
            while len(self._keys) > self.capacity:
                self._keys.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key not in self._keys:
                return False
            self._keys.move_to_end(key)
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)


class BrownoutController:
    """Saturation-driven shed ladder with hysteresis."""

    #: shed reasons, by ladder level
    LOW_PRIORITY = "low_priority"
    COLD = "cold"

    def __init__(self,
                 enter_saturation: float = 0.85,
                 exit_saturation: float = 0.5,
                 hold_s: float = 1.0,
                 retry_after_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if not (0.0 < exit_saturation < enter_saturation <= 1.0):
            raise ValueError(
                "need 0 < exit_saturation < enter_saturation <= 1")
        self.enter_saturation = enter_saturation
        self.exit_saturation = exit_saturation
        self.hold_s = hold_s
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._level = 0
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None
        self._escalations = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def update(self, saturation: float) -> int:
        """Feed the current queue saturation; returns the (possibly
        changed) brownout level. Called on every admission, so the
        signal is as fresh as the traffic."""
        now = self._clock()
        with self._lock:
            if saturation >= self.enter_saturation:
                self._below_since = None
                if self._above_since is None:
                    self._above_since = now
                elif (now - self._above_since >= self.hold_s
                      and self._level < 2):
                    self._level += 1
                    self._escalations += 1
                    self._above_since = now  # re-arm for the next rung
            elif saturation <= self.exit_saturation:
                self._above_since = None
                if self._below_since is None:
                    self._below_since = now
                elif (now - self._below_since >= self.hold_s
                      and self._level > 0):
                    self._level -= 1
                    self._below_since = now
            else:
                # dead band: hold the current level, reset both timers
                self._above_since = None
                self._below_since = None
            return self._level

    def decide(self, spec: TenantSpec, warm: bool) -> Optional[str]:
        """Shed verdict for one request at the current level: ``None``
        admits; otherwise the shed reason (``low_priority``/``cold``).
        """
        with self._lock:
            level = self._level
        if level >= 1 and spec.priority_rank == 0:
            return self.LOW_PRIORITY
        if level >= 2 and not warm and spec.priority_rank < 2:
            return self.COLD
        return None

    # ------------------------------------------------------------------

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def snapshot(self) -> dict:
        with self._lock:
            return {"level": self._level, "escalations": self._escalations}
