"""Weighted deficit-round-robin admission queue.

Drop-in replacement for the single FIFO of
:class:`repro.server.queue.RequestQueue` with per-tenant isolation:

- *lanes*: each tenant's pending jobs wait in their own FIFO; the
  runner-facing :meth:`get` serves lanes by deficit round robin with
  per-lane quantum proportional to the tenant's weight, so a tenant
  with weight 4 drains four jobs for every one of a weight-1 tenant —
  and a tenant that floods its lane delays only itself;
- *admission quotas*: each lane is gated by the tenant's token bucket
  (``rate``/``burst`` from the :class:`~repro.qos.tenants.TenantTable`);
  an over-rate request is rejected with :class:`RateLimitedError`
  carrying the exact ``retry_after_s`` the bucket computed;
- *bounded backlog, per tenant*: besides the global ``capacity``,
  each lane is capped at its weight-proportional share, so one hot
  tenant can fill its own share but never the whole queue — the
  others always have admission headroom (``queue_full`` for them
  remains impossible while their share has room);
- *refund on cancel*: the bucket charge travels with the job; a job
  cancelled while still queued refunds its token exactly once — a
  cancelled request never consumes its tenant's quota.

With a bare default table (no tenants declared) every request lands
in one lane with quantum 1, an unlimited bucket, and a share equal to
the full capacity: byte-for-byte the old FIFO behavior.

The scheduling is work-conserving: deficit state persists across
:meth:`get` calls, empty lanes leave the rotation (their deficit
resets so idleness is not bankable), and jobs cancelled between
enqueue and dispatch are dropped here without costing their lane any
deficit.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Dict, Optional

from .tenants import TenantTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..server.queue import PendingJob

# NOTE: runtime imports of repro.server are deferred into the methods
# that need them: the server package imports repro.qos at init, so a
# module-level import here would be circular whenever repro.qos loads
# first (e.g. in the qos unit tests).


class RateLimitedError(Exception):
    """Admission rejected by the tenant's token bucket."""

    def __init__(self, tenant: str, retry_after_s: float):
        super().__init__(
            f"tenant {tenant!r} is over its request rate; "
            f"retry in {retry_after_s:.3f}s")
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class _Lane:
    """One tenant's FIFO plus its DRR/quota state."""

    __slots__ = ("name", "jobs", "deficit", "quantum", "share", "bucket")

    def __init__(self, name: str, quantum: float, share: int, bucket):
        self.name = name
        self.jobs: deque = deque()
        self.deficit = 0.0
        self.quantum = quantum
        self.share = share
        self.bucket = bucket


class FairQueue:
    """Bounded multi-tenant queue between handlers and runners.

    API-compatible with :class:`repro.server.queue.RequestQueue`
    (``put_nowait`` / ``get`` / ``close`` / ``depth`` / ``closed`` /
    ``finished`` / ``capacity``) so the worker pool and daemon drain
    logic are unchanged.
    """

    def __init__(self, capacity: int,
                 tenants: Optional[TenantTable] = None,
                 clock=None):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.tenants = tenants or TenantTable()
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._lanes: Dict[str, _Lane] = {}
        self._rotation: deque = deque()   # lane names awaiting a turn
        self._current: Optional[str] = None  # lane mid-turn
        self._size = 0                    # total queued (incl. dead jobs)
        self._closed = False
        self._drain = True

    # ------------------------------------------------------------------
    # lanes
    # ------------------------------------------------------------------

    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            spec = self.tenants.lookup(tenant)
            declared = len(self.tenants.specs)
            if declared <= 1:
                share = self.capacity  # single-tenant: the old FIFO bound
            else:
                share = max(1, int(self.capacity * spec.weight
                                   / self.tenants.total_weight))
            lane = _Lane(tenant, quantum=spec.weight, share=share,
                         bucket=spec.bucket(clock=self._clock))
            self._lanes[tenant] = lane
        return lane

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def put_nowait(self, job: "PendingJob") -> None:
        """Admit ``job`` into its tenant's lane.

        Raises :class:`QueueClosedError` when draining,
        :class:`QueueFullError` past the global capacity or the lane's
        weighted share, and :class:`RateLimitedError` (with the
        bucket's ``retry_after_s``) past the tenant's request rate.
        """
        from ..server.queue import QueueClosedError, QueueFullError
        tenant = getattr(job, "tenant", None) or self.tenants.default.name
        with self._not_empty:
            if self._closed:
                raise QueueClosedError("queue is draining")
            lane = self._lane(tenant)
            if self._size >= self.capacity:
                raise QueueFullError(
                    f"queue full ({self.capacity} requests waiting)")
            if len(lane.jobs) >= lane.share:
                raise QueueFullError(
                    f"tenant {tenant!r} backlog full "
                    f"({lane.share} of {self.capacity} slots)")
            retry_after = lane.bucket.try_acquire()
            if retry_after > 0:
                raise RateLimitedError(tenant, retry_after)
            self._arm_refund(job, lane)
            was_empty = not lane.jobs
            lane.jobs.append(job)
            self._size += 1
            if was_empty and lane.name != self._current:
                self._rotation.append(lane.name)
            self._not_empty.notify()

    def _arm_refund(self, job: "PendingJob", lane: _Lane) -> None:
        """Attach the bucket refund to the job. At-most-once is free:
        ``PendingJob.cancel`` pops the hook under the job lock and only
        when it wins the QUEUED state — mutually exclusive with
        ``start()`` dispatching the job — so a cancelled-while-queued
        job refunds exactly once and a dispatched job never does."""
        job._qos_refund = lane.bucket.refund

    # ------------------------------------------------------------------
    # dispatch (DRR)
    # ------------------------------------------------------------------

    def get(self, timeout: float = 0.1) -> Optional["PendingJob"]:
        """Next live job by weighted deficit round robin, or None on
        timeout / closed-and-empty. Jobs cancelled while queued are
        dropped here (their lane's deficit is not charged) and never
        handed to a runner."""
        with self._not_empty:
            while True:
                job = self._pop_next()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def _pop_next(self) -> Optional["PendingJob"]:
        """One DRR step under the lock; None when nothing is ready."""
        while self._current is not None or self._rotation:
            if self._current is None:
                name = self._rotation.popleft()
                lane = self._lanes[name]
                lane.deficit += lane.quantum
                self._current = name
            lane = self._lanes[self._current]
            if not lane.jobs:
                # emptied mid-turn: leave the rotation, forfeit the
                # unused deficit (idleness is not bankable)
                lane.deficit = 0.0
                self._current = None
                continue
            if lane.deficit < 1.0:
                # turn exhausted: to the back of the rotation
                self._rotation.append(lane.name)
                self._current = None
                continue
            job = lane.jobs.popleft()
            self._size -= 1
            if job.done or job.cancelled:
                continue  # dead job: free drop, deficit untouched
            lane.deficit -= 1.0
            return job
        return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop admission. ``drain=False`` also resolves every queued
        job with ``shutting_down``."""
        from ..server.protocol import SHUTTING_DOWN
        with self._not_empty:
            self._closed = True
            self._drain = drain
            if not drain:
                for lane in self._lanes.values():
                    while lane.jobs:
                        job = lane.jobs.popleft()
                        self._size -= 1
                        job.fail(SHUTTING_DOWN, "server shutting down")
                self._rotation.clear()
                self._current = None
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return sum(1 for lane in self._lanes.values()
                       for j in lane.jobs if not j.done)

    def depth_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return {
                name: depth for name, lane in sorted(self._lanes.items())
                if (depth := sum(1 for j in lane.jobs if not j.done)) or True
            }

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def finished(self) -> bool:
        """Closed and emptied — runners may exit."""
        with self._lock:
            return self._closed and self._size == 0

    def saturation(self) -> float:
        """Queued fraction of capacity — the brownout trip signal."""
        with self._lock:
            return self._size / self.capacity if self.capacity else 0.0
