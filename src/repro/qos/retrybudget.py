"""Client-side retry budgets: retry storms impossible by construction.

Exponential backoff shapes *when* retries happen but not *how many*:
under a real outage every client eventually fires its full retry
count, multiplying offered load exactly when the servers can least
afford it. A retry budget bounds the ratio instead — each first-try
request deposits ``ratio`` retry credits (default 0.1 = at most ~10%
retry amplification in steady state), and each retry withdraws one
whole credit. When the budget is empty, retries are *denied* and the
original error surfaces immediately; the deny count is visible in
client stats as ``retries_denied``.

An ``initial`` balance lets a fresh client ride out a transient
hiccup on its very first requests without waiting to earn credit.
"""

from __future__ import annotations

import threading


class RetryBudget:
    """Deposit-on-request / withdraw-on-retry credit counter."""

    def __init__(self, ratio: float = 0.1,
                 initial: float = 10.0,
                 max_balance: float = 100.0):
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        if max_balance <= 0:
            raise ValueError("max_balance must be > 0")
        self.ratio = ratio
        self.max_balance = max_balance
        self._balance = min(initial, max_balance)
        self._denied = 0
        self._lock = threading.Lock()

    def record_request(self) -> None:
        """A first-try request went out: earn ``ratio`` credits."""
        with self._lock:
            self._balance = min(self.max_balance, self._balance + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one credit for a retry; False (and counted as
        denied) when the budget is exhausted."""
        with self._lock:
            if self._balance >= 1.0:
                self._balance -= 1.0
                return True
            self._denied += 1
            return False

    @property
    def denied(self) -> int:
        with self._lock:
            return self._denied

    def balance(self) -> float:
        with self._lock:
            return self._balance
