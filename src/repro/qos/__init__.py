"""Admission control and overload protection (PR 10).

The QoS layer keeps a multi-tenant analysis fleet predictable under
pressure, extending the source paper's fail-closed discipline from
analysis verdicts to capacity itself: overload produces explicit,
structured, prioritized refusals — never collapse, never fabricated
results.

Pieces, from the outside in:

- :mod:`~repro.qos.tenants` — tenant identity, weights, rates, and
  shed priorities (``tenants.json``);
- :mod:`~repro.qos.tokenbucket` — the one rate-limit primitive;
- :mod:`~repro.qos.fairqueue` — weighted deficit-round-robin queue
  replacing the daemon's single FIFO;
- :mod:`~repro.qos.concurrency` — AIMD in-flight limiter driven by
  rolling p99 (``--max-inflight auto``);
- :mod:`~repro.qos.breaker` — per-shard circuit breakers for the
  fleet router;
- :mod:`~repro.qos.retrybudget` — client retry budget (bounded retry
  amplification);
- :mod:`~repro.qos.brownout` — the load-shed ladder and warm-set.
"""

from .tokenbucket import TokenBucket
from .tenants import (DEFAULT_TENANT, PRIORITIES, TenantSpec, TenantTable,
                      load_tenants)
from .fairqueue import FairQueue, RateLimitedError
from .concurrency import AdaptiveLimiter
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .retrybudget import RetryBudget
from .brownout import BrownoutController, WarmSet

__all__ = [
    "TokenBucket",
    "DEFAULT_TENANT", "PRIORITIES", "TenantSpec", "TenantTable",
    "load_tenants",
    "FairQueue", "RateLimitedError",
    "AdaptiveLimiter",
    "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN",
    "RetryBudget",
    "BrownoutController", "WarmSet",
]
