"""Adaptive concurrency: an AIMD limiter on in-flight analyses.

A static queue bound caps *waiting* work but not *running* work: on a
small host, dispatching every queued job at once pushes the analyzer
past its collapse point and p99 latency goes vertical while goodput
drops. The :class:`AdaptiveLimiter` sits between the queue and the
runner threads and caps in-flight dispatch, adjusting the cap by
AIMD — additive increase, multiplicative decrease — against the p99
of the daemon's existing :class:`~repro.perf.latency.RollingLatency`
window:

- while p99 stays under the threshold and the limit is actually being
  reached, the limit creeps up by 1 (probe for headroom);
- when p99 crosses the threshold, the limit is cut multiplicatively
  (back off before collapse).

The threshold is either explicit (``target_p99_s``) or derived from a
latency floor the limiter learns on its own: the smallest p99 it has
seen, with a slow upward drift so a one-off fast sample does not pin
the target forever. ``--max-inflight N`` builds the same object with
adaptation off — one code path either way.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional


class AdaptiveLimiter:
    """Thread-safe in-flight cap with optional AIMD adaptation.

    ``p99`` is a zero-argument callable returning the current rolling
    p99 in seconds (or ``None`` while the window is empty) — in the
    daemon it is bound to ``metrics.rolling_latency.quantiles``. The
    limiter re-reads it every ``adjust_every`` completed jobs.
    """

    def __init__(self,
                 limit: int = 4,
                 min_limit: int = 1,
                 max_limit: int = 64,
                 adaptive: bool = True,
                 p99: Optional[Callable[[], Optional[float]]] = None,
                 target_p99_s: Optional[float] = None,
                 tolerance: float = 2.0,
                 floor_drift: float = 0.05,
                 decrease: float = 0.75,
                 adjust_every: int = 10):
        if not (1 <= min_limit <= limit <= max_limit):
            raise ValueError("need 1 <= min_limit <= limit <= max_limit")
        if not (0.0 < decrease < 1.0):
            raise ValueError("decrease must be in (0, 1)")
        self._limit = limit
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.adaptive = adaptive
        self._p99 = p99
        self.target_p99_s = target_p99_s
        self.tolerance = tolerance
        self.floor_drift = floor_drift
        self.decrease = decrease
        self.adjust_every = max(1, adjust_every)
        self._floor: Optional[float] = None
        self._since_adjust = 0
        self._inflight = 0
        self._saturated = False  # hit the cap since the last adjustment
        self._increases = 0
        self._decreases = 0
        self._lock = threading.Lock()
        self._can_run = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # gating
    # ------------------------------------------------------------------

    def acquire(self, timeout: float = 0.1) -> bool:
        """Take an in-flight slot; False if none freed within
        ``timeout`` (callers loop, re-checking shutdown in between)."""
        with self._can_run:
            if self._inflight >= self._limit:
                self._saturated = True
                if not self._can_run.wait(timeout):
                    return False
                if self._inflight >= self._limit:
                    return False
            self._inflight += 1
            return True

    def release(self, duration_s: Optional[float] = None) -> None:
        """Give the slot back; ``duration_s`` is the job's service
        time, which drives the periodic AIMD adjustment."""
        with self._can_run:
            self._inflight = max(0, self._inflight - 1)
            if duration_s is not None and self.adaptive:
                self._since_adjust += 1
                if self._since_adjust >= self.adjust_every:
                    self._since_adjust = 0
                    self._adjust()
            self._can_run.notify()

    # ------------------------------------------------------------------
    # AIMD
    # ------------------------------------------------------------------

    def _threshold(self, p99: float) -> float:
        if self.target_p99_s is not None:
            return self.target_p99_s
        if self._floor is None:
            self._floor = p99
        else:
            # track the floor but let it drift up slowly, so one
            # anomalously fast window cannot pin the target forever
            self._floor = min(p99, self._floor * (1.0 + self.floor_drift))
        # +5ms absolute headroom keeps microsecond-scale floors from
        # turning measurement noise into congestion signals
        return self._floor * self.tolerance + 0.005

    def _adjust(self) -> None:
        p99 = self._p99() if self._p99 is not None else None
        if p99 is None:
            return
        if p99 > self._threshold(p99):
            new = max(self.min_limit, int(self._limit * self.decrease))
            if new < self._limit:
                self._limit = new
                self._decreases += 1
                self._saturated = False
        elif self._saturated:
            # only probe upward when the cap is actually binding
            if self._limit < self.max_limit:
                self._limit += 1
                self._increases += 1
            self._saturated = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def limit(self) -> int:
        with self._lock:
            return self._limit

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "limit": self._limit,
                "inflight": self._inflight,
                "adaptive": self.adaptive,
                "increases": self._increases,
                "decreases": self._decreases,
            }
