"""Per-shard circuit breakers for the fleet router.

When a shard starts failing — worker crashes, timeouts, connection
resets — continuing to route to it wastes the caller's deadline and
piles restart load on a host that is already struggling. The breaker
gives each shard a three-state health latch:

- ``closed``: traffic flows; outcomes are recorded into a rolling
  window, and once the window holds at least ``min_volume`` samples
  with a failure rate at or above ``failure_threshold`` the breaker
  *opens*;
- ``open``: the router skips this shard entirely (the ring walk
  re-dispatches to the next replica) until ``cooldown_s`` elapses;
- ``half_open``: after cooldown, exactly one probe request is let
  through — success closes the breaker and normal routing resumes,
  failure re-opens it for another cooldown.

The breaker is deliberately stateless about *why* a request failed;
the router decides what counts as a shard fault (connection errors,
``worker_crashed``, ``deadline_exceeded``) versus a caller problem
(``parse_error`` is the request's fault, not the shard's).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Rolling-window failure-rate breaker with half-open probing."""

    def __init__(self,
                 failure_threshold: float = 0.5,
                 min_volume: int = 5,
                 window: int = 20,
                 cooldown_s: float = 2.0,
                 clock: Callable[[], float] = time.monotonic):
        if not (0.0 < failure_threshold <= 1.0):
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_volume < 1 or window < min_volume:
            raise ValueError("need 1 <= min_volume <= window")
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._window: deque = deque(maxlen=window)
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_out = False
        self._opens = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def allow(self) -> bool:
        """May a request be routed to this shard right now?

        In ``open`` state this flips to ``half_open`` once the
        cooldown has elapsed and admits a single probe; further calls
        return False until that probe reports back.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at < self.cooldown_s:
                    return False
                self._state = HALF_OPEN
                self._probe_out = False
            # half-open: one probe in flight at a time
            if self._probe_out:
                return False
            self._probe_out = True
            return True

    def routable(self) -> bool:
        """Non-mutating peek for routing tables: would a request be
        admitted right now? Unlike :meth:`allow` this never consumes
        the half-open probe slot, so a router can scan every shard's
        breaker while building its skip set and only :meth:`allow` the
        shard it actually picked."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                return True  # cooled down: a probe could go out
            return not self._probe_out

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._window.clear()
                self._probe_out = False
                return
            self._window.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
                return
            self._window.append(False)
            if self._state == CLOSED and len(self._window) >= self.min_volume:
                failures = sum(1 for ok in self._window if not ok)
                if failures / len(self._window) >= self.failure_threshold:
                    self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._opens += 1
        self._window.clear()
        self._probe_out = False

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def opens(self) -> int:
        with self._lock:
            return self._opens

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "opens": self._opens,
                "window": len(self._window),
                "failures": sum(1 for ok in self._window if not ok),
            }
