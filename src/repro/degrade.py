"""Structured degradation records for partial, fail-closed analyses.

The paper's guarantee is *fail-closed*: anything the analysis cannot
certify must be treated as unmonitored flow into the core.  This module
gives that principle a concrete carrier.  When the frontend, the IR
layer, or the annotation binder cannot process part of a corpus —
a translation unit that does not parse, a function whose SSA
construction fails, an annotation that does not validate — the failure
is captured as a :class:`DegradedUnit` instead of an exception
aborting the whole run.  Downstream consumers react soundly:

- the value-flow engine treats every call into a degraded function as
  an unmonitored non-core source (``degraded:<name>`` taint region),
  so the verdict can only get *stricter*;
- :class:`repro.core.results.AnalysisReport` refuses to report
  ``passed`` while any degraded unit exists and exposes a three-way
  ``verdict`` (``pass`` / ``degraded`` / ``fail``);
- reporting, batch stats, and the server metrics plane surface the
  per-unit provenance so an operator can see *what* was skipped and
  *why* rather than a silently smaller result.

Degradation is opt-in (``AnalysisConfig.degraded_mode`` /
``--keep-going``): the strict default keeps the seed behaviour of
raising a structured :class:`~repro.errors.SafeFlowError` on the first
unprocessable input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from .ir.source import SourceLocation

__all__ = [
    "DegradedUnit",
    "DEGRADED_REGION_PREFIX",
    "degraded_region",
    "degraded_function_names",
    "sort_degraded",
    "KIND_UNIT",
    "KIND_FUNCTION",
    "KIND_ANNOTATION",
    "KIND_CONSTRUCT",
    "KIND_RECOVERED",
]

#: Reserved taint-region prefix for flows that pass through degraded
#: code.  Real shared-memory regions come from ``shmvar`` annotations
#: and can never contain a colon, so the namespace cannot collide.
DEGRADED_REGION_PREFIX = "degraded:"

# The failure granularities the frontend can isolate.
KIND_UNIT = "unit"              # a whole translation unit (parse/cpp)
KIND_FUNCTION = "function"      # one function body (lowering/SSA/verify)
KIND_ANNOTATION = "annotation"  # one SafeFlow annotation block/item
KIND_CONSTRUCT = "construct"    # one top-level declaration
#: a unit the recovery ladder salvaged by rewriting its text
#: (:mod:`repro.frontend.recovery`): the unit *is* analyzed, but every
#: function defined in it stays fail-closed because the analyzed text
#: is not the text the author wrote
KIND_RECOVERED = "recovered"


def degraded_region(name: str) -> str:
    """The synthetic taint region for flows through degraded ``name``."""
    return DEGRADED_REGION_PREFIX + (name or "<unknown>")


@dataclass(frozen=True)
class DegradedUnit:
    """One isolated frontend/IR failure, kept instead of raised.

    ``kind`` is one of :data:`KIND_UNIT`, :data:`KIND_FUNCTION`,
    :data:`KIND_ANNOTATION`, :data:`KIND_CONSTRUCT`.  ``name`` is the
    failed artifact (file name, function name, or annotation text
    prefix); ``function`` names the enclosing function when one is
    known — the value-flow engine fails closed around exactly that
    set.  ``cause`` is the structured diagnostic message of the
    original error.
    """

    kind: str
    name: str
    cause: str
    location: Optional[SourceLocation] = None
    function: Optional[str] = None
    #: recovery-ladder tier that produced this record (kind
    #: :data:`KIND_RECOVERED` only): "gnu", "prelude", "cleanup", ...
    tier: Optional[str] = None
    #: audited provenance of what the tier rewrote/stripped, one human-
    #: readable entry per edit (kind :data:`KIND_RECOVERED` only)
    edits: Tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location is not None else ""
        base = f"{where}degraded {self.kind} {self.name!r}: {self.cause}"
        if self.tier is not None and self.edits:
            base += f" [tier {self.tier}: " + "; ".join(self.edits) + "]"
        elif self.tier is not None:
            base += f" [tier {self.tier}]"
        return base

    def sort_key(self):
        loc = self.location
        return (
            loc.filename if loc is not None else "",
            loc.line if loc is not None else 0,
            self.kind,
            self.name,
            self.cause,
        )

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "cause": self.cause,
        }
        if self.function is not None:
            payload["function"] = self.function
        if self.tier is not None:
            payload["tier"] = self.tier
        if self.edits:
            payload["edits"] = list(self.edits)
        if self.location is not None:
            payload["location"] = {
                "file": self.location.filename,
                "line": self.location.line,
            }
        return payload


def degraded_function_names(units: Iterable[DegradedUnit]) -> Set[str]:
    """The set of function names the engine must fail closed around."""
    return {u.function for u in units if u.function}


def sort_degraded(units: Iterable[DegradedUnit]) -> list:
    """Deterministic order for rendering and JSON output."""
    return sorted(units, key=DegradedUnit.sort_key)
