"""The long-lived SafeFlow analysis daemon (``safeflow serve``).

One :class:`SafeFlowServer` owns the four moving parts and wires them
together:

- a threaded stream server (TCP on ``host:port`` or a Unix socket)
  speaking the newline-delimited JSON-RPC of
  :mod:`repro.server.protocol` — one handler thread per connection,
  requests on a connection answered in order;
- the bounded :class:`~repro.server.queue.RequestQueue` (admission
  control: a full queue answers ``queue_full`` immediately instead of
  queueing unboundedly);
- the :class:`~repro.server.pool.WorkerPool` of analysis processes
  sharing the on-disk caches, which is what makes repeat requests
  warm;
- the :class:`~repro.server.metrics.ServerMetrics` plane behind the
  ``health`` and ``metrics`` RPCs.

RPC methods: ``analyze`` (inline ``source`` or ``files`` paths, with
optional per-request ``deadline``, ``job_id`` and config overrides),
``cancel`` (by ``job_id``, from any connection), ``health``,
``metrics``, ``ping``, and ``shutdown``.

Graceful shutdown (``shutdown`` RPC, SIGINT/SIGTERM via
:meth:`request_shutdown`, or :meth:`stop`): new ``analyze`` requests
are rejected with ``shutting_down``, the queue backlog and every
running job finish normally, every handler writes its pending
responses, and only then are connections and the listening socket
closed. No admitted request ever loses its response.
"""

from __future__ import annotations

import itertools
import os
import socket
import socketserver
import threading
import time
from typing import Any, Dict, Optional, Tuple, Union

from ..core.config import AnalysisConfig
from ..qos import (AdaptiveLimiter, BrownoutController, FairQueue,
                   RateLimitedError, TenantTable, WarmSet)
from . import protocol
from .metrics import ServerMetrics
from .pool import WorkerPool
from .queue import PendingJob, QueueClosedError, QueueFullError

#: extra seconds a handler waits past the job deadline before declaring
#: the pool wedged (the pool itself resolves deadlines; this is a
#: belt-and-braces bound so a handler can never block forever)
_DEADLINE_GRACE = 10.0

#: AnalysisConfig fields a request may override per-analysis
_CONFIG_OVERRIDES = {
    "summary_mode": bool,
    "check_restrictions": bool,
    "context_sensitive": bool,
    "track_control_dependence": bool,
    "lint_monitors": bool,
    "sparse_fixpoint": bool,
    "profile": bool,
    "unannotated_shm_is_core": bool,
    "include_dirs": (list, tuple),
    "defines": dict,
}

_OUTCOME_BY_CODE = {
    protocol.CANCELLED: "cancelled",
    protocol.DEADLINE_EXCEEDED: "deadline_exceeded",
    protocol.WORKER_CRASHED: "worker_crashed",
    protocol.RESOURCE_EXHAUSTED: "resource_exhausted",
}


class _RpcHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer each in order."""

    def setup(self):
        super().setup()
        try:  # line-framed RPC: never wait on Nagle for a sub-MTU line
            self.connection.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # unix sockets have no TCP level
        self.server.safeflow_server._track_connection(self.connection, True)

    def finish(self):
        self.server.safeflow_server._track_connection(self.connection, False)
        super().finish()

    def handle(self):
        server: SafeFlowServer = self.server.safeflow_server
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_MESSAGE_BYTES + 2)
            except (OSError, ValueError):
                return  # connection force-closed during shutdown
            if not line:
                return  # EOF: client went away
            if line.strip() == b"":
                continue
            response = server.handle_line(line)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except (OSError, ValueError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    block_on_close = False


if hasattr(socketserver, "ThreadingUnixStreamServer"):
    class _UnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True
        block_on_close = False
else:  # pragma: no cover - non-POSIX platforms
    _UnixServer = None


class SafeFlowServer:
    """The analysis service; see the module docstring."""

    def __init__(self, config: Optional[AnalysisConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_path: Optional[str] = None,
                 workers: Optional[int] = None,
                 queue_size: int = 64,
                 default_deadline: Optional[float] = None,
                 use_processes: bool = True,
                 guards=None,
                 max_crashes: int = 2,
                 tenants: Optional[TenantTable] = None,
                 max_inflight: Optional[Union[int, str]] = None,
                 brownout: Optional[BrownoutController] = None):
        self.config = config or AnalysisConfig()
        self.default_deadline = default_deadline
        self.unix_path = unix_path
        self.metrics = ServerMetrics()
        # the admission layer (PR 10): the fair queue is always the
        # queue (with only the default tenant it reproduces the old
        # FIFO exactly); brownout needs tenant priorities to act on,
        # so it arms only when a tenant table (or an explicit
        # controller) is supplied — a tenant-free daemon never sheds
        self.tenant_table = tenants or TenantTable()
        self.queue = FairQueue(queue_size, tenants=self.tenant_table)
        worker_count = max(1, workers or os.cpu_count() or 1)
        self.limiter = self._build_limiter(max_inflight, worker_count)
        self.brownout: Optional[BrownoutController] = None
        self.warm: Optional[WarmSet] = None
        if tenants is not None or brownout is not None:
            self.brownout = brownout or BrownoutController()
            self.warm = WarmSet()
        self.pool = WorkerPool(self.queue, self.config, workers=workers,
                               use_processes=use_processes,
                               guards=guards, max_crashes=max_crashes,
                               events=self.metrics.count_resilience,
                               limiter=self.limiter)
        self.metrics.register_gauge("queue_depth", self.queue.depth)
        self.metrics.register_gauge("in_flight", self.pool.running_count)
        # fleet-era alias of in_flight (the router's field name)
        self.metrics.register_gauge("inflight", self.pool.running_count)
        self.metrics.register_qos("queue", self._qos_queue_state)
        if self.limiter is not None:
            self.metrics.register_qos("concurrency", self.limiter.snapshot)
        if self.brownout is not None:
            self.metrics.register_qos("brownout", self._qos_brownout_state)

        self._lock = threading.Lock()
        self._draining = False
        self._stopping = False
        self._stopped = threading.Event()
        self._serve_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._active_rpcs = 0
        self._idle = threading.Condition(self._lock)
        self._job_seq = itertools.count(1)
        self._jobs: Dict[str, PendingJob] = {}

        if unix_path is not None:
            if _UnixServer is None:  # pragma: no cover
                raise OSError("unix sockets are not supported here")
            if os.path.exists(unix_path):
                os.unlink(unix_path)  # stale socket from a dead daemon
            self._tcp = _UnixServer(unix_path, _RpcHandler)
        else:
            self._tcp = _TCPServer((host, port), _RpcHandler)
        self._tcp.safeflow_server = self

        self._methods = {
            "analyze": self._rpc_analyze,
            "cancel": self._rpc_cancel,
            "health": self._rpc_health,
            "metrics": self._rpc_metrics,
            "ping": self._rpc_ping,
            "shutdown": self._rpc_shutdown,
        }

    # ------------------------------------------------------------------
    # QoS helpers
    # ------------------------------------------------------------------

    def _build_limiter(self, max_inflight, worker_count: int):
        """``--max-inflight``: None = uncapped (legacy), an int = fixed
        cap, ``"auto"`` = AIMD against the rolling p99."""
        if max_inflight is None:
            return None
        if isinstance(max_inflight, str):
            if max_inflight != "auto":
                raise ValueError(
                    f"max_inflight must be an int or 'auto', "
                    f"not {max_inflight!r}")
            return AdaptiveLimiter(
                limit=worker_count, min_limit=1,
                max_limit=max(8, worker_count * 4), adaptive=True,
                p99=lambda: self.metrics.rolling_latency
                                .quantiles().get("p99_s"))
        n = int(max_inflight)
        if n < 1:
            raise ValueError("max_inflight must be >= 1")
        return AdaptiveLimiter(limit=n, min_limit=1, max_limit=n,
                               adaptive=False)

    def _qos_queue_state(self) -> Dict[str, Any]:
        return {
            "depth_by_tenant": self.queue.depth_by_tenant(),
            "saturation": round(self.queue.saturation(), 4),
        }

    def _qos_brownout_state(self) -> Dict[str, Any]:
        state = self.brownout.snapshot()
        state["warm_keys"] = len(self.warm) if self.warm is not None else 0
        return state

    @staticmethod
    def _warm_key(params: Dict[str, Any]) -> str:
        # deferred import: repro.fleet imports repro.server at package
        # init, so a module-level import here would be circular
        from ..fleet.hashring import routing_key
        return routing_key(params)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        """Bound address: ``(host, port)`` or the Unix socket path."""
        if self.unix_path is not None:
            return self.unix_path
        host, port = self._tcp.server_address[:2]
        return (host, port)

    def serve_forever(self) -> None:
        """Run until shut down (blocks the calling thread)."""
        self.pool.start()
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        finally:
            # when a shutdown is in flight, let it finish tearing down
            # before returning control (KeyboardInterrupt exits here
            # without one; the CLI then calls stop() itself)
            with self._lock:
                stopping = self._stopping
            if stopping:
                self._stopped.wait(timeout=30.0)

    def start(self) -> "SafeFlowServer":
        """Serve on a background thread (tests and embedding)."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.1},
            name="safeflow-serve", daemon=True,
        )
        self._serve_thread.start()
        return self

    def request_shutdown(self, drain: bool = True) -> None:
        """Trigger :meth:`stop` from a background thread.

        Safe to call from a signal handler or an RPC handler — both
        run in threads that must not block on the shutdown itself.
        """
        threading.Thread(target=self.stop, kwargs={"drain": drain},
                         name="safeflow-shutdown", daemon=True).start()

    def stop(self, drain: bool = True) -> None:
        """Drain (optionally) and stop; idempotent and blocking."""
        with self._lock:
            if self._stopping:
                self._stopped.wait()
                return
            self._stopping = True
            self._draining = True
        # 1. finish the analysis backlog (or fail it when drain=False)
        self.pool.shutdown(drain=drain, timeout=None if drain else 10.0)
        # 2. let handlers write out every pending response
        with self._idle:
            deadline = time.monotonic() + 30.0
            while self._active_rpcs > 0 and time.monotonic() < deadline:
                self._idle.wait(timeout=0.2)
        # 3. stop accepting and tear the sockets down
        self._tcp.shutdown()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._tcp.server_close()
        if self.unix_path is not None:
            try:
                os.unlink(self.unix_path)
            except OSError:
                pass
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._stopped.set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        return self._stopped.wait(timeout)

    def __enter__(self) -> "SafeFlowServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # connection / rpc bookkeeping
    # ------------------------------------------------------------------

    def _track_connection(self, conn, active: bool) -> None:
        with self._lock:
            if active:
                self._connections.add(conn)
            else:
                self._connections.discard(conn)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch and answer one request line."""
        try:
            request = protocol.decode_request(line)
        except protocol.ProtocolError as exc:
            self.metrics.count_response(False, protocol.error_name(exc.code))
            return protocol.error_response(None, exc.code, exc.message)
        handler = self._methods.get(request.method)
        if handler is None:
            self.metrics.count_request(request.method)
            self.metrics.count_response(
                False, protocol.error_name(protocol.METHOD_NOT_FOUND))
            return protocol.error_response(
                request.id, protocol.METHOD_NOT_FOUND,
                f"unknown method {request.method!r}",
            )
        self.metrics.count_request(request.method)
        started = time.monotonic()
        with self._idle:
            self._active_rpcs += 1
        try:
            response = handler(request)
        except Exception as exc:  # a handler bug must not kill the daemon
            response = protocol.error_response(
                request.id, protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            with self._idle:
                self._active_rpcs -= 1
                self._idle.notify_all()
        elapsed = time.monotonic() - started
        error = response.get("error")
        self.metrics.count_response(
            error is None,
            error["name"] if error else None,
            seconds=elapsed,
        )
        return response

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------

    def _rpc_ping(self, request) -> Dict[str, Any]:
        return protocol.ok_response(request.id, {"pong": True})

    def _rpc_health(self, request) -> Dict[str, Any]:
        with self._lock:
            draining = self._draining
        degraded = self.metrics.degraded_counts()
        rolling = self.metrics.rolling_latency.quantiles()
        inflight = self.pool.running_count()
        return protocol.ok_response(request.id, {
            "status": "draining" if draining else "ok",
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": self.metrics.uptime_seconds(),
            "workers": self.pool.workers,
            "pool_mode": self.pool.mode,
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            # both spellings: "in_flight" predates the fleet router;
            # "inflight" matches the fleet's backpressure field names
            "in_flight": inflight,
            "inflight": inflight,
            # recent-window latency (seconds; None until first request)
            # — the router's backpressure signal
            "latency_p50_s": rolling["p50_s"],
            "latency_p99_s": rolling["p99_s"],
            "brownout_level": (self.brownout.level
                               if self.brownout is not None else 0),
            "inflight_limit": (self.limiter.limit
                               if self.limiter is not None else None),
            # compact QoS summary for the fleet router's health poll
            "qos": {
                "tenants": self.metrics.qos_tenants(),
                "brownout_level": (self.brownout.level
                                   if self.brownout is not None else 0),
            },
            "worker_restarts": self.pool.worker_restarts,
            "degraded_analyses": degraded["analyses"],
            "degraded_units": degraded["units"],
            "cache_dir": self.config.cache_dir,
        })

    def _rpc_metrics(self, request) -> Dict[str, Any]:
        return protocol.ok_response(request.id, self.metrics.snapshot())

    def _rpc_shutdown(self, request) -> Dict[str, Any]:
        drain = bool(request.params.get("drain", True))
        with self._lock:
            self._draining = True
        self.request_shutdown(drain=drain)
        return protocol.ok_response(request.id,
                                    {"shutting_down": True, "drain": drain})

    def _rpc_cancel(self, request) -> Dict[str, Any]:
        job_id = request.params.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            return protocol.error_response(
                request.id, protocol.INVALID_PARAMS,
                "cancel requires a job_id string",
            )
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return protocol.ok_response(
                request.id, {"job_id": job_id, "found": False,
                             "cancelled": False})
        cancelled = job.cancel()
        return protocol.ok_response(
            request.id, {"job_id": job_id, "found": True,
                         "cancelled": cancelled})

    # -- analyze -------------------------------------------------------

    def _rpc_analyze(self, request) -> Dict[str, Any]:
        try:
            spec, deadline_s, job_id, tenant = self._parse_analyze(
                request.params)
        except ValueError as exc:
            return protocol.error_response(
                request.id, protocol.INVALID_PARAMS, str(exc))
        tenant_name = tenant or self.tenant_table.default.name
        with self._lock:
            if self._draining:
                return protocol.error_response(
                    request.id, protocol.SHUTTING_DOWN,
                    "server is draining; not accepting new analyses",
                )
            if job_id in self._jobs:
                return protocol.error_response(
                    request.id, protocol.INVALID_PARAMS,
                    f"job_id {job_id!r} is already in flight",
                )
        warm_key = None
        if self.brownout is not None:
            level = self.brownout.update(self.queue.saturation())
            warm_key = self._warm_key(request.params)
            if level > 0:
                reason = self.brownout.decide(
                    self.tenant_table.lookup(tenant_name),
                    warm_key in self.warm)
                if reason is not None:
                    self.metrics.count_qos(tenant_name, "shed")
                    return protocol.error_response(
                        request.id, protocol.SHED,
                        f"brownout level {level}: shedding {reason} "
                        f"requests",
                        data={"job_id": job_id, "reason": reason,
                              "brownout_level": level,
                              "retry_after_s": self.brownout.retry_after_s},
                    )
        deadline = None
        if deadline_s is not None:
            deadline = time.monotonic() + deadline_s
        job = PendingJob(job_id, spec, deadline=deadline, tenant=tenant_name)
        job._qos_warm_key = warm_key
        with self._lock:
            self._jobs[job_id] = job
        try:
            try:
                self.queue.put_nowait(job)
                self.metrics.count_qos(tenant_name, "accepted")
            except RateLimitedError as exc:
                self.metrics.count_qos(tenant_name, "rate_limited")
                return protocol.error_response(
                    request.id, protocol.RATE_LIMITED, str(exc),
                    data={"job_id": job_id, "tenant": tenant_name,
                          "retry_after_s": round(exc.retry_after_s, 4)},
                )
            except QueueFullError as exc:
                self.metrics.count_analysis("queue_rejections")
                self.metrics.count_qos(tenant_name, "queue_full")
                return protocol.error_response(
                    request.id, protocol.QUEUE_FULL, str(exc),
                    data={"job_id": job_id},
                )
            except QueueClosedError:
                return protocol.error_response(
                    request.id, protocol.SHUTTING_DOWN,
                    "server is draining; not accepting new analyses",
                    data={"job_id": job_id},
                )
            wait_timeout = None
            if deadline_s is not None:
                wait_timeout = deadline_s + _DEADLINE_GRACE
            if not job.wait(timeout=wait_timeout):
                job.cancel()
                return protocol.error_response(
                    request.id, protocol.INTERNAL_ERROR,
                    "worker pool failed to resolve the request in time",
                    data={"job_id": job_id},
                )
            return self._finish_analyze(request, job)
        finally:
            with self._lock:
                self._jobs.pop(job_id, None)

    def _finish_analyze(self, request, job: PendingJob) -> Dict[str, Any]:
        if job.result is not None:
            stats = (job.result.get("report") or {}).get("stats") or {}
            self.metrics.observe_analysis(stats)
            self.metrics.count_qos(job.tenant or "default", "completed")
            if self.warm is not None:
                key = getattr(job, "_qos_warm_key", None)
                if key:
                    self.warm.add(key)
            result = dict(job.result)
            result.pop("ok", None)
            result["job_id"] = job.id
            return protocol.ok_response(request.id, result)
        code, message = job.error
        self.metrics.count_analysis(_OUTCOME_BY_CODE.get(code, "failed"))
        data = {"job_id": job.id}
        if job.error_data:
            data.update(job.error_data)
        return protocol.error_response(request.id, code, message, data=data)

    def _parse_analyze(self, params: Dict[str, Any]):
        source = params.get("source")
        files = params.get("files")
        if (source is None) == (files is None):
            raise ValueError(
                "analyze takes exactly one of source= or files=")
        if source is not None and not isinstance(source, str):
            raise ValueError("source must be a string of C code")
        if files is not None:
            if (not isinstance(files, list) or not files
                    or not all(isinstance(f, str) for f in files)):
                raise ValueError("files must be a non-empty list of paths")
        name = params.get("name", "program")
        if not isinstance(name, str):
            raise ValueError("name must be a string")
        filename = params.get("filename", "<source>")
        if not isinstance(filename, str):
            raise ValueError("filename must be a string")
        overrides: Dict[str, Any] = {}
        for key, value in (params.get("config") or {}).items():
            expected = _CONFIG_OVERRIDES.get(key)
            if expected is None:
                raise ValueError(f"unknown config override {key!r}")
            if not isinstance(value, expected):
                raise ValueError(f"config override {key!r} has wrong type")
            if key == "include_dirs":
                value = tuple(str(v) for v in value)
            elif key == "defines":
                value = {str(k): str(v) for k, v in value.items()}
            overrides[key] = value
        deadline_s = params.get("deadline", None)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ValueError("deadline must be positive seconds")
        if self.default_deadline is not None:
            deadline_s = (self.default_deadline if deadline_s is None
                          else min(deadline_s, self.default_deadline))
        job_id = params.get("job_id")
        if job_id is None:
            job_id = f"job-{next(self._job_seq)}"
        elif not isinstance(job_id, str) or not job_id:
            raise ValueError("job_id must be a non-empty string")
        tenant = params.get("tenant")
        if tenant is not None and (not isinstance(tenant, str) or not tenant):
            raise ValueError("tenant must be a non-empty string")
        spec: Dict[str, Any] = {
            "name": name,
            "verbose": bool(params.get("verbose", False)),
        }
        if source is not None:
            spec["source"] = source
            spec["filename"] = filename
        else:
            spec["files"] = list(files)
        if overrides:
            spec["config_overrides"] = overrides
        return spec, deadline_s, job_id, tenant
