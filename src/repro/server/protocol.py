"""Wire protocol of the SafeFlow analysis service.

Newline-delimited JSON-RPC: every message — request and response — is
one JSON object serialized without embedded newlines and terminated by
``\\n``. Requests carry ``{"id", "method", "params"}``; responses echo
the request ``id`` and carry exactly one of ``result`` / ``error``.
Responses on one connection come back in request order, so a client
may pipeline requests and pair responses positionally.

The framing is deliberately primitive: it survives being spoken by
``nc``/``socat`` during an incident, needs no length prefixes, and a
torn connection can never leave a half-message ambiguity — a line
without a trailing newline is simply not a message yet.

Error codes follow the JSON-RPC 2.0 reserved range for transport
errors and use the implementation-defined ``-320xx`` range for
service-level conditions (queue admission, deadlines, cancellation,
drain). :data:`ERROR_NAMES` maps codes to the stable snake_case names
the metrics plane counts by.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

#: protocol revision, echoed by ``health``; bump on breaking changes
PROTOCOL_VERSION = 1

#: hard cap on one serialized message (inline sources included)
MAX_MESSAGE_BYTES = 16 * 1024 * 1024

# -- JSON-RPC reserved codes -------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- service-level codes -----------------------------------------------
ANALYSIS_FAILED = -32000    #: the analysis itself raised (parse error, ...)
QUEUE_FULL = -32001         #: bounded queue rejected the request
DEADLINE_EXCEEDED = -32002  #: per-request deadline expired
CANCELLED = -32003          #: request cancelled by a ``cancel`` call
SHUTTING_DOWN = -32004      #: daemon is draining; no new work accepted
WORKER_CRASHED = -32005     #: request quarantined after repeated worker deaths
RESOURCE_EXHAUSTED = -32006 #: analysis hit a CPU/RSS/deadline resource guard
RATE_LIMITED = -32007       #: tenant over its request rate (see data.retry_after_s)
SHED = -32008               #: brownout shed the request before admission

ERROR_NAMES: Dict[int, str] = {
    PARSE_ERROR: "parse_error",
    INVALID_REQUEST: "invalid_request",
    METHOD_NOT_FOUND: "method_not_found",
    INVALID_PARAMS: "invalid_params",
    INTERNAL_ERROR: "internal_error",
    ANALYSIS_FAILED: "analysis_failed",
    QUEUE_FULL: "queue_full",
    DEADLINE_EXCEEDED: "deadline_exceeded",
    CANCELLED: "cancelled",
    SHUTTING_DOWN: "shutting_down",
    WORKER_CRASHED: "worker_crashed",
    RESOURCE_EXHAUSTED: "resource_exhausted",
    RATE_LIMITED: "rate_limited",
    SHED: "shed",
}

#: codes a client may retry without risking doubled work: the request
#: provably did not produce a (kept) result — it was turned away at
#: admission — and the degraded state is transient (the queue drains).
#: ``worker_crashed`` is deliberately NOT here: the server only
#: returns it once the spec has been *quarantined* (it already killed
#: ``max_crashes`` workers), so resubmitting would just kill more
#: workers and disrupt every in-flight neighbour. ``resource_exhausted``
#: is likewise excluded — the same input will exhaust the same budget
#: again. ``rate_limited`` is retryable only with a server-provided
#: ``retry_after_s`` hint (the client checks the error data before
#: retrying — see ``SafeFlowClient``); ``shed`` is NOT retryable: the
#: server is in brownout and immediate resubmission is exactly the
#: load it is shedding.
RETRYABLE_CODES = frozenset({QUEUE_FULL, RATE_LIMITED})


def error_name(code: int) -> str:
    return ERROR_NAMES.get(code, f"error_{code}")


class ProtocolError(Exception):
    """A message that cannot be decoded into a valid request."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class Request:
    """One decoded client request."""

    method: str
    params: Dict[str, Any] = field(default_factory=dict)
    id: Optional[Union[int, str]] = None


def encode(payload: Dict[str, Any]) -> bytes:
    """Serialize one message: compact JSON + ``\\n``.

    ``json.dumps`` never emits raw newlines, so the line framing is
    safe for arbitrary payload content (inline C sources included).
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_request(line: Union[bytes, str]) -> Request:
    """Parse one request line; :class:`ProtocolError` on bad input."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(PARSE_ERROR, f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    method = payload.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(INVALID_REQUEST, "missing request method")
    params = payload.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ProtocolError(INVALID_REQUEST, "params must be an object")
    req_id = payload.get("id")
    if req_id is not None and not isinstance(req_id, (int, str)):
        raise ProtocolError(INVALID_REQUEST, "id must be an int or string")
    return Request(method=method, params=params, id=req_id)


def request_payload(method: str, params: Optional[Dict[str, Any]] = None,
                    req_id: Optional[Union[int, str]] = None) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"id": req_id, "method": method}
    if params:
        payload["params"] = params
    return payload


def ok_response(req_id, result: Any) -> Dict[str, Any]:
    return {"id": req_id, "result": result}


def error_response(req_id, code: int, message: str,
                   data: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    error: Dict[str, Any] = {
        "code": code, "name": error_name(code), "message": message,
    }
    if data:
        error["data"] = data
    return {"id": req_id, "error": error}
