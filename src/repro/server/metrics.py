"""Observability plane of the analysis service.

One :class:`ServerMetrics` instance per daemon aggregates, under a
single lock:

- request/response counters per method and per error name;
- analysis outcomes (completed / failed / cancelled / deadline
  exceeded / queue rejections / worker crashes / resource
  exhaustion);
- resilience events from the supervised worker pool (pool restarts,
  resubmitted jobs, quarantined jobs);
- cache effectiveness, folded from the ``AnalysisStats`` cache
  counters of every completed analysis — this is how a warm request
  becomes visible from the outside (``frontend_hits`` > 0);
- compiled-kernel totals (``kernel`` block), folded from each
  analysis's ``kernel_*`` counters: opcode dispatches, compiled vs
  fallback bodies, interner occupancy, compile/execute microseconds;
- latency histograms: whole-request wall time plus one histogram per
  analysis phase (``frontend``, ``shm``, ``restrictions``, ``lint``,
  ``valueflow``, ``total``), folded from ``phase_timings``;
- gauges (queue depth, in-flight count) read through registered
  callables at snapshot time, so they are always current and never
  drift from the queue/pool's own bookkeeping.

``snapshot()`` returns a plain JSON-ready dict: it is the body of the
``metrics`` RPC, the ``safeflow serve --metrics-json`` dump, and what
``make serve-smoke`` scrapes. Histograms use Prometheus-style
cumulative ``le`` buckets so the schema maps 1:1 onto a future
``/metrics`` exposition without re-aggregation.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from ..perf.latency import RollingLatency

#: upper bounds (seconds) of the latency buckets; +Inf is implicit
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (not thread-safe on its own;
    :class:`ServerMetrics` serializes access under its lock)."""

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def snapshot(self) -> Dict[str, object]:
        cumulative: List[List[object]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + self.counts[-1]])
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets_le": cumulative,
        }


class ServerMetrics:
    """Thread-safe aggregate state of one daemon."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_mono = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._responses = {"ok": 0, "error": 0}
        self._errors: Dict[str, int] = {}
        self._analyses = {
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "deadline_exceeded": 0,
            "queue_rejections": 0,
            "worker_crashed": 0,
            "resource_exhausted": 0,
        }
        self._cache = {
            "frontend_hits": 0,
            "frontend_misses": 0,
            "summary_hits": 0,
            "summary_misses": 0,
            "integrity_evictions": 0,
        }
        self._resilience = {
            "worker_restarts": 0,
            "jobs_resubmitted": 0,
            "jobs_quarantined": 0,
        }
        #: incremental-analysis totals (repro.incremental), folded from
        #: the segment-store fields of every completed analysis
        self._incremental = {
            "functions_reanalyzed": 0,
            "dirty_cone_functions": 0,
            "segment_evictions": 0,
            "segment_fallbacks": 0,
        }
        #: compiled value-flow kernel totals, folded from the
        #: ``kernel_*`` entries of every completed analysis's
        #: ``kernel_counters`` (opcode dispatches, compiled vs
        #: fallback bodies, compile/execute microseconds, ...)
        self._kernel: Dict[str, int] = {}
        self._degraded = {
            "analyses": 0,  # completed analyses with a degraded verdict
            "units": 0,     # DegradedUnits across them (fail-closed)
        }
        #: frontend recovery-ladder totals (--recover), folded from the
        #: per-tier attempt/success counts of every completed analysis
        self._recovery = {
            "recovered_units": 0,
            "tier_attempts": {},   # tier name → attempts
            "tier_successes": {},  # tier name → successes
        }
        #: admission-control outcomes by tenant (PR 10): tenant name →
        #: {accepted, completed, rate_limited, shed, queue_full}
        self._qos_tenants: Dict[str, Dict[str, int]] = {}
        #: extra QoS state (brownout level, concurrency limit, breaker
        #: states) read live at snapshot time, like gauges
        self._qos_readers: Dict[str, Callable[[], object]] = {}
        self._request_latency = LatencyHistogram()
        #: recent-window request latency: a router polling this
        #: daemon's health plane needs a *live* p50/p99, not the
        #: process-lifetime histogram (thread-safe on its own, so it is
        #: also read without taking the metrics lock)
        self.rolling_latency = RollingLatency()
        self._phase_latency: Dict[str, LatencyHistogram] = {}
        self._gauges: Dict[str, Callable[[], int]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def register_gauge(self, name: str, read: Callable[[], int]) -> None:
        with self._lock:
            self._gauges[name] = read

    def count_request(self, method: str) -> None:
        with self._lock:
            self._requests[method] = self._requests.get(method, 0) + 1

    def count_response(self, ok: bool, error_name: Optional[str] = None,
                       seconds: Optional[float] = None) -> None:
        with self._lock:
            self._responses["ok" if ok else "error"] += 1
            if error_name:
                self._errors[error_name] = self._errors.get(error_name, 0) + 1
            if seconds is not None:
                self._request_latency.observe(seconds)
        if seconds is not None:
            self.rolling_latency.observe(seconds)

    def count_analysis(self, outcome: str) -> None:
        """``outcome`` is one of the ``_analyses`` keys."""
        with self._lock:
            self._analyses[outcome] = self._analyses.get(outcome, 0) + 1

    def count_qos(self, tenant: str, outcome: str) -> None:
        """One admission decision for ``tenant``: ``accepted`` /
        ``completed`` / ``rate_limited`` / ``shed`` / ``queue_full``."""
        with self._lock:
            counts = self._qos_tenants.setdefault(tenant, {})
            counts[outcome] = counts.get(outcome, 0) + 1

    def register_qos(self, name: str, read: Callable[[], object]) -> None:
        """Attach a live QoS state reader (brownout level, concurrency
        limiter snapshot, ...) to the ``qos`` metrics block."""
        with self._lock:
            self._qos_readers[name] = read

    def count_resilience(self, event: str) -> None:
        """``event`` is one of the ``_resilience`` keys (pool events:
        ``worker_restarts`` / ``jobs_resubmitted`` / ``jobs_quarantined``)."""
        with self._lock:
            self._resilience[event] = self._resilience.get(event, 0) + 1

    def observe_analysis(self, stats: Dict[str, object]) -> None:
        """Fold one completed analysis's stats block
        (:meth:`repro.core.results.AnalysisStats.to_json`) in."""
        timings = stats.get("phase_timings") or {}
        with self._lock:
            self._analyses["completed"] += 1
            for phase, seconds in timings.items():
                hist = self._phase_latency.get(phase)
                if hist is None:
                    hist = self._phase_latency[phase] = LatencyHistogram()
                hist.observe(float(seconds))
            self._cache["frontend_hits"] += int(
                stats.get("frontend_cache_hits", 0) or 0)
            self._cache["frontend_misses"] += int(
                stats.get("frontend_cache_misses", 0) or 0)
            self._cache["summary_hits"] += int(
                stats.get("summary_cache_hits", 0) or 0)
            self._cache["summary_misses"] += int(
                stats.get("summary_cache_misses", 0) or 0)
            self._cache["integrity_evictions"] += int(
                stats.get("cache_integrity_evictions", 0) or 0)
            units = int(stats.get("degraded_units", 0) or 0)
            if units:
                self._degraded["analyses"] += 1
                self._degraded["units"] += units
            self._recovery["recovered_units"] += int(
                stats.get("recovered_units", 0) or 0)
            for key, bucket in (("recovery_attempts", "tier_attempts"),
                                ("recovery_successes", "tier_successes")):
                for tier, n in (stats.get(key) or {}).items():
                    counts = self._recovery[bucket]
                    counts[tier] = counts.get(tier, 0) + int(n or 0)
            self._incremental["functions_reanalyzed"] += int(
                stats.get("functions_reanalyzed", 0) or 0)
            self._incremental["dirty_cone_functions"] += int(
                stats.get("dirty_cone_size", 0) or 0)
            self._incremental["segment_evictions"] += int(
                stats.get("segment_evictions", 0) or 0)
            self._incremental["segment_fallbacks"] += int(
                stats.get("segment_fallbacks", 0) or 0)
            counters = stats.get("kernel_counters") or {}
            for key, value in counters.items():
                if key.startswith("kernel_"):
                    self._kernel[key] = (
                        self._kernel.get(key, 0) + int(value or 0)
                    )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_mono

    def qos_tenants(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant admission counters (for the ``health`` RPC — the
        fleet router folds these across shards)."""
        with self._lock:
            return {name: dict(counts)
                    for name, counts in self._qos_tenants.items()}

    def degraded_counts(self) -> Dict[str, int]:
        """Degraded-verdict totals (for the ``health`` RPC)."""
        with self._lock:
            return dict(self._degraded)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            gauges = {}
            for name, read in self._gauges.items():
                try:
                    gauges[name] = int(read())
                except Exception:  # a dying pool must not break metrics
                    gauges[name] = -1
            qos: Dict[str, object] = {
                "tenants": {
                    name: dict(sorted(counts.items()))
                    for name, counts in sorted(self._qos_tenants.items())
                },
            }
            for name, read in self._qos_readers.items():
                try:
                    qos[name] = read()
                except Exception:  # QoS state must not break metrics
                    qos[name] = None
            return {
                "started_at": self.started_at,
                "uptime_seconds": self.uptime_seconds(),
                "requests_total": dict(self._requests),
                "responses_total": dict(self._responses),
                "errors_total": dict(self._errors),
                "analyses": dict(self._analyses),
                "gauges": gauges,
                "cache": dict(self._cache),
                "kernel": dict(sorted(self._kernel.items())),
                "resilience": dict(self._resilience),
                "qos": qos,
                "incremental": dict(self._incremental),
                "degraded": dict(self._degraded),
                "recovery": {
                    "recovered_units": self._recovery["recovered_units"],
                    "tier_attempts": dict(sorted(
                        self._recovery["tier_attempts"].items())),
                    "tier_successes": dict(sorted(
                        self._recovery["tier_successes"].items())),
                },
                "latency": {
                    "request": self._request_latency.snapshot(),
                    "rolling": self.rolling_latency.quantiles(),
                    "phases": {
                        phase: hist.snapshot()
                        for phase, hist in sorted(self._phase_latency.items())
                    },
                },
            }
