"""Process worker pool of the analysis service.

Reuses the batch machinery's platform resolution
(:func:`repro.perf.batch.resolve_mp_context`): analyses run in a
long-lived supervised process executor (fork where available, spawn
otherwise), falling back to in-process execution when no process pool
can be created at all. Worker processes are the isolation boundary —
a crashing analysis (or a pycparser recursion blow-up) kills a worker,
not the daemon — and they share the on-disk ``IRCache`` /
``SummaryStore`` through ``config.cache_dir``, which is what makes the
daemon *warm*: the second request for an unchanged translation unit
skips the front end entirely, and in summary mode an edit to one
function re-analyzes only that function and its transitive callers.

Crash isolation (:mod:`repro.resilience`): a worker death breaks the
underlying ``ProcessPoolExecutor`` and fails every outstanding future;
the :class:`~repro.resilience.supervisor.SupervisedExecutor` rebuilds
it (exactly once per break, however many runner threads observe it)
and each runner transparently *resubmits* its own request, so
unaffected requests survive a neighbour's crash. A request whose spec
has crashed ``max_crashes`` workers is quarantined with a structured
``worker_crashed`` error instead of being retried forever, and a
*resubmission* of an already-quarantined spec fails fast without ever
reaching a worker — the daemon keeps serving. Per-worker :class:`ResourceGuards` travel inside
the job spec and are applied by the worker entry point, so a runaway
request degrades into ``resource_exhausted`` rather than an OOM kill.

``workers`` runner *threads* pull :class:`PendingJob` items off the
:class:`RequestQueue` and drive each through the executor, polling in
short slices so cancellation and deadlines resolve within
``poll_interval`` even though a busy worker process cannot be
interrupted: the runner abandons the future (the response goes out
immediately; the orphaned process run finishes in the background and
its result is discarded). The runner count equals the process count,
so an abandoned future at worst costs one temporarily busy worker,
never a wedged daemon.

``shutdown(drain=True)`` closes the queue, lets runners finish the
backlog, then joins them — the pool half of the graceful-drain
guarantee.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
import dataclasses
import hashlib
import json
import os
import threading
import time
from typing import Any, Callable, Dict, Optional

from ..resilience import CrashLedger, ResourceGuards, SupervisedExecutor, worker_harness
from .protocol import (
    ANALYSIS_FAILED,
    CANCELLED,
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
    RESOURCE_EXHAUSTED,
    WORKER_CRASHED,
)
from .queue import RequestQueue


def _execute_spec(spec: Dict[str, Any], config) -> Dict[str, Any]:
    """Run one analysis request; module-level for pickling.

    Returns a plain JSON-ready payload: the rendered report (the same
    bytes ``safeflow analyze`` would print) plus the ``--json`` form,
    or a one-line structured error. Never raises — exceptions inside a
    worker become ``{"ok": False, ...}`` payloads. ``spec["_guards"]``
    (a :meth:`ResourceGuards.to_tuple` value placed there by the pool)
    arms the per-worker resource guards.
    """
    from ..core.driver import SafeFlow
    from ..errors import ResourceExhaustedError, SafeFlowError

    guards = None
    guards_tuple = spec.get("_guards")
    if guards_tuple is not None:
        guards = ResourceGuards.from_tuple(guards_tuple)
    try:
        with worker_harness(spec.get("name", "program"), guards):
            overrides = spec.get("config_overrides") or {}
            if overrides:
                config = dataclasses.replace(config, **overrides)
            report = SafeFlow(config).analyze_request(
                source=spec.get("source"),
                filename=spec.get("filename", "<source>"),
                files=spec.get("files"),
                name=spec.get("name", "program"),
            )
    except ResourceExhaustedError as exc:
        if exc.kind == "deadline":
            return {"ok": False, "code": "deadline_exceeded",
                    "error": "analysis exceeded its deadline"}
        return {"ok": False, "code": "resource_exhausted",
                "error": f"resource exhausted ({exc.kind}): {exc}"}
    except MemoryError:
        return {"ok": False, "code": "resource_exhausted",
                "error": "resource exhausted (rss): analysis ran "
                         "out of memory"}
    except SafeFlowError as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:
        return {"ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}"}
    return {
        "ok": True,
        "name": report.name,
        "passed": report.passed,
        "exit_code": 0 if report.passed else 1,
        "counts": report.counts(),
        "render": report.render(verbose=bool(spec.get("verbose"))),
        "report": report.to_json(),
    }


def _spec_key(spec: Dict[str, Any]) -> str:
    """Stable crash-attribution key: same input ⇒ same suspect."""
    try:
        text = json.dumps(spec, sort_keys=True, default=repr)
    except (TypeError, ValueError):
        text = repr(sorted(spec.items(), key=lambda kv: kv[0]))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class WorkerPool:
    """Runner threads + (optional) supervised process executor."""

    def __init__(self, queue: RequestQueue, config,
                 workers: Optional[int] = None,
                 use_processes: bool = True,
                 poll_interval: float = 0.05,
                 guards: Optional[ResourceGuards] = None,
                 max_crashes: int = 2,
                 events: Optional[Callable[[str], None]] = None,
                 limiter=None):
        self.queue = queue
        self.config = config
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.poll_interval = poll_interval
        self.guards = guards
        #: optional :class:`repro.qos.AdaptiveLimiter`: runners take an
        #: in-flight slot *before* pulling from the queue, so backlog
        #: waits where fairness and brownout can still act on it
        self.limiter = limiter
        self.ledger = CrashLedger(max_crashes)
        self._events = events
        self._lock = threading.Lock()
        self._running = 0
        self._threads: list = []
        self._supervisor: Optional[SupervisedExecutor] = None
        self._started = False
        if use_processes:
            supervisor = SupervisedExecutor(max_workers=self.workers)
            if supervisor.available:
                self._supervisor = supervisor
            else:
                supervisor.shutdown()  # in-process fallback

    @property
    def mode(self) -> str:
        return "processes" if self._supervisor is not None else "in-process"

    @property
    def worker_restarts(self) -> int:
        return self._supervisor.restarts if self._supervisor else 0

    def running_count(self) -> int:
        with self._lock:
            return self._running

    def _event(self, name: str) -> None:
        if self._events is not None:
            try:
                self._events(name)
            except Exception:  # metrics must never hurt the data plane
                pass

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run_loop, name=f"safeflow-runner-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run_loop(self) -> None:
        while True:
            if self.limiter is not None:
                if not self.limiter.acquire(timeout=0.1):
                    if self.queue.finished():
                        return
                    continue
            job = None
            started = None
            try:
                job = self.queue.get(timeout=0.1)
                if job is None:
                    if self.queue.finished():
                        return
                    continue
                if not job.start():
                    job = None  # cancelled between dequeue and start
                    continue
                started = time.monotonic()
                with self._lock:
                    self._running += 1
                try:
                    self._execute(job)
                finally:
                    with self._lock:
                        self._running -= 1
            finally:
                if self.limiter is not None:
                    duration = (time.monotonic() - started
                                if started is not None else None)
                    self.limiter.release(duration)

    # ------------------------------------------------------------------

    def _guarded_spec(self, job) -> Dict[str, Any]:
        """The job spec plus its resource-guard budget.

        The worker-side deadline is the tighter of the configured
        guard and the request's remaining protocol deadline, so a
        worker abandoned by its runner still stops burning CPU soon
        after the response went out.
        """
        guards = self.guards or ResourceGuards()
        remaining = job.remaining()
        if remaining is not None:
            guards = guards.with_deadline(max(0.001, remaining))
        if guards == ResourceGuards():
            return job.spec
        spec = dict(job.spec)
        spec["_guards"] = guards.to_tuple()
        return spec

    def _execute(self, job) -> None:
        remaining = job.remaining()
        if remaining is not None and remaining <= 0:
            self._resolve_deadline(job)
            return
        if self._supervisor is None:
            # in-process fallback: no mid-run cancellation point, so
            # deadline/cancel races are settled after the run instead
            payload = _execute_spec(self._guarded_spec(job), self.config)
            remaining = job.remaining()
            if remaining is not None and remaining <= 0:
                self._resolve_deadline(job)
            else:
                self._resolve(job, payload)
            return
        key = _spec_key(job.spec)
        if self.ledger.is_quarantined(key):
            # known worker-killer (same spec resubmitted, e.g. by a
            # retrying client): fail fast without feeding it another
            # worker — dispatching it would break the pool again and
            # disrupt every in-flight neighbour
            self._fail_quarantined(job, self.ledger.count(key))
            return
        while True:  # resubmission loop: one pass per worker crash
            if not self._submit_once(job, key):
                return

    def _submit_once(self, job, key: str) -> bool:
        """One executor pass; True means "crashed, resubmit me"."""
        try:
            generation, future = self._supervisor.submit(
                _execute_spec, self._guarded_spec(job), self.config
            )
        except RuntimeError as exc:  # no pool can be (re)built
            job.fail(INTERNAL_ERROR, f"worker pool unavailable: {exc}")
            return False
        while True:
            slice_timeout = self.poll_interval
            remaining = job.remaining()
            if remaining is not None:
                if remaining <= 0:
                    future.cancel()
                    self._resolve_deadline(job)
                    return False
                slice_timeout = min(slice_timeout, remaining)
            if job.cancelled:
                future.cancel()
                job.fail(CANCELLED, "request cancelled")
                return False
            try:
                payload = future.result(timeout=slice_timeout)
            except concurrent.futures.TimeoutError:
                continue
            except BrokenProcessPool:
                return self._on_crash(job, key, generation)
            except concurrent.futures.CancelledError:
                # pool break cancelled the queued future before start
                return self._on_crash(job, key, generation, suspect=False)
            except Exception as exc:  # future raised something odd
                job.fail(INTERNAL_ERROR,
                         f"{type(exc).__name__}: {exc}")
                return False
            self._resolve(job, payload)
            return False

    def _on_crash(self, job, key: str, generation: int,
                  suspect: bool = True) -> bool:
        """Handle a broken pool under ``job``; True to resubmit."""
        if self._supervisor.notify_broken(generation):
            self._event("worker_restarts")
        if suspect:
            crashes = self.ledger.record(key)
            if crashes >= self.ledger.max_crashes:
                self._fail_quarantined(job, crashes)
                return False
        if not self._supervisor.available:
            job.fail(INTERNAL_ERROR,
                     "analysis worker process died and the pool could "
                     "not be rebuilt")
            return False
        self._event("jobs_resubmitted")
        return True

    def _fail_quarantined(self, job, crashes: int) -> None:
        self._event("jobs_quarantined")
        job.fail(
            WORKER_CRASHED,
            f"analysis worker crashed {crashes} times on this "
            f"request; quarantined",
            data={"crashes": crashes},
        )

    def _resolve(self, job, payload: Dict[str, Any]) -> None:
        if not payload.get("ok"):
            code = {
                "deadline_exceeded": DEADLINE_EXCEEDED,
                "resource_exhausted": RESOURCE_EXHAUSTED,
            }.get(payload.get("code"), ANALYSIS_FAILED)
            job.fail(code, str(payload.get("error", "analysis failed")))
            return
        job.finish(payload)

    def _resolve_deadline(self, job) -> None:
        budget = (job.deadline - job.created) if job.deadline else 0.0
        job.fail(DEADLINE_EXCEEDED,
                 f"deadline of {budget:.3f}s exceeded")

    # ------------------------------------------------------------------

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Close the queue and stop runners.

        ``drain=True`` finishes every queued job first (no admitted
        request loses its response); ``drain=False`` fails queued jobs
        with ``shutting_down`` and only waits for the currently
        running ones.
        """
        self.queue.close(drain=drain)
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        if self._supervisor is not None:
            self._supervisor.shutdown(wait=drain)
