"""Process worker pool of the analysis service.

Reuses the batch machinery's platform resolution
(:func:`repro.perf.batch.resolve_mp_context`): analyses run in a
long-lived ``ProcessPoolExecutor`` (fork where available, spawn
otherwise), falling back to in-process execution when no process pool
can be created at all. Worker processes are the isolation boundary —
a crashing analysis (or a pycparser recursion blow-up) kills a worker,
not the daemon — and they share the on-disk ``IRCache`` /
``SummaryStore`` through ``config.cache_dir``, which is what makes the
daemon *warm*: the second request for an unchanged translation unit
skips the front end entirely, and in summary mode an edit to one
function re-analyzes only that function and its transitive callers.

``workers`` runner *threads* pull :class:`PendingJob` items off the
:class:`RequestQueue` and drive each through the executor, polling in
short slices so cancellation and deadlines resolve within
``poll_interval`` even though a busy worker process cannot be
interrupted: the runner abandons the future (the response goes out
immediately; the orphaned process run finishes in the background and
its result is discarded). The runner count equals the process count,
so an abandoned future at worst costs one temporarily busy worker,
never a wedged daemon.

``shutdown(drain=True)`` closes the queue, lets runners finish the
backlog, then joins them — the pool half of the graceful-drain
guarantee.
"""

from __future__ import annotations

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool
import dataclasses
import os
import threading
import time
from typing import Any, Dict, Optional

from ..perf.batch import resolve_mp_context
from .protocol import (
    ANALYSIS_FAILED,
    CANCELLED,
    DEADLINE_EXCEEDED,
    INTERNAL_ERROR,
)
from .queue import RequestQueue


def _execute_spec(spec: Dict[str, Any], config) -> Dict[str, Any]:
    """Run one analysis request; module-level for pickling.

    Returns a plain JSON-ready payload: the rendered report (the same
    bytes ``safeflow analyze`` would print) plus the ``--json`` form,
    or a one-line structured error. Never raises — exceptions inside a
    worker become ``{"ok": False, ...}`` payloads.
    """
    from ..core.driver import SafeFlow
    from ..errors import SafeFlowError

    try:
        overrides = spec.get("config_overrides") or {}
        if overrides:
            config = dataclasses.replace(config, **overrides)
        report = SafeFlow(config).analyze_request(
            source=spec.get("source"),
            filename=spec.get("filename", "<source>"),
            files=spec.get("files"),
            name=spec.get("name", "program"),
        )
    except SafeFlowError as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    except Exception as exc:
        return {"ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}"}
    return {
        "ok": True,
        "name": report.name,
        "passed": report.passed,
        "exit_code": 0 if report.passed else 1,
        "counts": report.counts(),
        "render": report.render(verbose=bool(spec.get("verbose"))),
        "report": report.to_json(),
    }


class WorkerPool:
    """Runner threads + (optional) process executor driving the queue."""

    def __init__(self, queue: RequestQueue, config,
                 workers: Optional[int] = None,
                 use_processes: bool = True,
                 poll_interval: float = 0.05):
        self.queue = queue
        self.config = config
        self.workers = max(1, workers or os.cpu_count() or 1)
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._running = 0
        self._threads: list = []
        self._executor = None
        self._started = False
        if use_processes:
            context = resolve_mp_context()
            if context is not None:
                try:
                    self._executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=context,
                    )
                except (OSError, PermissionError, ValueError):
                    self._executor = None  # in-process fallback

    @property
    def mode(self) -> str:
        return "processes" if self._executor is not None else "in-process"

    def running_count(self) -> int:
        with self._lock:
            return self._running

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run_loop, name=f"safeflow-runner-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=0.1)
            if job is None:
                if self.queue.finished():
                    return
                continue
            if not job.start():
                continue  # cancelled between dequeue and start
            with self._lock:
                self._running += 1
            try:
                self._execute(job)
            finally:
                with self._lock:
                    self._running -= 1

    # ------------------------------------------------------------------

    def _execute(self, job) -> None:
        remaining = job.remaining()
        if remaining is not None and remaining <= 0:
            self._resolve_deadline(job)
            return
        if self._executor is None:
            # in-process fallback: no mid-run cancellation point, so
            # deadline/cancel races are settled after the run instead
            payload = _execute_spec(job.spec, self.config)
            remaining = job.remaining()
            if remaining is not None and remaining <= 0:
                self._resolve_deadline(job)
            else:
                self._resolve(job, payload)
            return
        try:
            future = self._executor.submit(_execute_spec, job.spec,
                                           self.config)
        except RuntimeError as exc:  # executor already shut down
            job.fail(INTERNAL_ERROR, f"worker pool unavailable: {exc}")
            return
        while True:
            slice_timeout = self.poll_interval
            remaining = job.remaining()
            if remaining is not None:
                if remaining <= 0:
                    future.cancel()
                    self._resolve_deadline(job)
                    return
                slice_timeout = min(slice_timeout, remaining)
            if job.cancelled:
                future.cancel()
                job.fail(CANCELLED, "request cancelled")
                return
            try:
                payload = future.result(timeout=slice_timeout)
            except concurrent.futures.TimeoutError:
                continue
            except BrokenProcessPool:
                job.fail(INTERNAL_ERROR, "analysis worker process died")
                return
            except Exception as exc:  # future raised something odd
                job.fail(INTERNAL_ERROR,
                         f"{type(exc).__name__}: {exc}")
                return
            self._resolve(job, payload)
            return

    def _resolve(self, job, payload: Dict[str, Any]) -> None:
        if not payload.get("ok"):
            job.fail(ANALYSIS_FAILED,
                     str(payload.get("error", "analysis failed")))
            return
        job.finish(payload)

    def _resolve_deadline(self, job) -> None:
        budget = (job.deadline - job.created) if job.deadline else 0.0
        job.fail(DEADLINE_EXCEEDED,
                 f"deadline of {budget:.3f}s exceeded")

    # ------------------------------------------------------------------

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Close the queue and stop runners.

        ``drain=True`` finishes every queued job first (no admitted
        request loses its response); ``drain=False`` fails queued jobs
        with ``shutting_down`` and only waits for the currently
        running ones.
        """
        self.queue.close(drain=drain)
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        if self._executor is not None:
            self._executor.shutdown(wait=drain)
