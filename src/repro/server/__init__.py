"""The SafeFlow analysis service: a long-lived serving layer.

The paper positions SafeFlow as a check on every build of an evolving
control system; this package turns the one-shot analyzer into a
daemon so that warm state — the content-hashed ``IRCache`` and the
closure-fingerprinted ``SummaryStore`` of :mod:`repro.perf` — is
amortized across requests instead of across manual CLI invocations.

- :mod:`repro.server.protocol` — newline-delimited JSON-RPC framing
  and the service error-code space;
- :mod:`repro.server.queue` — bounded admission queue and the
  per-request state machine (deadlines, cancellation);
- :mod:`repro.server.pool` — process worker pool (fork → spawn →
  in-process fallback, shared with :mod:`repro.perf.batch`);
- :mod:`repro.server.daemon` — :class:`SafeFlowServer`, the
  ``safeflow serve`` daemon with graceful drain;
- :mod:`repro.server.metrics` — uptime, queue/in-flight gauges,
  per-phase latency histograms, cache hit/miss counters;
- :mod:`repro.server.client` — :class:`SafeFlowClient`, the blocking
  Python client with connect/request timeouts and bounded retry.
"""

from .client import (
    ConnectionFailed,
    RequestTimeout,
    SafeFlowClient,
    ServerError,
)
from .daemon import SafeFlowServer
from .metrics import LatencyHistogram, ServerMetrics
from .pool import WorkerPool
from .queue import PendingJob, QueueClosedError, QueueFullError, RequestQueue

__all__ = [
    "ConnectionFailed",
    "LatencyHistogram",
    "PendingJob",
    "QueueClosedError",
    "QueueFullError",
    "RequestQueue",
    "RequestTimeout",
    "SafeFlowClient",
    "SafeFlowServer",
    "ServerError",
    "ServerMetrics",
    "WorkerPool",
]
