"""Bounded admission queue and per-request state machine.

A :class:`PendingJob` is the server-side handle of one ``analyze``
request: it moves ``QUEUED → RUNNING → DONE`` exactly once, carries
the absolute deadline, and resolves to either a result payload or an
(error code, message) pair. The connection handler blocks on
:meth:`PendingJob.wait`; a runner thread of the worker pool drives the
transition; ``cancel`` may resolve it early from any thread. All
transitions are guarded so exactly one resolution wins — a job whose
deadline fires while a cancel races it still produces exactly one
response.

:class:`RequestQueue` is the bounded buffer between the two:
``put_nowait`` rejects above capacity (the daemon answers
``queue_full`` instead of building an unbounded backlog — load
shedding at admission is what keeps tail latency bounded), ``get``
hands jobs to runners in FIFO order and silently discards jobs that
were cancelled while still queued. ``close(drain=True)`` stops
admission but lets runners empty the backlog: this is the graceful-
shutdown half that guarantees every admitted request gets a response.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Optional, Tuple

from .protocol import CANCELLED, SHUTTING_DOWN

QUEUED = "queued"
RUNNING = "running"
DONE = "done"


class QueueFullError(Exception):
    """Raised by :meth:`RequestQueue.put_nowait` above capacity."""


class QueueClosedError(Exception):
    """Raised when admitting into a closed (draining) queue."""


class PendingJob:
    """One in-flight analysis request."""

    def __init__(self, job_id: str, spec: Dict[str, Any],
                 deadline: Optional[float] = None,
                 tenant: Optional[str] = None):
        #: externally visible id (``cancel`` targets this)
        self.id = job_id
        #: picklable description handed to the worker function
        self.spec = spec
        #: absolute ``time.monotonic()`` deadline, or None
        self.deadline = deadline
        #: accounting identity; None = the default tenant
        self.tenant = tenant
        self.created = time.monotonic()
        #: set by the QoS fair queue at admission: fired (at most once,
        #: popped under the job lock) when the job is cancelled while
        #: still queued, refunding the tenant's rate token. A job that
        #: reaches RUNNING keeps its charge — start() and the refunding
        #: cancel() are mutually exclusive on the QUEUED state.
        self._qos_refund = None
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self.state = QUEUED
        self.cancelled = False
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[Tuple[int, str]] = None
        #: optional structured detail attached to a failure response
        self.error_data: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline; None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def start(self) -> bool:
        """QUEUED → RUNNING; False when already resolved/cancelled."""
        with self._lock:
            if self.state != QUEUED or self.cancelled:
                return False
            self.state = RUNNING
            return True

    def finish(self, result: Dict[str, Any]) -> bool:
        with self._lock:
            if self.state == DONE:
                return False
            if self.cancelled:
                # the cancel already owns the resolution
                self.state = DONE
                self.error = (CANCELLED, "request cancelled")
                self._finished.set()
                return False
            self.state = DONE
            self.result = result
            self._finished.set()
            return True

    def fail(self, code: int, message: str,
             data: Optional[Dict[str, Any]] = None) -> bool:
        with self._lock:
            if self.state == DONE:
                return False
            self.state = DONE
            self.error = (code, message)
            self.error_data = data
            self._finished.set()
            return True

    def cancel(self) -> bool:
        """Request cancellation; True when this call decided the fate.

        A still-QUEUED job resolves immediately (the queue will skip
        it); a RUNNING job is flagged and the runner resolves it at its
        next poll point without waiting for the worker process.
        """
        refund = None
        with self._lock:
            if self.state == DONE:
                return False
            self.cancelled = True
            if self.state == QUEUED:
                self.state = DONE
                self.error = (CANCELLED, "request cancelled while queued")
                # pop the refund hook under the job lock so exactly one
                # cancel wins the token back (see FairQueue._arm_refund)
                refund, self._qos_refund = self._qos_refund, None
                self._finished.set()
        if refund is not None:
            refund()
        return True

    @property
    def done(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)


class RequestQueue:
    """Bounded FIFO of :class:`PendingJob` between handlers and runners."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._items: deque = deque()
        self._closed = False
        self._drain = True

    # ------------------------------------------------------------------

    def put_nowait(self, job: PendingJob) -> None:
        with self._not_empty:
            if self._closed:
                raise QueueClosedError("queue is draining")
            if len(self._items) >= self.capacity:
                raise QueueFullError(
                    f"queue full ({self.capacity} requests waiting)"
                )
            self._items.append(job)
            self._not_empty.notify()

    def get(self, timeout: float = 0.1) -> Optional[PendingJob]:
        """Next live job, or None on timeout / closed-and-empty.

        Jobs cancelled while queued are dropped here, never handed to
        a runner. Use :meth:`finished` to tell the two None cases
        apart.
        """
        with self._not_empty:
            while True:
                while self._items:
                    job = self._items.popleft()
                    if job.done or job.cancelled:
                        continue
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return None

    def close(self, drain: bool = True) -> None:
        """Stop admission. ``drain=False`` also resolves every queued
        job with ``shutting_down`` instead of letting runners finish
        the backlog."""
        with self._not_empty:
            self._closed = True
            self._drain = drain
            if not drain:
                while self._items:
                    job = self._items.popleft()
                    job.fail(SHUTTING_DOWN, "server shutting down")
            self._not_empty.notify_all()

    # ------------------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return sum(1 for j in self._items if not j.done)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def finished(self) -> bool:
        """Closed and emptied — runners may exit."""
        with self._lock:
            return self._closed and not self._items
