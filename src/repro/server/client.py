"""Python client of the SafeFlow analysis service.

:class:`SafeFlowClient` speaks the newline-delimited JSON-RPC of
:mod:`repro.server.protocol` over TCP or a Unix socket, with separate
connect and request timeouts and bounded retry-with-backoff on
*transient* failures. Two classes of failure are retried:

- transient connection errors — refused/reset connects and send
  failures on a half-dead persistent connection;
- *retryable* server responses (:data:`repro.server.protocol
  .RETRYABLE_CODES`: ``queue_full``) — the server answered, so the
  request provably produced no kept result, and the degraded state is
  transient (the queue drains).

A failure while *waiting for a response* is never retried: the server
may already be analyzing, and blind re-submission would double the
work (the framing makes re-sending a partially written request safe —
a line without its newline is not a message — so send-side retries
are). Non-retryable error responses (``analysis_failed``,
``deadline_exceeded``, ``resource_exhausted``, ``cancelled``,
``worker_crashed``) raise immediately: the same input would fail the
same way again — ``worker_crashed`` in particular means the input has
been *quarantined* after repeatedly killing workers, so resubmitting
it would only kill more. Backoff is
exponential with jitter so a fleet of clients bounced by one crash
does not reconverge in lockstep.

Usage::

    with SafeFlowClient(port=4650) as client:
        result = client.analyze(files=["core_controller.c"])
        print(result["render"])          # == `safeflow analyze` output
        print(client.metrics()["cache"])  # warm-path visibility

Server-side failures surface as :class:`ServerError` (a
:class:`~repro.errors.SafeFlowError`) carrying the structured error
``code``/``name``; timeouts as :class:`RequestTimeout`.
"""

from __future__ import annotations

import itertools
import json
import logging
import random
import socket
import time
from typing import Any, Dict, List, Optional, Union

from ..errors import SafeFlowError
from . import protocol


class ServerError(SafeFlowError):
    """A structured error response from the daemon."""

    def __init__(self, code: int, message: str,
                 data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.code = code
        self.name = protocol.error_name(code)
        self.data = data or {}

    @property
    def retryable(self) -> bool:
        """True when resubmitting the same request is safe and likely
        to succeed (see :data:`repro.server.protocol.RETRYABLE_CODES`)."""
        return self.code in protocol.RETRYABLE_CODES

    def __str__(self) -> str:
        return f"[{self.name}] {self.message}"


class ConnectionFailed(SafeFlowError):
    """Could not (re)connect within the configured retry budget."""


class RequestTimeout(SafeFlowError):
    """No response within the request timeout; connection is dropped."""


class SafeFlowClient:
    """Blocking client with a persistent, lazily (re)connected socket.

    The socket persists across :meth:`call`/:meth:`analyze`
    invocations — N requests on a healthy connection cost exactly one
    TCP handshake. :attr:`stats` makes that observable (and is how the
    fleet bench proves the router does not force reconnect churn):
    ``requests``/``responses`` counters plus ``connects`` (successful
    socket establishments), ``reconnects`` (connects after the first —
    each one means the previous connection died), and ``retries``
    (send- or queue-full-driven resubmissions).
    """

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 300.0,
                 retries: int = 3, backoff: float = 0.05):
        if (port is None) == (unix_path is None):
            raise ValueError("give exactly one of port= or unix_path=")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._ids = itertools.count(1)
        self._rng = random.Random()
        self.stats: Dict[str, int] = {
            "requests": 0, "responses": 0,
            "connects": 0, "reconnects": 0, "retries": 0,
        }

    def _backoff_sleep(self, attempt: int) -> None:
        """Exponential backoff with jitter in [0.5x, 1.5x)."""
        time.sleep(self.backoff * (2 ** attempt)
                   * (0.5 + self._rng.random()))

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def _connect_once(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        if self.stats["connects"] > 0:
            self.stats["reconnects"] += 1
        self.stats["connects"] += 1

    def connect(self) -> None:
        """(Re)connect, retrying transient failures with backoff."""
        if self._sock is not None:
            return
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._connect_once()
                return
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
                self.close()
                if attempt < self.retries:
                    self._backoff_sleep(attempt)
        raise ConnectionFailed(
            f"could not connect to the analysis service after "
            f"{self.retries + 1} attempts: {last}"
        )

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SafeFlowClient":
        self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the RPC core
    # ------------------------------------------------------------------

    def call(self, method: str, params: Optional[Dict[str, Any]] = None,
             timeout: Optional[float] = None) -> Any:
        """One round-trip; returns the ``result`` payload.

        Send failures (stale persistent connection, server restarted)
        are retried on a fresh connection up to ``retries`` times, as
        are *retryable* error responses (``queue_full`` — the server
        answered, so nothing is in flight); any other failure after
        the request has been fully sent is not.
        """
        req_id = next(self._ids)
        line = protocol.encode(
            protocol.request_payload(method, params, req_id))
        last: Optional[Exception] = None
        self.stats["requests"] += 1
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self.stats["retries"] += 1
            self.connect()
            try:
                self._sock.sendall(line)
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
                self.close()
                if attempt < self.retries:
                    self._backoff_sleep(attempt)
                continue
            try:
                result = self._read_response(req_id, timeout)
            except ServerError as exc:
                if not exc.retryable or attempt >= self.retries:
                    raise
                last = exc
                self._backoff_sleep(attempt)
                continue
            self.stats["responses"] += 1
            return result
        if isinstance(last, ServerError):
            raise last
        raise ConnectionFailed(
            f"could not send {method!r} after {self.retries + 1} "
            f"attempts: {last}"
        )

    def _read_response(self, req_id, timeout: Optional[float]) -> Any:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            raw = self._rfile.readline(protocol.MAX_MESSAGE_BYTES + 2)
        except socket.timeout:
            self.close()  # the response would desynchronize the stream
            raise RequestTimeout(
                f"no response within {timeout or self.request_timeout}s")
        except (ConnectionError, OSError) as exc:
            self.close()
            raise ConnectionFailed(f"connection lost mid-request: {exc}")
        finally:
            if timeout is not None and self._sock is not None:
                self._sock.settimeout(self.request_timeout)
        if not raw:
            self.close()
            raise ConnectionFailed("server closed the connection")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            self.close()
            raise ConnectionFailed(f"undecodable response: {exc}")
        if payload.get("id") not in (req_id, None):
            self.close()
            raise ConnectionFailed(
                f"response id {payload.get('id')!r} does not match "
                f"request id {req_id!r}"
            )
        error = payload.get("error")
        if error is not None:
            raise ServerError(error.get("code", protocol.INTERNAL_ERROR),
                              error.get("message", "unknown server error"),
                              error.get("data"))
        return payload.get("result")

    # ------------------------------------------------------------------
    # convenience methods (one per RPC)
    # ------------------------------------------------------------------

    def analyze(self, source: Optional[str] = None,
                files: Optional[List[str]] = None,
                name: str = "program", filename: str = "<source>",
                verbose: bool = False,
                deadline: Optional[float] = None,
                job_id: Optional[str] = None,
                config: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit one analysis; returns the result payload
        (``render``, ``report``, ``counts``, ``passed``, ...)."""
        params: Dict[str, Any] = {"name": name, "verbose": verbose}
        if source is not None:
            params["source"] = source
            params["filename"] = filename
        if files is not None:
            params["files"] = [str(f) for f in files]
        if deadline is not None:
            params["deadline"] = deadline
        if job_id is not None:
            params["job_id"] = job_id
        if config:
            params["config"] = config
        result = self.call("analyze", params, timeout=timeout)
        report = (result or {}).get("report") or {}
        if report.get("verdict") == "degraded":
            units = report.get("degraded") or []
            logging.getLogger(__name__).warning(
                "analysis of %r returned a DEGRADED verdict: %d unit(s) "
                "could not be analyzed and were treated fail-closed",
                name, len(units))
        return result

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.call("cancel", {"job_id": job_id})

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def metrics(self) -> Dict[str, Any]:
        return self.call("metrics")

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.call("shutdown", {"drain": drain})
