"""Python client of the SafeFlow analysis service.

:class:`SafeFlowClient` speaks the newline-delimited JSON-RPC of
:mod:`repro.server.protocol` over TCP or a Unix socket, with separate
connect and request timeouts and bounded retry-with-backoff on
*transient* failures. Two classes of failure are retried:

- transient connection errors — refused/reset connects and send
  failures on a half-dead persistent connection;
- *retryable* server responses (:data:`repro.server.protocol
  .RETRYABLE_CODES`: ``queue_full``) — the server answered, so the
  request provably produced no kept result, and the degraded state is
  transient (the queue drains).

A failure while *waiting for a response* is never retried: the server
may already be analyzing, and blind re-submission would double the
work (the framing makes re-sending a partially written request safe —
a line without its newline is not a message — so send-side retries
are). Non-retryable error responses (``analysis_failed``,
``deadline_exceeded``, ``resource_exhausted``, ``cancelled``,
``worker_crashed``, ``shed``) raise immediately: the same input would
fail the same way again — ``worker_crashed`` in particular means the
input has been *quarantined* after repeatedly killing workers, so
resubmitting it would only kill more, and ``shed`` means the server
is in brownout and resubmission is exactly the load being shed.

Every retry is double-gated (PR 10): by the per-call ``retries``
count *and* by a :class:`~repro.qos.retrybudget.RetryBudget` that
caps fleet-wide retry amplification at ~10% of first-try traffic —
under a total outage the budget empties and further retries are
denied (``stats["retries_denied"]``), so a thousand clients cannot
turn one incident into a retry storm. Pacing honors the server when
it speaks: a ``rate_limited`` rejection carries ``retry_after_s``
(the exact token-bucket deficit) and the client sleeps precisely
that; only hint-less retries (``queue_full``, dead connections) use
exponential backoff with jitter so bounced clients do not reconverge
in lockstep.

Usage::

    with SafeFlowClient(port=4650) as client:
        result = client.analyze(files=["core_controller.c"])
        print(result["render"])          # == `safeflow analyze` output
        print(client.metrics()["cache"])  # warm-path visibility

Server-side failures surface as :class:`ServerError` (a
:class:`~repro.errors.SafeFlowError`) carrying the structured error
``code``/``name``; timeouts as :class:`RequestTimeout`.
"""

from __future__ import annotations

import itertools
import json
import logging
import random
import socket
import time
from typing import Any, Dict, List, Optional, Union

from ..errors import SafeFlowError
from ..qos.retrybudget import RetryBudget
from . import protocol


class ServerError(SafeFlowError):
    """A structured error response from the daemon."""

    def __init__(self, code: int, message: str,
                 data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.code = code
        self.name = protocol.error_name(code)
        self.data = data or {}

    @property
    def retry_after_s(self) -> Optional[float]:
        """Server-provided backoff hint, when present."""
        value = self.data.get("retry_after_s")
        return float(value) if value is not None else None

    @property
    def retryable(self) -> bool:
        """True when resubmitting the same request is safe and likely
        to succeed (see :data:`repro.server.protocol.RETRYABLE_CODES`).
        ``rate_limited`` is only retryable when the server attached a
        ``retry_after_s`` hint — without one the client cannot know
        how long the quota needs, so blind resubmission would just be
        more over-rate traffic."""
        if self.code not in protocol.RETRYABLE_CODES:
            return False
        if self.code == protocol.RATE_LIMITED:
            return self.retry_after_s is not None
        return True

    def __str__(self) -> str:
        return f"[{self.name}] {self.message}"


class ConnectionFailed(SafeFlowError):
    """Could not (re)connect within the configured retry budget."""


class RequestTimeout(SafeFlowError):
    """No response within the request timeout; connection is dropped."""


class SafeFlowClient:
    """Blocking client with a persistent, lazily (re)connected socket.

    The socket persists across :meth:`call`/:meth:`analyze`
    invocations — N requests on a healthy connection cost exactly one
    TCP handshake. :attr:`stats` makes that observable (and is how the
    fleet bench proves the router does not force reconnect churn):
    ``requests``/``responses`` counters plus ``connects`` (successful
    socket establishments), ``reconnects`` (connects after the first —
    each one means the previous connection died), and ``retries``
    (send- or queue-full-driven resubmissions).
    """

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None,
                 unix_path: Optional[str] = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 300.0,
                 retries: int = 3, backoff: float = 0.05,
                 retry_budget: Optional[RetryBudget] = None,
                 tenant: Optional[str] = None):
        if (port is None) == (unix_path is None):
            raise ValueError("give exactly one of port= or unix_path=")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        #: retry *budget* on top of the per-call retry *count*: each
        #: first-try request earns a fraction of a retry credit and
        #: each retry spends one, so a fleet of clients can never
        #: amplify an outage by more than the budget ratio. Pass a
        #: shared instance to pool the budget across clients.
        self.retry_budget = retry_budget or RetryBudget()
        #: default tenant tag attached to every ``analyze`` call
        self.tenant = tenant
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._ids = itertools.count(1)
        self._rng = random.Random()
        self.stats: Dict[str, int] = {
            "requests": 0, "responses": 0,
            "connects": 0, "reconnects": 0, "retries": 0,
            "retries_denied": 0,
        }

    def _backoff_sleep(self, attempt: int) -> None:
        """Exponential backoff with jitter in [0.5x, 1.5x)."""
        time.sleep(self.backoff * (2 ** attempt)
                   * (0.5 + self._rng.random()))

    def _retry_pause(self, attempt: int,
                     retry_after_s: Optional[float]) -> None:
        """Pace one retry: sleep exactly what the server asked for
        when it said (``retry_after_s`` on ``rate_limited``), jittered
        exponential backoff when it did not (``queue_full``)."""
        if retry_after_s is not None and retry_after_s > 0:
            time.sleep(min(retry_after_s, self.request_timeout))
        else:
            self._backoff_sleep(attempt)

    def _spend_retry(self) -> bool:
        """Gate one retry on the budget; a denial is terminal for the
        call and counted in ``stats['retries_denied']``."""
        if self.retry_budget.try_spend():
            return True
        self.stats["retries_denied"] += 1
        return False

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def _connect_once(self) -> None:
        if self.unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.connect_timeout)
            sock.connect(self.unix_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self.request_timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        if self.stats["connects"] > 0:
            self.stats["reconnects"] += 1
        self.stats["connects"] += 1

    def connect(self) -> None:
        """(Re)connect, retrying transient failures with backoff."""
        if self._sock is not None:
            return
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._connect_once()
                return
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
                self.close()
                if attempt < self.retries:
                    self._backoff_sleep(attempt)
        raise ConnectionFailed(
            f"could not connect to the analysis service after "
            f"{self.retries + 1} attempts: {last}"
        )

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "SafeFlowClient":
        self.connect()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the RPC core
    # ------------------------------------------------------------------

    def call(self, method: str, params: Optional[Dict[str, Any]] = None,
             timeout: Optional[float] = None) -> Any:
        """One round-trip; returns the ``result`` payload.

        Send failures (stale persistent connection, server restarted)
        are retried on a fresh connection up to ``retries`` times, as
        are *retryable* error responses (``queue_full`` — the server
        answered, so nothing is in flight); any other failure after
        the request has been fully sent is not.
        """
        req_id = next(self._ids)
        line = protocol.encode(
            protocol.request_payload(method, params, req_id))
        last: Optional[Exception] = None
        self.stats["requests"] += 1
        self.retry_budget.record_request()
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self.stats["retries"] += 1
            self.connect()
            try:
                self._sock.sendall(line)
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
                self.close()
                if attempt < self.retries and self._spend_retry():
                    self._backoff_sleep(attempt)
                    continue
                break
            try:
                result = self._read_response(req_id, timeout)
            except ServerError as exc:
                if (not exc.retryable or attempt >= self.retries
                        or not self._spend_retry()):
                    raise
                last = exc
                self._retry_pause(attempt, exc.retry_after_s)
                continue
            self.stats["responses"] += 1
            return result
        if isinstance(last, ServerError):
            raise last
        raise ConnectionFailed(
            f"could not send {method!r} after {self.retries + 1} "
            f"attempts: {last}"
        )

    def _read_response(self, req_id, timeout: Optional[float]) -> Any:
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            raw = self._rfile.readline(protocol.MAX_MESSAGE_BYTES + 2)
        except socket.timeout:
            self.close()  # the response would desynchronize the stream
            raise RequestTimeout(
                f"no response within {timeout or self.request_timeout}s")
        except (ConnectionError, OSError) as exc:
            self.close()
            raise ConnectionFailed(f"connection lost mid-request: {exc}")
        finally:
            if timeout is not None and self._sock is not None:
                self._sock.settimeout(self.request_timeout)
        if not raw:
            self.close()
            raise ConnectionFailed("server closed the connection")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            self.close()
            raise ConnectionFailed(f"undecodable response: {exc}")
        if payload.get("id") not in (req_id, None):
            self.close()
            raise ConnectionFailed(
                f"response id {payload.get('id')!r} does not match "
                f"request id {req_id!r}"
            )
        error = payload.get("error")
        if error is not None:
            raise ServerError(error.get("code", protocol.INTERNAL_ERROR),
                              error.get("message", "unknown server error"),
                              error.get("data"))
        return payload.get("result")

    # ------------------------------------------------------------------
    # convenience methods (one per RPC)
    # ------------------------------------------------------------------

    def analyze(self, source: Optional[str] = None,
                files: Optional[List[str]] = None,
                name: str = "program", filename: str = "<source>",
                verbose: bool = False,
                deadline: Optional[float] = None,
                job_id: Optional[str] = None,
                config: Optional[Dict[str, Any]] = None,
                timeout: Optional[float] = None,
                tenant: Optional[str] = None) -> Dict[str, Any]:
        """Submit one analysis; returns the result payload
        (``render``, ``report``, ``counts``, ``passed``, ...).
        ``tenant`` (or the client-wide default) tags the request for
        the server's per-tenant fairness, quota, and shed policies."""
        params: Dict[str, Any] = {"name": name, "verbose": verbose}
        tenant = tenant if tenant is not None else self.tenant
        if tenant is not None:
            params["tenant"] = tenant
        if source is not None:
            params["source"] = source
            params["filename"] = filename
        if files is not None:
            params["files"] = [str(f) for f in files]
        if deadline is not None:
            params["deadline"] = deadline
        if job_id is not None:
            params["job_id"] = job_id
        if config:
            params["config"] = config
        result = self.call("analyze", params, timeout=timeout)
        report = (result or {}).get("report") or {}
        if report.get("verdict") == "degraded":
            units = report.get("degraded") or []
            logging.getLogger(__name__).warning(
                "analysis of %r returned a DEGRADED verdict: %d unit(s) "
                "could not be analyzed and were treated fail-closed",
                name, len(units))
        return result

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.call("cancel", {"job_id": job_id})

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def metrics(self) -> Dict[str, Any]:
        return self.call("metrics")

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self.call("shutdown", {"drain": drain})
