"""The IR's C-like type model.

Types are immutable value objects: two structurally equal types compare
and hash equal, so they can be used freely as dict keys. Struct types
are nominal (compared by tag name) to match C semantics and to make the
P3 "incompatible cast" rule (§3.2 of the paper) well defined.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class CType:
    """Base class of all IR types."""

    def sizeof(self) -> int:
        """Size of the type in bytes (ILP32 model, matching the paper era)."""
        raise NotImplementedError

    def alignof(self) -> int:
        """Natural alignment in bytes (primitives align to their size)."""
        size = self.sizeof()
        return max(1, min(size, 8)) if size else 1

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_scalar(self) -> bool:
        """True for types that fit in a register (promotable by SSA)."""
        return isinstance(self, (IntType, FloatType, PointerType))

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (StructType, ArrayType))


class VoidType(CType):
    def sizeof(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(CType):
    """Integral type; ``char``/``short``/``int``/``long`` and unsigned."""

    def __init__(self, name: str, size: int, signed: bool = True):
        self.name = name
        self.size = size
        self.signed = signed

    def sizeof(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, IntType)
            and other.size == self.size
            and other.signed == self.signed
        )

    def __hash__(self) -> int:
        return hash(("int", self.size, self.signed))


class FloatType(CType):
    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size

    def sizeof(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, FloatType) and other.size == self.size

    def __hash__(self) -> int:
        return hash(("float", self.size))


class PointerType(CType):
    def __init__(self, pointee: CType):
        self.pointee = pointee

    def sizeof(self) -> int:
        return 4

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"

    def __eq__(self, other) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(CType):
    """Fixed-size array. ``count`` may be ``None`` for incomplete arrays."""

    def __init__(self, element: CType, count: Optional[int]):
        self.element = element
        self.count = count

    def sizeof(self) -> int:
        if self.count is None:
            return 0
        return self.element.sizeof() * self.count

    def alignof(self) -> int:
        return self.element.alignof()

    def __repr__(self) -> str:
        n = "" if self.count is None else str(self.count)
        return f"{self.element!r}[{n}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class StructField:
    __slots__ = ("name", "type", "offset")

    def __init__(self, name: str, type_: CType, offset: int):
        self.name = name
        self.type = type_
        self.offset = offset

    def __repr__(self) -> str:
        return f"{self.name}:{self.type!r}@{self.offset}"


class StructType(CType):
    """Nominal struct/union type.

    Structs start *incomplete* (``fields is None``) so self-referential
    types (linked structures) can be declared, and are completed once
    the definition is seen via :meth:`set_fields`.
    """

    def __init__(self, tag: str, is_union: bool = False):
        self.tag = tag
        self.is_union = is_union
        self.fields: Optional[Tuple[StructField, ...]] = None
        self._size = 0

    def set_fields(self, fields: Sequence[Tuple[str, CType]]) -> None:
        """Lay out fields with natural alignment (C struct layout)."""
        laid_out = []
        offset = 0
        size = 0
        align = 1
        for fname, ftype in fields:
            falign = ftype.alignof()
            align = max(align, falign)
            if self.is_union:
                laid_out.append(StructField(fname, ftype, 0))
                size = max(size, ftype.sizeof())
            else:
                if offset % falign:
                    offset += falign - offset % falign
                laid_out.append(StructField(fname, ftype, offset))
                offset += ftype.sizeof()
                size = offset
        if size % align:
            size += align - size % align
        self.fields = tuple(laid_out)
        self._size = size
        self._align = align

    def alignof(self) -> int:
        return getattr(self, "_align", 1)

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def field(self, name: str) -> StructField:
        if self.fields is None:
            raise KeyError(f"struct {self.tag} is incomplete")
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def field_index(self, name: str) -> int:
        if self.fields is None:
            raise KeyError(f"struct {self.tag} is incomplete")
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def sizeof(self) -> int:
        return self._size

    def __repr__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, StructType)
            and other.tag == self.tag
            and other.is_union == self.is_union
        )

    def __hash__(self) -> int:
        return hash(("struct", self.tag, self.is_union))


class FunctionType(CType):
    def __init__(self, ret: CType, params: Sequence[CType], varargs: bool = False):
        self.ret = ret
        self.params = tuple(params)
        self.varargs = varargs

    def sizeof(self) -> int:
        return 4  # function pointers

    def __repr__(self) -> str:
        ps = ", ".join(repr(p) for p in self.params)
        if self.varargs:
            ps = ps + ", ..." if ps else "..."
        return f"{self.ret!r}({ps})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.ret == self.ret
            and other.params == self.params
            and other.varargs == self.varargs
        )

    def __hash__(self) -> int:
        return hash(("fn", self.ret, self.params, self.varargs))


# Canonical primitive instances (ILP32).
VOID = VoidType()
BOOL = IntType("_Bool", 1, signed=False)
CHAR = IntType("char", 1)
UCHAR = IntType("unsigned char", 1, signed=False)
SHORT = IntType("short", 2)
USHORT = IntType("unsigned short", 2, signed=False)
INT = IntType("int", 4)
UINT = IntType("unsigned int", 4, signed=False)
LONG = IntType("long", 4)
ULONG = IntType("unsigned long", 4, signed=False)
LONGLONG = IntType("long long", 8)
ULONGLONG = IntType("unsigned long long", 8, signed=False)
FLOAT = FloatType("float", 4)
DOUBLE = FloatType("double", 8)
LONGDOUBLE = FloatType("long double", 12)

VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)


def pointer_compatible(a: CType, b: CType) -> bool:
    """C-level compatibility used by rule P3 for pointer casts.

    ``void*`` is compatible with everything; ``char*`` is compatible
    with everything (byte access); otherwise pointee types must be
    structurally equal.
    """
    if not (a.is_pointer and b.is_pointer):
        return False
    pa, pb = a.pointee, b.pointee  # type: ignore[attr-defined]
    if isinstance(pa, VoidType) or isinstance(pb, VoidType):
        return True
    if pa == CHAR or pb == CHAR:
        return True
    return pa == pb
