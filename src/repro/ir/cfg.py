"""Basic blocks and control-flow-graph edges."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import IRError
from .instructions import CondBranch, Instruction, Jump, Phi, Ret


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, parent=None):
        self.name = name
        self.parent = parent  # Function
        self.instructions: List[Instruction] = []

    # -- construction -------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated:
            raise IRError(
                f"appending {inst.opname()} to already-terminated block {self.name}"
            )
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_phi(self, phi: Phi) -> Phi:
        phi.parent = self
        self.instructions.insert(0, phi)
        return phi

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    # -- structure ----------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].IS_TERMINATOR:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, CondBranch):
            if term.true_block is term.false_block:
                return [term.true_block]
            return [term.true_block, term.false_block]
        if isinstance(term, Ret) or term is None:
            return []
        return []

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        return [b for b in self.parent.blocks if self in b.successors()]

    def phis(self) -> Iterator[Phi]:
        for inst in self.instructions:
            if isinstance(inst, Phi):
                yield inst
            else:
                break

    def non_phi_instructions(self) -> Iterator[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, Phi):
                yield inst

    def __repr__(self) -> str:
        return f"<block {self.name} ({len(self.instructions)} insts)>"
