"""Source locations threaded from C text through the IR to diagnostics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in an original (pre-preprocessing) C source file."""

    filename: str
    line: int
    column: int = 0

    def __str__(self) -> str:
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0)
