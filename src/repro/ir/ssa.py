"""SSA construction: promotion of scalar allocas to registers.

This is the classic mem2reg pass (Cytron et al. phi placement on the
iterated dominance frontier followed by a dominator-tree renaming
walk). After it runs, every local scalar whose address does not escape
is a first-class SSA value, which is what makes the value-flow phase
flow-sensitive for registers, and is also what gives rule P2 its
meaning: a shared-memory pointer that is *not* promotable (because its
address was taken) is exactly the aliasing the rule forbids.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .cfg import BasicBlock
from .dominance import dominator_tree
from .function import Function
from .instructions import Alloca, Call, Instruction, Load, Phi, Store
from .values import UndefValue, Value


def promotable_allocas(function: Function) -> List[Alloca]:
    """Allocas whose every use is a direct load or store-to.

    An alloca is disqualified if its address is used any other way
    (passed to a call, stored as a value, cast, indexed): those uses
    mean the variable's address escapes and memory semantics must stay.
    """
    uses = function.compute_uses()
    result = []
    for inst in function.instructions():
        if not isinstance(inst, Alloca):
            continue
        if not inst.allocated_type.is_scalar:
            continue
        ok = True
        for user, idx in uses.get(inst, []):
            if isinstance(user, Load):
                continue
            if isinstance(user, Store) and idx == 1 and user.pointer is inst:
                continue
            ok = False
            break
        if ok:
            result.append(inst)
    return result


def promote_to_ssa(function: Function) -> int:
    """Run mem2reg on ``function``; returns number of promoted allocas."""
    if function.is_declaration:
        return 0
    function.remove_unreachable_blocks()
    allocas = promotable_allocas(function)
    if not allocas:
        return 0

    # the CFG is final here (unreachable blocks were just removed), so
    # this tree seeds the shared cache for the verifier and engine
    dt = dominator_tree(function)
    frontier = dt.dominance_frontier()
    alloca_set = set(allocas)

    # 1. phi placement at the iterated dominance frontier of each store.
    # Worklist and frontier sets are iterated in block order: phi names
    # come from a per-function counter, so placement order must not
    # depend on set order (object hashes vary across processes, and
    # reports must be byte-reproducible for the repro.perf caches).
    block_order = {block: i for i, block in enumerate(function.blocks)}
    phis: Dict[Phi, Alloca] = {}
    for alloca in allocas:
        def_blocks: Set[BasicBlock] = {
            inst.parent
            for inst in function.instructions()
            if isinstance(inst, Store) and inst.pointer is alloca
        }
        placed: Set[BasicBlock] = set()
        work = sorted(def_blocks, key=lambda b: block_order.get(b, -1))
        while work:
            block = work.pop()
            for fblock in sorted(
                frontier.get(block, ()),  # type: ignore[arg-type]
                key=lambda b: block_order.get(b, -1)
                if isinstance(b, BasicBlock) else -1,
            ):
                if not isinstance(fblock, BasicBlock) or fblock in placed:
                    continue
                phi = Phi(alloca.allocated_type, function.temp_name(alloca.name))
                phi.location = alloca.location
                fblock.insert_phi(phi)
                phis[phi] = alloca
                placed.add(fblock)
                if fblock not in def_blocks:
                    work.append(fblock)

    # 2. renaming walk over the dominator tree.
    stacks: Dict[Alloca, List[Value]] = {a: [] for a in allocas}
    to_delete: List[Instruction] = list(allocas)
    replacements: Dict[Instruction, Value] = {}

    def current(alloca: Alloca) -> Value:
        stack = stacks[alloca]
        if stack:
            return stack[-1]
        return UndefValue(alloca.allocated_type, alloca.name)

    def rename(block: BasicBlock) -> None:
        pushed: List[Alloca] = []
        for inst in list(block.instructions):
            if isinstance(inst, Phi) and inst in phis:
                stacks[phis[inst]].append(inst)
                pushed.append(phis[inst])
            elif isinstance(inst, Load) and inst.pointer in alloca_set:
                replacements[inst] = current(inst.pointer)  # type: ignore[arg-type]
                to_delete.append(inst)
            elif isinstance(inst, Store) and inst.pointer in alloca_set:
                value = replacements.get(inst.value, inst.value)  # chains
                stacks[inst.pointer].append(value)  # type: ignore[index]
                pushed.append(inst.pointer)  # type: ignore[arg-type]
                to_delete.append(inst)
            else:
                for op in list(inst.operands):
                    if op in replacements:
                        inst.replace_operand(op, replacements[op])
                if isinstance(inst, Call) and inst.callee in replacements:
                    inst.callee = replacements[inst.callee]
        for succ in block.successors():
            for phi in succ.phis():
                if phi in phis:
                    phi.add_incoming(block, current(phis[phi]))
        for child in dt.tree_children(block):
            if isinstance(child, BasicBlock):
                rename(child)
        for alloca in reversed(pushed):
            stacks[alloca].pop()

    rename(function.entry)

    # 3. resolve any replacement chains that crossed block boundaries,
    # then delete dead loads/stores/allocas.
    def resolve(value: Value) -> Value:
        seen = set()
        while value in replacements and id(value) not in seen:
            seen.add(id(value))
            value = replacements[value]
        return value

    for inst in function.instructions():
        for op in list(inst.operands):
            if op in replacements:
                inst.replace_operand(op, resolve(op))
        if isinstance(inst, Call) and inst.callee in replacements:
            inst.callee = resolve(inst.callee)
        if isinstance(inst, Phi):
            for blk, val in list(inst.incoming.items()):
                if val in replacements:
                    inst.incoming[blk] = resolve(val)
            inst.operands = list(inst.incoming.values())

    for inst in to_delete:
        if inst.parent is not None:
            inst.parent.remove(inst)

    _prune_trivial_phis(function)
    # instructions changed but the CFG did not: drop def-use chains,
    # keep the (still valid) dominator trees
    function._analysis_cache.pop("uses", None)
    return len(allocas)


def _prune_trivial_phis(function: Function) -> None:
    """Remove phis whose incoming values are all identical (or self)."""
    changed = True
    while changed:
        changed = False
        uses = function.compute_uses()
        for block in function.blocks:
            for phi in list(block.phis()):
                values = {v for v in phi.incoming.values() if v is not phi}
                if len(values) != 1:
                    continue
                replacement = values.pop()
                for user, _ in uses.get(phi, []):
                    user.replace_operand(phi, replacement)
                block.remove(phi)
                changed = True


def build_ssa(function: Function) -> int:
    """Public entry point: normalize a freshly lowered function."""
    return promote_to_ssa(function)
