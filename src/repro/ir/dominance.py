"""Dominator / postdominator trees and dominance frontiers.

Implemented with the Cooper–Harvey–Kennedy iterative algorithm, which
is simple and fast on the small CFGs of core components. Postdominance
is computed on the reverse CFG with a virtual exit node joining all
``ret`` blocks (and, conservatively, infinite loops); the control
dependence relation used by the value-flow phase (§3.3/§3.4.1) is
derived from the postdominance frontier in the standard way
(Ferrante–Ottenstein–Warren).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import BasicBlock
from .function import Function


class _VirtualExit:
    """Placeholder exit block for postdominance on multi-exit CFGs."""

    name = "<exit>"

    def __repr__(self) -> str:
        return "<virtual exit>"


class DominatorTree:
    """Immediate-dominator tree over the blocks of one function."""

    def __init__(self, function: Function, post: bool = False):
        self.function = function
        self.post = post
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._order: Dict[BasicBlock, int] = {}
        self._virtual_exit: Optional[_VirtualExit] = None
        self._compute()

    # -- graph orientation --------------------------------------------

    def _succs(self, block) -> List[BasicBlock]:
        if self.post:
            if isinstance(block, _VirtualExit):
                return self._exit_blocks
            return [b for b in self.function.blocks if block in b.successors()]
        return block.successors()

    def _preds(self, block) -> List:
        if self.post:
            if isinstance(block, _VirtualExit):
                return []
            succs = block.successors()
            preds: List = list(succs)
            if block in self._exit_set:
                preds.append(self._virtual_exit)
            return preds
        return block.predecessors()

    def _compute(self) -> None:
        func = self.function
        if not func.blocks:
            return
        if self.post:
            self._virtual_exit = _VirtualExit()
            self._exit_blocks = [b for b in func.blocks if not b.successors()]
            if not self._exit_blocks:
                # every block loops forever; anchor the exit at the entry
                self._exit_blocks = [func.entry]
            self._exit_set = set(self._exit_blocks)
            root = self._virtual_exit
        else:
            root = func.entry

        order = self._reverse_postorder(root)
        self._order = {b: i for i, b in enumerate(order)}
        idom: Dict[object, object] = {root: root}

        changed = True
        while changed:
            changed = False
            for block in order:
                if block is root:
                    continue
                preds = [p for p in self._preds(block) if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(new_idom, p, idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {}
        for block, dom in idom.items():
            self.idom[block] = None if dom is block else dom
        self.children = {}
        for block, dom in self.idom.items():
            if dom is not None:
                self.children.setdefault(dom, []).append(block)
        self._root = root

    def _reverse_postorder(self, root) -> List:
        seen: Set[int] = set()
        out: List = []

        def visit(block) -> None:
            if id(block) in seen:
                return
            seen.add(id(block))
            for succ in self._succs(block):
                visit(succ)
            out.append(block)

        visit(root)
        out.reverse()
        return out

    def _intersect(self, a, b, idom):
        while a is not b:
            while self._order.get(a, 0) > self._order.get(b, 0):
                a = idom[a]
            while self._order.get(b, 0) > self._order.get(a, 0):
                b = idom[b]
        return a

    # -- queries -------------------------------------------------------

    @property
    def root(self):
        return self._root

    def dominates(self, a, b) -> bool:
        """True iff ``a`` (post)dominates ``b`` (reflexive)."""
        node = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a, b) -> bool:
        return a is not b and self.dominates(a, b)

    def tree_children(self, block) -> List:
        return self.children.get(block, [])

    def dominance_frontier(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Cytron et al. dominance frontiers for phi placement."""
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self._order
        }
        for block in self._order:
            preds = self._preds(block)
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not None and runner is not self.idom.get(block):
                    frontier.setdefault(runner, set()).add(block)
                    runner = self.idom.get(runner)
        return frontier


def dominator_tree(function: Function, post: bool = False) -> DominatorTree:
    """Memoized :class:`DominatorTree` (see ``Function.cached_analysis``).

    Dominance depends only on the CFG shape, which is final once
    lowering has removed unreachable blocks; SSA's instruction rewrites
    do not disturb it, so the verifier, SSA construction, and the
    value-flow engine can all share one tree per function.
    """
    return function.cached_analysis(
        ("domtree", post), lambda f: DominatorTree(f, post=post)
    )


def control_dependence(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Map each block B to the set of blocks whose branch B depends on.

    B is control dependent on A iff A's branch decides whether B
    executes — computed as the postdominance frontier of B. Memoized
    per function: the value-flow engine consults this for every
    (function, context) body it analyzes.
    """
    return function.cached_analysis("control_deps", _control_dependence)


def _control_dependence(
    function: Function,
) -> Dict[BasicBlock, Set[BasicBlock]]:
    pdt = dominator_tree(function, post=True)
    frontier = pdt.dominance_frontier()
    deps: Dict[BasicBlock, Set[BasicBlock]] = {}
    for block in function.blocks:
        deps[block] = {
            b for b in frontier.get(block, set()) if isinstance(b, BasicBlock)
        }
    return deps
