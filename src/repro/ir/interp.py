"""A small IR interpreter, for differential testing and debugging.

Executes lowered (SSA) functions over a simple memory model: every
alloca/global is an object, addresses are (object, access-path) pairs,
and loads/stores index a per-object dictionary. Scalars are Python
ints/floats. External calls resolve through a user-supplied table
(math functions and ``printf`` are built in).

This is *not* used by the analysis — it exists so tests can check that
the front end preserves C semantics (``tests/ir/test_interp.py`` runs
generated programs against reference implementations).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import IRError
from .cfg import BasicBlock
from .function import Function, Module
from .instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    FieldAddr,
    IndexAddr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Store,
    UnaryOp,
)
from .types import ArrayType, PointerType
from .values import Constant, GlobalVariable, UndefValue, Value


class InterpError(IRError):
    """Raised on execution faults (missing value, step overflow...)."""


class Address:
    """(object id, access path) — the interpreter's pointer value."""

    __slots__ = ("obj", "path")

    def __init__(self, obj: "MemObject", path: Tuple = ()):
        self.obj = obj
        self.path = path

    def child(self, key) -> "Address":
        return Address(self.obj, self.path + (key,))

    def sibling_offset(self, delta: int) -> "Address":
        if not self.path:
            # pointer arithmetic on a scalar object: index 0 stays put
            if delta == 0:
                return self
            raise InterpError("pointer arithmetic escapes the object")
        *prefix, last = self.path
        if not isinstance(last, int):
            raise InterpError("pointer arithmetic on a field address")
        return Address(self.obj, tuple(prefix) + (last + delta,))

    def __repr__(self) -> str:
        return f"<addr {self.obj.name}{list(self.path)}>"


class MemObject:
    """Backing storage for one alloca/global."""

    __slots__ = ("name", "slots")

    def __init__(self, name: str):
        self.name = name
        self.slots: Dict[Tuple, object] = {}

    def load(self, path: Tuple):
        if path in self.slots:
            return self.slots[path]
        raise InterpError(f"read of uninitialized memory {self.name}{list(path)}")

    def store(self, path: Tuple, value) -> None:
        if isinstance(value, dict):
            # aggregate copy: splice the sub-tree
            for sub, v in value.items():
                self.slots[path + sub] = v
            return
        self.slots[path] = value

    def snapshot(self, path: Tuple) -> dict:
        """Sub-tree rooted at path, for aggregate loads."""
        out = {}
        n = len(path)
        for key, value in self.slots.items():
            if key[:n] == path:
                out[key[n:]] = value
        return out


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("integer modulo by zero")
    return a - _c_div(a, b) * b


class Interpreter:
    """Executes defined functions of a module."""

    def __init__(self, module: Module,
                 externals: Optional[Dict[str, Callable]] = None,
                 max_steps: int = 1_000_000):
        self.module = module
        self.max_steps = max_steps
        self.steps = 0
        self.stdout: List[str] = []
        self.globals: Dict[str, MemObject] = {}
        for gv in module.globals.values():
            obj = MemObject(f"@{gv.name}")
            if gv.initializer is not None and not isinstance(
                gv.initializer, list
            ):
                obj.store((), gv.initializer)
            elif gv.declared_type.is_scalar:
                obj.store((), 0)
            self.globals[gv.name] = obj
        self.externals: Dict[str, Callable] = {
            "fabs": abs, "fabsf": abs, "sqrt": math.sqrt, "sin": math.sin,
            "cos": math.cos, "tan": math.tan, "atan": math.atan,
            "atan2": math.atan2, "exp": math.exp, "log": math.log,
            "pow": math.pow, "floor": math.floor, "ceil": math.ceil,
            "fmod": math.fmod, "abs": abs,
            "printf": self._printf,
        }
        self.externals.update(externals or {})

    def _printf(self, fmt, *args):
        self.stdout.append(str(fmt))
        return 0

    # ------------------------------------------------------------------

    def call(self, name: str, *args):
        func = self.module.get_function(name)
        if func is None or func.is_declaration:
            raise InterpError(f"no defined function {name!r}")
        return self._run(func, list(args))

    def _run(self, func: Function, args: List):
        env: Dict[Value, object] = {}
        for i, arg in enumerate(func.arguments):
            env[arg] = args[i] if i < len(args) else 0
        block = func.entry
        prev_block: Optional[BasicBlock] = None

        while True:
            # phi nodes first, evaluated simultaneously
            phi_values = {}
            for phi in block.phis():
                if prev_block not in phi.incoming:
                    raise InterpError(
                        f"phi {phi.short()} has no incoming for edge"
                    )
                phi_values[phi] = self._value(phi.incoming[prev_block], env)
            env.update(phi_values)

            for inst in block.non_phi_instructions():
                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpError("step limit exceeded")
                if isinstance(inst, Ret):
                    if inst.value is None:
                        return None
                    return self._value(inst.value, env)
                if isinstance(inst, Jump):
                    prev_block, block = block, inst.target
                    break
                if isinstance(inst, CondBranch):
                    cond = self._value(inst.condition, env)
                    target = inst.true_block if cond else inst.false_block
                    prev_block, block = block, target
                    break
                env[inst] = self._execute(inst, env)
            else:
                raise InterpError(f"block {block.name} fell through")

    # ------------------------------------------------------------------

    def _value(self, value: Value, env: Dict[Value, object]):
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            return 0
        if isinstance(value, GlobalVariable):
            return Address(self.globals[value.name])
        if isinstance(value, Function):
            return value
        if value in env:
            return env[value]
        raise InterpError(f"use of unevaluated value {value.short()}")

    def _execute(self, inst: Instruction, env: Dict[Value, object]):
        if isinstance(inst, Alloca):
            return Address(MemObject(inst.name or "local"))
        if isinstance(inst, Load):
            addr = self._value(inst.pointer, env)
            if not isinstance(addr, Address):
                raise InterpError("load through non-address")
            if inst.type.is_aggregate:
                return addr.obj.snapshot(addr.path)
            return addr.obj.load(addr.path)
        if isinstance(inst, Store):
            addr = self._value(inst.pointer, env)
            if not isinstance(addr, Address):
                raise InterpError("store through non-address")
            addr.obj.store(addr.path, self._value(inst.value, env))
            return None
        if isinstance(inst, FieldAddr):
            addr = self._value(inst.pointer, env)
            return addr.child(inst.field_name)
        if isinstance(inst, IndexAddr):
            addr = self._value(inst.pointer, env)
            index = int(self._value(inst.index, env))
            ptype = inst.pointer.type
            assert isinstance(ptype, PointerType)
            if isinstance(ptype.pointee, ArrayType):
                return addr.child(index)
            return addr.sibling_offset(index)
        if isinstance(inst, BinOp):
            return self._binop(inst, env)
        if isinstance(inst, UnaryOp):
            operand = self._value(inst.operands[0], env)
            if inst.op == "-":
                return -operand
            if inst.op == "+":
                return operand
            if inst.op == "~":
                return ~int(operand)
            if inst.op == "!":
                return 0 if operand else 1
        if isinstance(inst, Cmp):
            left = self._value(inst.operands[0], env)
            right = self._value(inst.operands[1], env)
            if isinstance(left, Address) or isinstance(right, Address):
                same = (isinstance(left, Address)
                        and isinstance(right, Address)
                        and left.obj is right.obj and left.path == right.path)
                if inst.op == "==":
                    return 1 if same else 0
                if inst.op == "!=":
                    # null-pointer compares: integer 0 vs address
                    if not isinstance(left, Address) or not isinstance(
                        right, Address
                    ):
                        return 1
                    return 0 if same else 1
                raise InterpError("ordered comparison of addresses")
            ops = {"==": left == right, "!=": left != right,
                   "<": left < right, "<=": left <= right,
                   ">": left > right, ">=": left >= right}
            return 1 if ops[inst.op] else 0
        if isinstance(inst, Cast):
            value = self._value(inst.source, env)
            if inst.kind == "numeric":
                if inst.type.is_integer:
                    return int(value)
                return float(value)
            return value
        if isinstance(inst, Call):
            return self._call(inst, env)
        raise InterpError(f"cannot execute {inst.opname()}")

    def _binop(self, inst: BinOp, env):
        left = self._value(inst.lhs, env)
        right = self._value(inst.rhs, env)
        op = inst.op
        integral = inst.type.is_integer
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return _c_div(int(left), int(right)) if integral else left / right
        if op == "%":
            return _c_mod(int(left), int(right))
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "&&":
            return 1 if (left and right) else 0
        if op == "||":
            return 1 if (left or right) else 0
        raise InterpError(f"unknown binop {op}")

    def _call(self, inst: Call, env):
        args = [self._value(op, env) for op in inst.operands]
        callee = inst.callee
        if isinstance(callee, Function) and not callee.is_declaration:
            return self._run(callee, args)
        name = inst.callee_name
        if name is not None:
            target = self.module.get_function(name)
            if target is not None and not target.is_declaration:
                return self._run(target, args)
            if name in self.externals:
                return self.externals[name](*args)
        if isinstance(callee, Function):
            raise InterpError(f"call to undefined external {callee.name!r}")
        value = self._value(callee, env) if isinstance(callee, Value) else None
        if isinstance(value, Function) and not value.is_declaration:
            return self._run(value, args)
        raise InterpError("cannot resolve call target")
