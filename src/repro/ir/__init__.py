"""Typed SSA intermediate representation (LLVM-bytecode substitute).

The SafeFlow prototype in the paper analyzes LLVM 1.x bytecode; this
package provides the equivalent substrate in pure Python: a typed
three-address IR with explicit loads/stores and casts, a CFG, dominator
and postdominator trees, SSA construction, and def-use chains.
"""

from .cfg import BasicBlock
from .dominance import DominatorTree, control_dependence, dominator_tree
from .function import Function, Module
from .instructions import (
    ASSERT_SAFE_MARKER,
    ASSUME_CORE_MARKER,
    INIT_CHECK_MARKER,
    MARKER_FUNCTIONS,
    Alloca,
    BinOp,
    Call,
    Cast,
    Cmp,
    CondBranch,
    FieldAddr,
    IndexAddr,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Store,
    UnaryOp,
)
from .interp import Interpreter, InterpError
from .printer import function_to_text, module_to_text
from .source import SourceLocation, UNKNOWN_LOCATION
from .ssa import build_ssa, promotable_allocas, promote_to_ssa
from .types import (
    ArrayType,
    BOOL,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    FunctionType,
    INT,
    IntType,
    FloatType,
    LONG,
    PointerType,
    StructType,
    UINT,
    VOID,
    VOID_PTR,
    VoidType,
    pointer_compatible,
)
from .values import Argument, Constant, GlobalVariable, UndefValue, Value
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "ASSERT_SAFE_MARKER",
    "ASSUME_CORE_MARKER",
    "INIT_CHECK_MARKER",
    "MARKER_FUNCTIONS",
    "Alloca",
    "Argument",
    "ArrayType",
    "BOOL",
    "BasicBlock",
    "BinOp",
    "CHAR",
    "CType",
    "Call",
    "Cast",
    "Cmp",
    "CondBranch",
    "Constant",
    "DOUBLE",
    "DominatorTree",
    "FLOAT",
    "FieldAddr",
    "FloatType",
    "Function",
    "FunctionType",
    "GlobalVariable",
    "INT",
    "IndexAddr",
    "Instruction",
    "IntType",
    "InterpError",
    "Interpreter",
    "Jump",
    "LONG",
    "Load",
    "Module",
    "Phi",
    "PointerType",
    "Ret",
    "SourceLocation",
    "Store",
    "StructType",
    "UINT",
    "UNKNOWN_LOCATION",
    "UnaryOp",
    "UndefValue",
    "VOID",
    "VOID_PTR",
    "Value",
    "VerificationError",
    "VoidType",
    "build_ssa",
    "control_dependence",
    "dominator_tree",
    "function_to_text",
    "module_to_text",
    "pointer_compatible",
    "promotable_allocas",
    "promote_to_ssa",
    "verify_function",
    "verify_module",
]
