"""Textual dump of IR modules/functions, for tests and debugging."""

from __future__ import annotations

from typing import List

from .function import Function, Module


def _assign_names(function: Function) -> None:
    """Give every unnamed result a stable %tN name before printing."""
    counter = 0
    for inst in function.instructions():
        if inst.type.sizeof() != 0 or inst.type.is_pointer:
            if not inst.name:
                inst.name = f"t{counter}"
                counter += 1


def function_to_text(function: Function) -> str:
    if function.is_declaration:
        return f"declare {function.name} : {function.ftype!r}\n"
    _assign_names(function)
    lines: List[str] = []
    args = ", ".join(f"%{a.name}: {a.type!r}" for a in function.arguments)
    lines.append(f"define {function.name}({args}) -> {function.return_type!r} {{")
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst.render()}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def module_to_text(module: Module) -> str:
    lines: List[str] = [f"; module {module.name}"]
    for gv in module.globals.values():
        init = f" = {gv.initializer!r}" if gv.initializer is not None else ""
        lines.append(f"@{gv.name} : {gv.declared_type!r}{init}")
    lines.append("")
    for func in module.functions.values():
        lines.append(function_to_text(func))
    return "\n".join(lines)
